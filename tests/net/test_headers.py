"""Tests for repro.net.headers wire codecs."""

import pytest
from hypothesis import given, strategies as st

from repro.net.headers import (
    ETHERTYPE_IPV4,
    ETHERTYPE_IPV6,
    Ethernet,
    HeaderError,
    IPv4,
    IPv6,
    PROTO_TCP,
    PROTO_UDP,
    TCP,
    UDP,
    VXLAN,
    format_mac,
    parse_mac,
)
from repro.net.checksum import internet_checksum


class TestMac:
    def test_roundtrip(self):
        assert format_mac(parse_mac("aa:bb:cc:dd:ee:ff")) == "aa:bb:cc:dd:ee:ff"

    def test_bad_format(self):
        with pytest.raises(HeaderError):
            parse_mac("aabbccddeeff")


class TestEthernet:
    def test_roundtrip(self):
        eth = Ethernet(dst=0x0000AA, src=0x0000BB, ethertype=ETHERTYPE_IPV4)
        decoded, rest = Ethernet.unpack(eth.pack() + b"tail")
        assert decoded == eth and rest == b"tail"

    def test_truncated(self):
        with pytest.raises(HeaderError):
            Ethernet.unpack(b"\x00" * 10)

    @given(
        st.integers(min_value=0, max_value=(1 << 48) - 1),
        st.integers(min_value=0, max_value=(1 << 48) - 1),
        st.integers(min_value=0, max_value=0xFFFF),
    )
    def test_roundtrip_property(self, dst, src, ethertype):
        eth = Ethernet(dst, src, ethertype)
        assert Ethernet.unpack(eth.pack())[0] == eth


class TestIPv4:
    def test_roundtrip(self):
        hdr = IPv4(src=0x0A000001, dst=0x0A000002, proto=PROTO_UDP, ttl=61, tos=4)
        decoded, rest = IPv4.unpack(hdr.pack(payload_len=8) + b"\x01" * 8)
        assert decoded.src == hdr.src and decoded.dst == hdr.dst
        assert decoded.proto == PROTO_UDP and decoded.ttl == 61 and decoded.tos == 4
        assert decoded.total_length == 28 and len(rest) == 8

    def test_checksum_valid(self):
        raw = IPv4(src=1, dst=2, proto=6).pack(payload_len=0)
        assert internet_checksum(raw) == 0

    def test_rejects_v6(self):
        raw = IPv6(src=1, dst=2, next_header=6).pack(payload_len=0)
        with pytest.raises(HeaderError):
            IPv4.unpack(raw)

    def test_truncated(self):
        with pytest.raises(HeaderError):
            IPv4.unpack(b"\x45" + b"\x00" * 10)

    def test_rewrites(self):
        hdr = IPv4(src=1, dst=2, proto=6, ttl=10)
        assert hdr.replace_dst(99).dst == 99
        assert hdr.replace_src(98).src == 98
        assert hdr.decrement_ttl().ttl == 9

    def test_ttl_exceeded(self):
        with pytest.raises(HeaderError):
            IPv4(src=1, dst=2, proto=6, ttl=0).decrement_ttl()

    @given(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=1, max_value=255),
    )
    def test_roundtrip_property(self, src, dst, proto, ttl):
        hdr = IPv4(src=src, dst=dst, proto=proto, ttl=ttl)
        decoded, _ = IPv4.unpack(hdr.pack(payload_len=0))
        assert (decoded.src, decoded.dst, decoded.proto, decoded.ttl) == (src, dst, proto, ttl)


class TestIPv6:
    def test_roundtrip(self):
        hdr = IPv6(src=1 << 120, dst=2, next_header=PROTO_TCP, hop_limit=33,
                   traffic_class=7, flow_label=0xABCDE)
        decoded, rest = IPv6.unpack(hdr.pack(payload_len=4) + b"\x00" * 4)
        assert decoded.src == hdr.src and decoded.dst == hdr.dst
        assert decoded.next_header == PROTO_TCP and decoded.hop_limit == 33
        assert decoded.traffic_class == 7 and decoded.flow_label == 0xABCDE
        assert decoded.payload_length == 4 and len(rest) == 4

    def test_proto_alias(self):
        assert IPv6(src=1, dst=2, next_header=17).proto == 17

    def test_rejects_v4(self):
        raw = IPv4(src=1, dst=2, proto=6).pack(payload_len=0) + b"\x00" * 20
        with pytest.raises(HeaderError):
            IPv6.unpack(raw)

    def test_rewrites(self):
        hdr = IPv6(src=1, dst=2, next_header=6, hop_limit=5)
        assert hdr.replace_dst(7).dst == 7
        assert hdr.decrement_ttl().hop_limit == 4


class TestUdpTcp:
    def test_udp_roundtrip(self):
        udp = UDP(src_port=4789, dst_port=80)
        decoded, rest = UDP.unpack(udp.pack(payload_len=12) + b"x" * 12)
        assert decoded.src_port == 4789 and decoded.dst_port == 80
        assert decoded.length == 20 and len(rest) == 12

    def test_udp_truncated(self):
        with pytest.raises(HeaderError):
            UDP.unpack(b"\x00" * 4)

    def test_udp_replace_port(self):
        assert UDP(1, 2).replace_src_port(99).src_port == 99

    def test_tcp_roundtrip(self):
        tcp = TCP(src_port=1234, dst_port=443, seq=7, ack=9, flags=0x18, window=1000)
        decoded, rest = TCP.unpack(tcp.pack() + b"pp")
        assert decoded.src_port == 1234 and decoded.dst_port == 443
        assert decoded.seq == 7 and decoded.ack == 9
        assert decoded.flags == 0x18 and decoded.window == 1000
        assert rest == b"pp"

    def test_tcp_truncated(self):
        with pytest.raises(HeaderError):
            TCP.unpack(b"\x00" * 10)

    def test_tcp_replace_port(self):
        assert TCP(1, 2).replace_src_port(99).src_port == 99


class TestVxlan:
    def test_roundtrip(self):
        vx = VXLAN(vni=0xABCDEF)
        decoded, rest = VXLAN.unpack(vx.pack() + b"inner")
        assert decoded.vni == 0xABCDEF and rest == b"inner"

    def test_vni_range(self):
        with pytest.raises(HeaderError):
            VXLAN(vni=1 << 24).pack()

    def test_i_flag_required(self):
        raw = bytearray(VXLAN(vni=5).pack())
        raw[0] = 0
        with pytest.raises(HeaderError):
            VXLAN.unpack(bytes(raw))

    def test_truncated(self):
        with pytest.raises(HeaderError):
            VXLAN.unpack(b"\x08\x00")

    @given(st.integers(min_value=0, max_value=(1 << 24) - 1))
    def test_vni_roundtrip_property(self, vni):
        assert VXLAN.unpack(VXLAN(vni=vni).pack())[0].vni == vni
