"""Tests for repro.net.addr."""

import pytest
from hypothesis import given, strategies as st

from repro.net.addr import (
    IPAddress,
    Prefix,
    bits_for_version,
    format_ip,
    ip_in_prefix,
    mask_for,
    network_of,
    parse_ip,
)


class TestParseFormat:
    def test_parse_v4(self):
        assert parse_ip("192.168.10.2") == ((192 << 24) | (168 << 16) | (10 << 8) | 2, 4)

    def test_parse_v6(self):
        value, version = parse_ip("::1")
        assert value == 1 and version == 6

    def test_roundtrip_v4(self):
        assert format_ip(parse_ip("10.1.1.11")[0], 4) == "10.1.1.11"

    def test_roundtrip_v6(self):
        assert format_ip(parse_ip("fd00::2")[0], 6) == "fd00::2"

    def test_bad_version(self):
        with pytest.raises(ValueError):
            bits_for_version(5)
        with pytest.raises(ValueError):
            format_ip(0, 7)

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_v4_int_roundtrip(self, value):
        assert parse_ip(format_ip(value, 4)) == (value, 4)

    @given(st.integers(min_value=0, max_value=(1 << 128) - 1))
    def test_v6_int_roundtrip(self, value):
        assert parse_ip(format_ip(value, 6)) == (value, 6)


class TestMasks:
    def test_mask_for_24(self):
        assert mask_for(24, 4) == 0xFFFFFF00

    def test_mask_zero(self):
        assert mask_for(0, 4) == 0
        assert mask_for(0, 6) == 0

    def test_mask_full(self):
        assert mask_for(32, 4) == 0xFFFFFFFF
        assert mask_for(128, 6) == (1 << 128) - 1

    def test_mask_out_of_range(self):
        with pytest.raises(ValueError):
            mask_for(33, 4)
        with pytest.raises(ValueError):
            mask_for(-1, 6)

    def test_network_of(self):
        value = parse_ip("192.168.10.77")[0]
        assert network_of(value, 24, 4) == parse_ip("192.168.10.0")[0]

    def test_ip_in_prefix(self):
        net = parse_ip("10.0.0.0")[0]
        assert ip_in_prefix(parse_ip("10.200.3.4")[0], net, 8, 4)
        assert not ip_in_prefix(parse_ip("11.0.0.1")[0], net, 8, 4)


class TestIPAddress:
    def test_parse_and_str(self):
        addr = IPAddress.parse("192.168.10.2")
        assert str(addr) == "192.168.10.2"
        assert addr.version == 4
        assert int(addr) == 0xC0A80A02

    def test_equality_and_hash(self):
        a = IPAddress.v4("10.0.0.1")
        b = IPAddress(0x0A000001, 4)
        assert a == b and hash(a) == hash(b)

    def test_versions_not_equal(self):
        assert IPAddress(1, 4) != IPAddress(1, 6)

    def test_immutable(self):
        addr = IPAddress.v4(1)
        with pytest.raises(AttributeError):
            addr.value = 5

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            IPAddress(1 << 32, 4)
        with pytest.raises(ValueError):
            IPAddress(-1, 6)

    def test_bytes_roundtrip(self):
        addr = IPAddress.parse("fd00::1:2")
        assert IPAddress.from_bytes(addr.to_bytes()) == addr

    def test_from_bytes_bad_length(self):
        with pytest.raises(ValueError):
            IPAddress.from_bytes(b"\x00" * 5)

    def test_ordering(self):
        assert IPAddress.v4("1.0.0.0") < IPAddress.v4("2.0.0.0")
        assert IPAddress.v4("255.255.255.255") < IPAddress.v6("::1")


class TestPrefix:
    def test_parse_and_str(self):
        prefix = Prefix.parse("192.168.10.0/24")
        assert str(prefix) == "192.168.10.0/24"
        assert prefix.prefix_len == 24

    def test_host_bits_rejected(self):
        with pytest.raises(ValueError):
            Prefix(parse_ip("192.168.10.1")[0], 24, 4)

    def test_of_normalises(self):
        prefix = Prefix.of(parse_ip("192.168.10.77")[0], 24, 4)
        assert str(prefix) == "192.168.10.0/24"

    def test_host_prefix(self):
        addr = IPAddress.parse("10.1.1.11")
        assert Prefix.host(addr).prefix_len == 32

    def test_contains_ip(self):
        prefix = Prefix.parse("10.0.0.0/8")
        assert prefix.contains_ip(parse_ip("10.255.0.1")[0])
        assert not prefix.contains_ip(parse_ip("11.0.0.1")[0])

    def test_contains_prefix(self):
        outer = Prefix.parse("10.0.0.0/8")
        inner = Prefix.parse("10.1.0.0/16")
        assert outer.contains_prefix(inner)
        assert not inner.contains_prefix(outer)
        assert outer.contains_prefix(outer)

    def test_contains_prefix_cross_family(self):
        assert not Prefix.parse("10.0.0.0/8").contains_prefix(Prefix.parse("fd00::/8"))

    def test_default_route(self):
        prefix = Prefix.parse("0.0.0.0/0")
        assert prefix.contains_ip(0) and prefix.contains_ip((1 << 32) - 1)

    def test_hosts_iteration(self):
        hosts = list(Prefix.parse("192.168.0.0/30").hosts())
        assert len(hosts) == 4
        assert hosts[0] == parse_ip("192.168.0.0")[0]

    def test_hosts_limit(self):
        assert len(list(Prefix.parse("10.0.0.0/8").hosts(limit=10))) == 10

    def test_ordering_and_hash(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("10.0.0.0/16")
        assert a < b
        assert hash(a) != hash(b)

    @given(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=32),
    )
    def test_of_always_valid(self, value, plen):
        prefix = Prefix.of(value, plen, 4)
        assert prefix.contains_ip(value)

    @given(
        st.integers(min_value=0, max_value=(1 << 128) - 1),
        st.integers(min_value=0, max_value=128),
        st.integers(min_value=0, max_value=(1 << 128) - 1),
    )
    def test_contains_consistent_with_mask_math_v6(self, value, plen, probe):
        prefix = Prefix.of(value, plen, 6)
        expected = (probe & mask_for(plen, 6)) == prefix.network
        assert prefix.contains_ip(probe) == expected

    def test_key_bits(self):
        bits, length = Prefix.parse("128.0.0.0/1").key_bits()
        assert (bits, length) == (1, 1)
        bits, length = Prefix.parse("0.0.0.0/0").key_bits()
        assert (bits, length) == (0, 0)
