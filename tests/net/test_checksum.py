"""Tests for the RFC 1071 internet checksum."""

from hypothesis import given, strategies as st

from repro.net.checksum import (
    internet_checksum,
    pseudo_header_v4,
    pseudo_header_v6,
    verify_checksum,
)


class TestInternetChecksum:
    def test_known_vector(self):
        # RFC 1071 example data 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2,
        # checksum = ~0xddf2 = 0x220d.
        data = bytes.fromhex("0001f203f4f5f6f7")
        assert internet_checksum(data) == 0x220D

    def test_empty(self):
        assert internet_checksum(b"") == 0xFFFF

    def test_odd_length_padded(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    def test_verify_of_packed_header(self):
        from repro.net.headers import IPv4

        raw = IPv4(src=0xC0A80001, dst=0xC0A800C7, proto=17).pack(payload_len=100)
        assert verify_checksum(raw)

    @given(st.binary(min_size=0, max_size=128))
    def test_embedding_checksum_verifies(self, data):
        # The checksum field must land on a 16-bit boundary, as it does in
        # real headers; pad odd-length data first.
        if len(data) % 2:
            data += b"\x00"
        csum = internet_checksum(data)
        assert verify_checksum(data + csum.to_bytes(2, "big"))

    @given(st.binary(min_size=2, max_size=64))
    def test_single_bit_flip_detected(self, data):
        csum = internet_checksum(data)
        flipped = bytearray(data)
        flipped[0] ^= 0x01
        assert internet_checksum(bytes(flipped)) != csum


class TestPseudoHeaders:
    def test_v4_layout(self):
        ph = pseudo_header_v4(0x01020304, 0x05060708, 17, 20)
        assert len(ph) == 12
        assert ph[:4] == bytes([1, 2, 3, 4])
        assert ph[9] == 17
        assert int.from_bytes(ph[10:12], "big") == 20

    def test_v6_layout(self):
        ph = pseudo_header_v6(1, 2, 6, 40)
        assert len(ph) == 40
        assert ph[-1] == 6
        assert int.from_bytes(ph[32:36], "big") == 40
