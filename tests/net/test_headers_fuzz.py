"""Seeded wire-format round-trip fuzz for ``net.headers``: every codec
must (a) round-trip randomly generated headers canonically, (b) reject
every truncation of a valid encoding with HeaderError, and (c) survive
random byte corruption with either HeaderError or a clean re-parse —
never any other exception. Deterministic via repro.sim.rand (no
hypothesis dependency)."""

import pytest

from repro.net.headers import (
    ETH_LEN,
    ETHERTYPE_IPV4,
    IPV4_MIN_LEN,
    IPV6_LEN,
    PROTO_UDP,
    TCP_MIN_LEN,
    UDP_LEN,
    VXLAN_LEN,
    Ethernet,
    HeaderError,
    IPv4,
    IPv6,
    TCP,
    UDP,
    VXLAN,
)
from repro.net.packet import InnerFrame, Packet
from repro.sim.rand import derive

ROUNDS = 200


def random_headers(rng):
    """One random instance of every codec, plus its minimum wire length."""
    return [
        (Ethernet(dst=rng.getrandbits(48), src=rng.getrandbits(48),
                  ethertype=rng.choice((ETHERTYPE_IPV4, 0x86DD, 0x0806))),
         ETH_LEN),
        (IPv4(src=rng.getrandbits(32), dst=rng.getrandbits(32),
              proto=rng.randrange(256), ttl=rng.randrange(1, 256),
              tos=rng.getrandbits(8), ident=rng.getrandbits(16),
              flags=rng.getrandbits(3)),
         IPV4_MIN_LEN),
        (IPv6(src=rng.getrandbits(128), dst=rng.getrandbits(128),
              next_header=rng.randrange(256), hop_limit=rng.randrange(1, 256),
              traffic_class=rng.getrandbits(8), flow_label=rng.getrandbits(20)),
         IPV6_LEN),
        (UDP(src_port=rng.getrandbits(16), dst_port=rng.getrandbits(16)),
         UDP_LEN),
        (TCP(src_port=rng.getrandbits(16), dst_port=rng.getrandbits(16),
             seq=rng.getrandbits(32), ack=rng.getrandbits(32),
             flags=rng.getrandbits(9), window=rng.getrandbits(16)),
         TCP_MIN_LEN),
        (VXLAN(vni=rng.getrandbits(24)), VXLAN_LEN),
    ]


def pack(header):
    try:
        return header.pack(0)
    except TypeError:
        return header.pack()


def test_roundtrip_is_canonical():
    rng = derive(2021, "headers-roundtrip")
    for _ in range(ROUNDS):
        for header, _min_len in random_headers(rng):
            wire = pack(header)
            reparsed, rest = type(header).unpack(wire + b"trailing")
            assert rest == b"trailing"
            assert pack(reparsed) == wire


def test_truncations_raise_header_error():
    rng = derive(2021, "headers-truncate")
    for _ in range(20):
        for header, min_len in random_headers(rng):
            wire = pack(header)
            for cut in range(min_len):
                with pytest.raises(HeaderError):
                    type(header).unpack(wire[:cut])


def random_packet(rng):
    inner = InnerFrame(
        eth=Ethernet(dst=rng.getrandbits(48), src=rng.getrandbits(48),
                     ethertype=ETHERTYPE_IPV4),
        ip=IPv4(src=rng.getrandbits(32), dst=rng.getrandbits(32),
                proto=PROTO_UDP),
        l4=UDP(src_port=rng.getrandbits(16), dst_port=rng.getrandbits(16)),
        payload=bytes(rng.getrandbits(8) for _ in range(rng.randrange(32))),
    )
    return Packet.vxlan_encap(
        inner,
        outer_eth=Ethernet(dst=rng.getrandbits(48), src=rng.getrandbits(48),
                           ethertype=ETHERTYPE_IPV4),
        outer_src=rng.getrandbits(32),
        outer_dst=rng.getrandbits(32),
        vni=rng.getrandbits(24),
    )


def test_corrupted_packets_parse_or_raise_header_error():
    rng = derive(2021, "packet-corrupt")
    for _ in range(ROUNDS):
        wire = bytearray(random_packet(rng).to_bytes())
        for _flip in range(rng.randrange(1, 5)):
            wire[rng.randrange(len(wire))] ^= 1 << rng.randrange(8)
        try:
            packet = Packet.from_bytes(bytes(wire))
        except HeaderError:
            continue
        # Whatever still parsed must re-serialise canonically.
        reserialised = packet.to_bytes()
        assert Packet.from_bytes(reserialised).to_bytes() == reserialised


def test_truncated_packets_parse_or_raise_header_error():
    rng = derive(2021, "packet-truncate")
    wire = random_packet(rng).to_bytes()
    for cut in range(len(wire)):
        try:
            Packet.from_bytes(wire[:cut])
        except HeaderError:
            pass


def test_fuzz_is_deterministic():
    def sample():
        rng = derive(7, "headers-determinism")
        return [pack(h) for h, _ in random_headers(rng)]

    assert sample() == sample()
