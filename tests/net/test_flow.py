"""Tests for flow keys and the Toeplitz RSS hash."""

from collections import Counter

import pytest
from hypothesis import given, strategies as st

from repro.net.flow import (
    FlowKey,
    MSFT_RSS_KEY,
    rss_queue,
    symmetric_flow_hash,
    toeplitz_hash,
)


def reference_toeplitz(data: bytes, key: bytes) -> int:
    """Independent bit-at-a-time reference implementation."""
    key_bits = []
    for byte in key:
        for i in range(8):
            key_bits.append((byte >> (7 - i)) & 1)
    result = 0
    bit_index = 0
    for byte in data:
        for i in range(8):
            if (byte >> (7 - i)) & 1:
                window = 0
                for j in range(32):
                    window = (window << 1) | key_bits[bit_index + j]
                result ^= window
            bit_index += 1
    return result


class TestToeplitz:
    def test_single_first_bit_selects_key_head(self):
        # Input 0x80...: only the first bit set -> hash = key[0:4].
        assert toeplitz_hash(b"\x80\x00\x00\x00") == int.from_bytes(MSFT_RSS_KEY[:4], "big")

    def test_zero_input(self):
        assert toeplitz_hash(b"\x00" * 12) == 0

    def test_linearity(self):
        # Toeplitz is XOR-linear in the input bits.
        a = toeplitz_hash(b"\x80\x00\x00\x00")
        b = toeplitz_hash(b"\x00\x00\x00\x01")
        combined = toeplitz_hash(b"\x80\x00\x00\x01")
        assert combined == a ^ b

    @given(st.binary(min_size=1, max_size=36))
    def test_matches_reference(self, data):
        assert toeplitz_hash(data) == reference_toeplitz(data, MSFT_RSS_KEY)

    def test_key_too_short(self):
        with pytest.raises(ValueError):
            toeplitz_hash(b"\x00" * 12, key=b"\x01" * 8)

    def test_deterministic(self):
        data = bytes(range(12))
        assert toeplitz_hash(data) == toeplitz_hash(data)


class TestRssQueue:
    def test_range(self):
        flow = FlowKey(1, 2, 6, 3, 4)
        for n in (1, 2, 7, 32):
            assert 0 <= rss_queue(flow, n) < n

    def test_v6_flows_supported(self):
        flow = FlowKey(1 << 100, 2, 6, 3, 4, version=6)
        assert 0 <= rss_queue(flow, 16) < 16

    def test_bad_queue_count(self):
        with pytest.raises(ValueError):
            rss_queue(FlowKey(1, 2, 6, 3, 4), 0)

    def test_spreads_over_queues(self):
        counts = Counter(
            rss_queue(FlowKey(src, 2, 6, 1000 + src % 100, 80), 8)
            for src in range(400)
        )
        # All 8 queues see some flows, none sees more than half.
        assert len(counts) == 8
        assert max(counts.values()) < 200

    def test_same_flow_same_queue(self):
        flow = FlowKey(0x0A000001, 0x0A000002, 6, 1234, 80)
        assert rss_queue(flow, 32) == rss_queue(flow, 32)


class TestFlowKey:
    def test_reversed(self):
        flow = FlowKey(1, 2, 6, 30, 40)
        rev = flow.reversed()
        assert (rev.src_ip, rev.dst_ip, rev.src_port, rev.dst_port) == (2, 1, 40, 30)
        assert rev.reversed() == flow

    def test_rss_input_width_v4(self):
        assert len(FlowKey(1, 2, 6, 3, 4).to_rss_input()) == 12

    def test_rss_input_width_v6(self):
        assert len(FlowKey(1, 2, 6, 3, 4, version=6).to_rss_input()) == 36

    def test_symmetric_hash(self):
        flow = FlowKey(1, 2, 6, 30, 40)
        assert symmetric_flow_hash(flow) == symmetric_flow_hash(flow.reversed())

    def test_ordering(self):
        assert FlowKey(1, 2, 6, 3, 4) < FlowKey(2, 2, 6, 3, 4)
