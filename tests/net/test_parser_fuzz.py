"""Fuzz the wire-format parsers: arbitrary bytes must either parse or
raise HeaderError — never crash with anything else."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.headers import (
    ETHERTYPE_IPV4,
    Ethernet,
    HeaderError,
    IPv4,
    IPv6,
    TCP,
    UDP,
    VXLAN,
)
from repro.net.packet import InnerFrame, Packet


@given(st.binary(max_size=200))
@settings(max_examples=300, deadline=None)
def test_packet_from_bytes_total(raw):
    try:
        packet = Packet.from_bytes(raw)
    except HeaderError:
        return
    # Anything that parsed must re-serialise without crashing, and the
    # re-serialisation must re-parse to the same bytes (canonical form).
    wire = packet.to_bytes()
    assert Packet.from_bytes(wire).to_bytes() == wire


@given(st.binary(max_size=60))
@settings(max_examples=200, deadline=None)
def test_header_unpackers_total(raw):
    for codec in (Ethernet, IPv4, IPv6, UDP, TCP, VXLAN, InnerFrame):
        try:
            codec.unpack(raw)
        except HeaderError:
            pass


@given(st.binary(min_size=14, max_size=120))
@settings(max_examples=200, deadline=None)
def test_mutated_vxlan_packets_total(raw):
    """Valid Ethernet+IPv4 framing with random guts."""
    framed = (
        Ethernet(dst=1, src=2, ethertype=ETHERTYPE_IPV4).pack() + raw
    )
    try:
        Packet.from_bytes(framed)
    except HeaderError:
        pass
