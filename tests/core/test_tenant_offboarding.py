"""Tests for tenant offboarding and entry withdrawal."""

import ipaddress

import pytest

from repro.cluster.cluster import GatewayCluster
from repro.cluster.ecmp import VniSteeredBalancer
from repro.core.controller import Controller, RouteEntry, VmEntry
from repro.core.splitting import ClusterCapacity, TableSplitter, TenantProfile
from repro.core.xgw_h import XgwH
from repro.net.addr import Prefix
from repro.tables.errors import TableError
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import RouteAction, Scope


def ip(text):
    return int(ipaddress.ip_address(text))


@pytest.fixture
def controller():
    balancer = VniSteeredBalancer()
    splitter = TableSplitter(ClusterCapacity(routes=50, vms=500, traffic_bps=1e13))
    ctrl = Controller(splitter, balancer)
    counter = [0]

    def factory(cluster_id):
        counter[0] += 1
        return GatewayCluster(
            cluster_id,
            [(f"{cluster_id}-gw0", XgwH(gateway_ip=counter[0]))],
            backup=GatewayCluster(
                f"{cluster_id}-backup",
                [(f"{cluster_id}-bk0", XgwH(gateway_ip=counter[0] + 100))],
            ),
        )

    ctrl.set_cluster_factory(factory)
    return ctrl


def onboard(controller, vni=100):
    routes = [
        RouteEntry(vni, Prefix.parse("192.168.10.0/24"), RouteAction(Scope.LOCAL)),
        RouteEntry(vni, Prefix.parse("0.0.0.0/0"),
                   RouteAction(Scope.SERVICE, target="snat")),
    ]
    vms = [VmEntry(vni, ip("192.168.10.2"), 4, NcBinding(ip("10.1.1.11")))]
    profile = TenantProfile(vni, len(routes), len(vms), 1e9)
    cluster_id = controller.add_tenant(profile, routes, vms)
    return cluster_id, routes, vms


class TestRemoveRoute:
    def test_removed_everywhere(self, controller):
        cluster_id, routes, _vms = onboard(controller)
        controller.remove_route(cluster_id, 100, routes[0].prefix)
        cluster = controller.clusters[cluster_id]
        for member in cluster.members() + cluster.backup.members():
            assert member.gateway.route_count() == 1  # the SNAT default remains
        assert controller.consistency_check(cluster_id) == []

    def test_unknown_route_rejected(self, controller):
        cluster_id, _routes, _vms = onboard(controller)
        with pytest.raises(TableError):
            controller.remove_route(cluster_id, 100, Prefix.parse("10.9.0.0/16"))


class TestRemoveVm:
    def test_removed_everywhere(self, controller):
        cluster_id, _routes, vms = onboard(controller)
        controller.remove_vm(cluster_id, 100, vms[0].vm_ip, 4)
        cluster = controller.clusters[cluster_id]
        for member in cluster.members() + cluster.backup.members():
            assert member.gateway.vm_count() == 0
        assert controller.consistency_check(cluster_id) == []

    def test_unknown_vm_rejected(self, controller):
        cluster_id, _routes, _vms = onboard(controller)
        with pytest.raises(TableError):
            controller.remove_vm(cluster_id, 100, 0xDEAD, 4)


class TestRemoveTenant:
    def test_full_offboarding(self, controller):
        cluster_id, routes, vms = onboard(controller, vni=100)
        onboard(controller, vni=101)  # a co-resident survives
        removed = controller.remove_tenant(100)
        assert removed == len(routes) + len(vms)
        assert controller.balancer.cluster_for_vni(100) is None
        assert controller.balancer.cluster_for_vni(101) == cluster_id
        assert 100 not in controller.plan.assignments
        # Capacity is actually released.
        usage = controller.plan.usage[cluster_id]
        assert usage.routes == len(routes) and usage.vms == len(vms)
        assert controller.consistency_check(cluster_id) == []

    def test_capacity_reusable_after_offboarding(self, controller):
        """Offboard + re-onboard cycles never exhaust the cluster."""
        for cycle in range(30):
            onboard(controller, vni=100)
            controller.remove_tenant(100)
        cluster_id, _routes, _vms = onboard(controller, vni=100)
        assert len(controller.clusters) == 1  # never overflowed to cluster-B

    def test_unknown_tenant_rejected(self, controller):
        with pytest.raises(TableError):
            controller.remove_tenant(999)

    def test_table_size_series_reflects_shrink(self, controller):
        cluster_id, _routes, _vms = onboard(controller)
        controller.remove_tenant(100, time=5.0)
        series = controller.table_size_series[cluster_id]
        assert series.values[-1] == 0
