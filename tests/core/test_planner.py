"""Tests for the cross-pipeline placement planner and Table 4 layout."""

import pytest

from repro.core.occupancy import OccupancyModel
from repro.core.planner import (
    LogicalTable,
    PlacementPlanner,
    sailfish_table_layout,
    table4_occupancy,
)
from repro.tables.geometry import MemoryFootprint
from repro.tofino.compiler import PlacementError
from repro.tofino.memory import SRAM_WORDS_PER_PIPELINE
from repro.tofino.pipeline import Gress, PipelineFabric


def fp(sram=0, tcam=0):
    return MemoryFootprint(sram_words=sram, tcam_slices=tcam)


class TestPlanner:
    def test_requires_folded(self):
        with pytest.raises(ValueError):
            PlacementPlanner(PipelineFabric(folded=False))

    def test_simple_plan(self):
        planner = PlacementPlanner(PipelineFabric(folded=True))
        report = planner.plan([
            LogicalTable("a", fp(sram=1000), (0, Gress.INGRESS)),
        ])
        assert report.pipes_of("a") == [(0, Gress.INGRESS)]

    def test_cross_pipeline_spill(self):
        """Fig. 15: a table too big for its preferred pipeline spills to a
        later pipe on the path."""
        planner = PlacementPlanner(PipelineFabric(folded=True))
        # Fill most of pipeline 1 with table C, then place a large D
        # preferring pipeline 1.
        big_c = fp(sram=int(SRAM_WORDS_PER_PIPELINE * 0.8))
        big_d = fp(sram=int(SRAM_WORDS_PER_PIPELINE * 0.5))
        report = planner.plan([
            LogicalTable("c", big_c, (1, Gress.INGRESS)),
            LogicalTable("d", big_d, (1, Gress.INGRESS), depends_on=("c",)),
        ])
        d_pipes = report.pipes_of("d")
        assert (1, Gress.INGRESS) in d_pipes
        assert (0, Gress.EGRESS) in d_pipes  # the spill segment

    def test_unspillable_table_fails_when_tight(self):
        planner = PlacementPlanner(PipelineFabric(folded=True))
        big = fp(sram=int(SRAM_WORDS_PER_PIPELINE * 0.8))
        with pytest.raises(PlacementError):
            planner.plan([
                LogicalTable("c", big, (1, Gress.INGRESS)),
                LogicalTable("d", big, (1, Gress.INGRESS), spillable=False),
            ])

    def test_total_overflow_fails(self):
        planner = PlacementPlanner(PipelineFabric(folded=True))
        huge = fp(sram=3 * SRAM_WORDS_PER_PIPELINE)
        with pytest.raises(PlacementError):
            planner.plan([LogicalTable("x", huge, (0, Gress.INGRESS))])

    def test_bad_preferred_pipe(self):
        planner = PlacementPlanner(PipelineFabric(folded=True))
        with pytest.raises(PlacementError):
            planner.plan([LogicalTable("x", fp(sram=1), (3, Gress.INGRESS))])

    def test_spill_respects_order_not_earlier(self):
        """Spill only flows forward along the lookup path."""
        planner = PlacementPlanner(PipelineFabric(folded=True))
        report = planner.plan([
            LogicalTable("last", fp(sram=1000), (0, Gress.EGRESS)),
        ])
        assert report.pipes_of("last") == [(0, Gress.EGRESS)]


class TestTable4:
    PAPER = {
        "pipeline_0_2": (0.70, 0.41),
        "pipeline_1_3": (0.68, 0.22),
        "sum": (0.69, 0.32),
    }

    def test_analytic_numbers(self):
        result = table4_occupancy()
        for key, (sram, tcam) in self.PAPER.items():
            got_sram, got_tcam = result[key]
            assert got_sram == pytest.approx(sram, abs=0.02), key
            assert got_tcam == pytest.approx(tcam, abs=0.02), key

    def test_layout_places_on_fabric(self):
        """The full table set physically fits the folded fabric under
        block-granular allocation."""
        fabric = PipelineFabric(folded=True)
        planner = PlacementPlanner(fabric)
        report = planner.plan(sailfish_table_layout())
        assert set(report.stage_map) == {
            "vxlan-routing-alpm", "vm-nc-pooled", "tenant-acl",
            "service-redirect", "underlay-fib", "qos-meters-counters",
        }
        # Block-granular occupancy lands near the analytic one.
        assert fabric.memory[0].sram_occupancy() == pytest.approx(0.70, abs=0.03)
        assert fabric.memory[0].tcam_occupancy() == pytest.approx(0.41, abs=0.03)
        assert fabric.memory[1].sram_occupancy() == pytest.approx(0.68, abs=0.03)
        assert fabric.memory[1].tcam_occupancy() == pytest.approx(0.22, abs=0.03)

    def test_room_for_growth(self):
        """§5.1: "there is still room for adding future table entries"."""
        result = table4_occupancy()
        for key in ("pipeline_0_2", "pipeline_1_3"):
            sram, tcam = result[key]
            assert sram < 0.85 and tcam < 0.6

    def test_layout_respects_dependencies(self):
        tables = sailfish_table_layout()
        names = [t.name for t in tables]
        for table in tables:
            for dep in table.depends_on:
                assert names.index(dep) < names.index(table.name)

    def test_custom_model_scales(self):
        from repro.core.occupancy import WorkloadScale

        small = OccupancyModel(WorkloadScale(routes=10_000, vms=20_000))
        result = table4_occupancy(small)
        # Main tables shrink; service tables stay constant.
        assert result["pipeline_0_2"][1] < self.PAPER["pipeline_0_2"][1]
