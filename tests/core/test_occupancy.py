"""Tests for the calibrated occupancy model against the paper's numbers.

Tolerances: the paper reports whole percentages, so we assert within
±1.5 percentage points (or the paper's own rounding).
"""

import pytest

from repro.core.occupancy import (
    ALL_STEPS,
    CostModel,
    Occupancy,
    OccupancyModel,
    Step,
    WorkloadScale,
)


@pytest.fixture
def model():
    return OccupancyModel.paper_scale()


class TestTable2:
    """Naive placement: Table 2's per-family and sum rows."""

    def test_vxlan_routing_ipv4(self, model):
        assert model.table2()["vxlan_routing"]["ipv4"].tcam_percent == pytest.approx(311, abs=1.5)

    def test_vxlan_routing_ipv6(self, model):
        assert model.table2()["vxlan_routing"]["ipv6"].tcam_percent == pytest.approx(622, abs=1.5)

    def test_vm_nc_ipv4(self, model):
        assert model.table2()["vm_nc"]["ipv4"].sram_percent == pytest.approx(58, abs=1.5)

    def test_vm_nc_ipv6(self, model):
        assert model.table2()["vm_nc"]["ipv6"].sram_percent == pytest.approx(233, abs=2.0)

    def test_sum_row(self, model):
        total = model.table2()["sum"]["mixed"]
        assert total.sram_percent == pytest.approx(102, abs=1.5)
        assert total.tcam_percent == pytest.approx(388.75, abs=1.5)

    def test_naive_does_not_fit(self, model):
        assert not model.total(set()).fits()


class TestFigure17:
    """Step-by-step compression trajectory."""

    PAPER = {
        "Initial": (102, 389),
        "a": (51, 194),
        "a+b": (26, 97),
        "a+b+c+d": (18, 156),
        "a+b+c+d+e": (36, 11),
    }

    def test_every_bar(self, model):
        for label, occupancy in model.figure17():
            sram, tcam = self.PAPER[label]
            assert occupancy.sram_percent == pytest.approx(sram, abs=1.5), label
            assert occupancy.tcam_percent == pytest.approx(tcam, abs=1.5), label

    def test_folding_halves(self, model):
        initial = model.total(set())
        folded = model.total({Step.FOLDING})
        assert folded.sram == pytest.approx(initial.sram / 2)
        assert folded.tcam == pytest.approx(initial.tcam / 2)

    def test_split_halves_again(self, model):
        folded = model.total({Step.FOLDING})
        split = model.total({Step.FOLDING, Step.SPLIT})
        assert split.tcam == pytest.approx(folded.tcam / 2)

    def test_pooling_grows_tcam(self, model):
        """Expanding IPv4 keys to 128 bits costs TCAM (97 -> 156)."""
        before = model.total({Step.FOLDING, Step.SPLIT})
        after = model.total({Step.FOLDING, Step.SPLIT, Step.POOLING})
        assert after.tcam > before.tcam

    def test_compression_shrinks_sram(self, model):
        before = model.total({Step.FOLDING, Step.SPLIT})
        after = model.total({Step.FOLDING, Step.SPLIT, Step.COMPRESSION})
        assert after.sram < before.sram

    def test_alpm_trades_tcam_for_sram(self, model):
        before = model.total(set(ALL_STEPS) - {Step.ALPM})
        after = model.total(set(ALL_STEPS))
        assert after.tcam < before.tcam / 10
        assert after.sram > before.sram


class TestTable3:
    def test_final_occupancy(self, model):
        table3 = model.table3()
        assert table3["sum"].sram_percent == pytest.approx(36, abs=1.5)
        assert table3["sum"].tcam_percent == pytest.approx(11, abs=1.5)
        assert table3["vm_nc"].sram_percent == pytest.approx(18, abs=1.5)
        assert table3["vxlan_routing"].sram_percent == pytest.approx(18, abs=1.5)
        assert table3["vxlan_routing"].tcam_percent == pytest.approx(11, abs=1.5)

    def test_fits_only_after_all_steps(self, model):
        report_rows = model.figure17()
        assert not report_rows[0][1].fits()
        assert report_rows[-1][1].fits()


class TestHeadlineReductions:
    """Abstract/§4.4: SRAM -38% / TCAM -96% (IPv4); -85% / -98% (IPv6)."""

    def test_ipv4(self, model):
        sram_red, tcam_red = model.reduction_vs_naive(ipv6_fraction=0.0)
        assert sram_red == pytest.approx(0.38, abs=0.03)
        assert tcam_red == pytest.approx(0.96, abs=0.01)

    def test_ipv6(self, model):
        sram_red, tcam_red = model.reduction_vs_naive(ipv6_fraction=1.0)
        assert sram_red == pytest.approx(0.85, abs=0.03)
        assert tcam_red == pytest.approx(0.98, abs=0.01)

    def test_mixed(self, model):
        """§4.4: 75/25 mix -> SRAM -65%, TCAM -97%."""
        sram_red, tcam_red = model.reduction_vs_naive()
        assert sram_red == pytest.approx(0.65, abs=0.03)
        assert tcam_red == pytest.approx(0.97, abs=0.01)


class TestModelMechanics:
    def test_pooling_makes_mix_irrelevant(self):
        """§4.4: after pooling, occupancy is independent of the v4/v6 mix."""
        totals = [
            OccupancyModel.paper_scale(ipv6_fraction=f).total(set(ALL_STEPS))
            for f in (0.0, 0.25, 0.5, 1.0)
        ]
        assert all(t.sram == pytest.approx(totals[0].sram, rel=0.02) for t in totals)
        assert all(t.tcam == pytest.approx(totals[0].tcam, rel=0.02) for t in totals)

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            WorkloadScale(routes=-1, vms=0)
        with pytest.raises(ValueError):
            WorkloadScale(routes=1, vms=1, ipv6_fraction=1.5)

    def test_family_split(self):
        scale = WorkloadScale(routes=100, vms=200, ipv6_fraction=0.25)
        assert scale.routes_by_family() == (75, 25)
        assert scale.vms_by_family() == (150, 50)

    def test_occupancy_add(self):
        total = Occupancy(0.1, 0.2) + Occupancy(0.3, 0.4)
        assert total.sram == pytest.approx(0.4)
        assert total.tcam == pytest.approx(0.6)

    def test_max_entries_that_fit_grows_with_steps(self, model):
        naive = model.max_entries_that_fit(set(), vm_per_route=2.5)
        optimized = model.max_entries_that_fit(set(ALL_STEPS), vm_per_route=2.5)
        assert optimized.routes > 3 * naive.routes
        # And the returned scale actually fits.
        check = OccupancyModel(optimized).total(set(ALL_STEPS))
        assert check.fits()

    def test_custom_cost_model(self):
        costs = CostModel(v6_exact_words=2)
        model = OccupancyModel(WorkloadScale.paper_scale(1.0), costs)
        assert model.table2()["vm_nc"]["ipv6"].sram_percent == pytest.approx(116, abs=1.5)
