"""Tests for the compression plan and its executable cross-checks."""

import pytest

from repro.core.compression import (
    CompressionPlan,
    build_composite_alpm,
    calibrate_alpm,
    split_routing_by_parity,
)
from repro.core.occupancy import ALL_STEPS, OccupancyModel, Step
from repro.net.addr import Prefix
from repro.sim.rand import derive
from repro.tables.vxlan_routing import RouteAction, Scope, VxlanRoutingTable


def build_routing_table(num_vnis=40, routes_per_vni=8, seed=1):
    rng = derive(seed, "routes")
    table = VxlanRoutingTable()
    for vni in range(1000, 1000 + num_vnis):
        for _ in range(routes_per_vni):
            net = rng.randrange(1 << 20) << 12
            table.insert(vni, Prefix.of(net, 20, 4), RouteAction(Scope.LOCAL),
                         replace=True)
    return table


class TestCompressionPlan:
    def test_full_plan_reaches_table3(self):
        report = CompressionPlan.full().apply(OccupancyModel.paper_scale())
        assert report.final.sram_percent == pytest.approx(36, abs=1.5)
        assert report.final.tcam_percent == pytest.approx(11, abs=1.5)
        assert len(report.rows) == 6

    def test_fits_after_label(self):
        report = CompressionPlan.full().apply(OccupancyModel.paper_scale())
        # Technically under 100% already after folding+splitting (TCAM at
        # 97%), but only the full plan leaves a production water level.
        assert report.fits_after() == "a+b"
        assert report.fits_after(max_utilization=0.5) == "a+b+c+d+e"

    def test_empty_plan(self):
        report = CompressionPlan.none().apply(OccupancyModel.paper_scale())
        assert len(report.rows) == 1
        assert not report.final.fits()

    def test_duplicate_step_rejected(self):
        with pytest.raises(ValueError):
            CompressionPlan([Step.FOLDING, Step.FOLDING])

    def test_without_ablation(self):
        plan = CompressionPlan.full().without(Step.ALPM)
        assert len(plan.steps) == 4
        report = plan.apply(OccupancyModel.paper_scale())
        # Without ALPM the TCAM stays oversubscribed.
        assert report.final.tcam_percent > 100

    def test_step_descriptions(self):
        for step in CompressionPlan.full().steps:
            assert step.description and step.label in "abcde"

    def test_percent_table_shape(self):
        table = CompressionPlan.full().apply(OccupancyModel.paper_scale()).as_percent_table()
        assert [row[0] for row in table] == [
            "Initial", "a", "a+b", "a+b+c", "a+b+c+d", "a+b+c+d+e",
        ]


class TestExecutableAlpm:
    def test_composite_alpm_resolves_correctly(self):
        table = build_routing_table()
        alpm = build_composite_alpm(table, bucket_capacity=8)
        rng = derive(2, "probes")
        checked = 0
        for vni, prefix, action in table.items():
            addr = prefix.network + rng.randrange(1 << 12)
            key = VxlanRoutingTable.composite_key(vni, addr, 4)
            hit = alpm.lookup(key)
            direct = table.lookup(vni, addr, 4)
            assert (hit is None) == (direct is None)
            checked += 1
        assert checked == len(table)

    def test_calibration_reports_utilization(self):
        table = build_routing_table(num_vnis=60, routes_per_vni=10)
        model = OccupancyModel.paper_scale()
        calibration = calibrate_alpm(table, model)
        stats = calibration.stats
        assert stats.routes == len(table)
        assert 0.2 < calibration.measured_utilization <= 1.0
        # The calibrated constant should be in the same regime as what the
        # real carve achieves on synthetic routes.
        assert calibration.utilization_error < 0.4

    def test_calibration_custom_capacity(self):
        table = build_routing_table(num_vnis=10)
        calibration = calibrate_alpm(table, OccupancyModel.paper_scale(), bucket_capacity=4)
        assert calibration.stats.bucket_capacity == 4


class TestParitySplit:
    def test_split_partitions_entries(self):
        table = build_routing_table(num_vnis=21)
        halves = split_routing_by_parity(table)
        assert len(halves[0]) + len(halves[1]) == len(table)
        assert all(vni % 2 == 0 for vni in halves[0].vnis())
        assert all(vni % 2 == 1 for vni in halves[1].vnis())

    def test_split_roughly_even(self):
        table = build_routing_table(num_vnis=40)
        halves = split_routing_by_parity(table)
        assert abs(len(halves[0]) - len(halves[1])) < len(table) * 0.2

    def test_lookups_preserved_in_right_half(self):
        table = build_routing_table(num_vnis=10)
        halves = split_routing_by_parity(table)
        for vni, prefix, _action in table.items():
            half = halves[vni % 2]
            hit = half.lookup(vni, prefix.network, prefix.version)
            assert hit is not None
