"""Tests for the assembled Sailfish region and the N+1 hierarchy plan."""

import pytest

from repro.core.hierarchy import ActiveEntryCache, HierarchyPlan
from repro.core.sailfish import HW_RESIDUAL_DROP_RATE, RegionSpec, Sailfish
from repro.dataplane.gateway_logic import ForwardAction
from repro.workloads.traffic import RegionTrafficGenerator


@pytest.fixture(scope="module")
def region():
    return Sailfish.build(RegionSpec.small(), seed=7)


class TestRegionBuild:
    def test_clusters_created_and_steered(self, region):
        assert len(region.controller.clusters) >= 1
        for vni in region.topology.vnis():
            assert region.balancer.cluster_for_vni(vni) is not None

    def test_x86_holds_full_tables(self, region):
        for x86 in region.x86_fleet:
            assert len(x86.tables.routing) == region.topology.total_routes()
            assert len(x86.tables.vm_nc) == region.topology.total_vms

    def test_consistency_after_build(self, region):
        for cluster_id in region.controller.clusters:
            assert region.controller.consistency_check(cluster_id) == []

    def test_probe_after_build(self, region):
        for cluster_id in region.controller.clusters:
            report = region.controller.probe(cluster_id, limit=8)
            assert report.ok


class TestRegionForwarding:
    def test_no_drops_on_clean_traffic(self, region):
        report = region.forward_sample(packets=300, seed=11)
        assert report.dropped == 0
        assert report.delivered + report.uplinked == report.packets

    def test_software_ratio_small(self, region):
        """Fig. 22's shape: only the SNAT slice reaches XGW-x86."""
        generator = RegionTrafficGenerator(region.topology, seed=13,
                                           internet_share=0.02)
        report = region.forward_sample(packets=500, generator=generator)
        assert 0 < report.software_ratio < 0.06

    def test_zero_internet_zero_software(self):
        region = Sailfish.build(RegionSpec.small(), seed=3)
        generator = RegionTrafficGenerator(region.topology, seed=3,
                                           internet_share=0.0)
        report = region.forward_sample(packets=200, generator=generator)
        assert report.software_packets == 0

    def test_snat_roundtrip_through_region(self, region):
        """A VM's Internet request and the response both traverse."""
        from dataclasses import replace
        from repro.net.headers import UDP
        from repro.workloads.traffic import build_vxlan_packet

        vni = region.topology.vnis()[0]
        vm = region.topology.vpcs[vni].vms[0]
        if vm.version != 4:
            pytest.skip("v4 SNAT path")
        request = build_vxlan_packet(vni, vm.ip, 0x5DB8D822, src_port=7777)
        out = region.forward(request)
        assert out.action is ForwardAction.UPLINK
        assert not out.packet.is_vxlan
        response = replace(
            out.packet,
            ip=type(out.packet.ip)(src=out.packet.ip.dst, dst=out.packet.ip.src,
                                   proto=out.packet.ip.proto),
            l4=UDP(src_port=out.packet.l4.dst_port, dst_port=out.packet.l4.src_port),
        )
        back = region.forward(response)
        assert back.action is ForwardAction.DELIVER_NC
        assert back.packet.inner.ip.dst == vm.ip

    def test_unassigned_vni_drops(self, region):
        from repro.workloads.traffic import build_vxlan_packet

        packet = build_vxlan_packet(vni=999_999, src_ip=1, dst_ip=2)
        result = region.forward(packet)
        assert result.action is ForwardAction.DROP
        assert result.detail == "unassigned-vni"


class TestCapacityModel:
    def test_hw_loss_floor(self, region):
        capacity = region.hardware_capacity_pps()
        loss = region.expected_hw_loss(capacity * 0.5)
        assert loss == pytest.approx(HW_RESIDUAL_DROP_RATE)
        assert 1e-11 <= loss <= 1e-10

    def test_hw_loss_overload(self, region):
        capacity = region.hardware_capacity_pps()
        loss = region.expected_hw_loss(capacity * 2.0)
        assert loss == pytest.approx(0.5, abs=0.01)

    def test_festival_recording(self, region):
        region.record_festival_sample(0.5, region.hardware_capacity_pps() * 0.4)
        assert "loss_rate" in region.series
        assert region.series["loss_rate"].values[-1] < 1e-9


class TestHierarchy:
    def test_paper_example_numbers(self):
        """§8: 4 cache clusters at 25% active -> 4x perf at 2x nodes."""
        plan = HierarchyPlan.paper_example()
        assert plan.performance_multiplier == 4.0
        assert plan.node_cost_multiplier == pytest.approx(2.0)
        assert plan.flat_nodes_for_same_performance == 16
        assert plan.total_nodes == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            HierarchyPlan(cache_clusters=0, active_fraction=0.25)
        with pytest.raises(ValueError):
            HierarchyPlan(cache_clusters=1, active_fraction=1.5)

    def test_active_entry_cache(self):
        cache = ActiveEntryCache(active_fraction=0.25)
        # Entry popularity: entry 0 is hot.
        for _ in range(100):
            cache.record_hit("hot")
        for i in range(3):
            cache.record_hit(f"cold-{i}")
        cache.refresh()
        assert cache.lookup("hot") is True
        assert cache.lookup("cold-0") is False
        assert cache.active_entries() == {"hot"}
        assert 0 < cache.hit_rate < 1

    def test_cache_refresh_resets_epoch(self):
        cache = ActiveEntryCache(active_fraction=0.5)
        cache.record_hit("a")
        cache.refresh()
        cache.refresh()  # no hits this epoch
        assert cache.active_entries() == set()

    def test_cache_hit_rate_with_8020_workload(self):
        """With 25% active entries serving a 95/5 skew, hit rate ~ 95%."""
        import random

        cache = ActiveEntryCache(active_fraction=0.25)
        rng = random.Random(5)
        entries = [f"e{i}" for i in range(100)]
        def draw():
            return entries[rng.randrange(25)] if rng.random() < 0.95 else \
                entries[25 + rng.randrange(75)]
        for _ in range(2000):
            cache.record_hit(draw())
        cache.refresh()
        for _ in range(2000):
            cache.lookup(draw())
        assert cache.hit_rate > 0.8
