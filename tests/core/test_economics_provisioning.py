"""Tests for the deployment economics and install-time models."""

import pytest

from repro.core.economics import (
    XGW_H,
    XGW_X86,
    GatewayKind,
    compare_region,
    size_fleet,
)
from repro.core.provisioning import (
    InstallJob,
    UpdatePropagation,
    full_region_install_sailfish,
    full_region_install_x86,
)


class TestFleetSizing:
    def test_paper_600_boxes(self):
        """§2.3: 15T / 100G at 50% water level, doubled for backup = 600."""
        plan = size_fleet(XGW_X86)
        assert plan.nodes == 600
        assert plan.capex_usd == pytest.approx(6_000_000)

    def test_sailfish_20_boxes(self):
        plan = size_fleet(XGW_H)
        assert plan.nodes == 20

    def test_usable_capacity_covers_traffic(self):
        for kind in (XGW_X86, XGW_H):
            plan = size_fleet(kind)
            assert plan.usable_capacity_bps >= 15e12

    def test_water_level_validation(self):
        with pytest.raises(ValueError):
            size_fleet(XGW_X86, water_level=0.0)
        with pytest.raises(ValueError):
            size_fleet(XGW_X86, backup_factor=0)

    def test_higher_water_level_fewer_boxes(self):
        conservative = size_fleet(XGW_X86, water_level=0.5)
        aggressive = size_fleet(XGW_X86, water_level=0.8)
        assert aggressive.nodes < conservative.nodes


class TestCostComparison:
    def test_capex_reduction_over_90_percent(self):
        """Abstract: "reduces the total hardware acquisition cost by more
        than 90% for a region"."""
        comparison = compare_region()
        assert comparison.capex_reduction > 0.9

    def test_node_counts_match_paper(self):
        """§4.2: "from hundreds of XGW-x86s to ten XGW-Hs ... and four
        XGW-x86s"."""
        comparison = compare_region()
        assert comparison.software.nodes >= 600
        assert comparison.sailfish_hw.nodes <= 20
        assert comparison.sailfish_sw_nodes == 4

    def test_node_reduction(self):
        assert compare_region().node_reduction > 0.9

    def test_custom_kind(self):
        cheap = GatewayKind("custom", throughput_bps=1e12, unit_price_usd=5_000)
        plan = size_fleet(cheap)
        assert plan.capex_usd == plan.nodes * 5_000


class TestInstallTiming:
    def test_x86_over_ten_minutes_per_gateway(self):
        """§2.3: "more than ten minutes to install all the tables into
        one XGW-x86 gateway"."""
        job = full_region_install_x86()
        assert job.per_gateway_seconds > 600

    def test_fleet_install_dominated_by_gateway_count(self):
        x86 = full_region_install_x86()
        sailfish = full_region_install_sailfish()
        assert x86.total_seconds > 10 * sailfish.total_seconds

    def test_inconsistency_window(self):
        job = InstallJob(entries=1000, gateways=16, install_rate=1000.0,
                         controller_threads=8)
        # Two waves of 1s each; window = total - one install.
        assert job.total_seconds == pytest.approx(2.0)
        assert job.inconsistency_window_seconds == pytest.approx(1.0)

    def test_single_gateway_no_window(self):
        job = InstallJob(entries=1000, gateways=1, install_rate=1000.0)
        assert job.inconsistency_window_seconds == 0.0

    def test_more_threads_faster(self):
        slow = InstallJob(entries=1000, gateways=64, install_rate=1000.0,
                          controller_threads=4)
        fast = InstallJob(entries=1000, gateways=64, install_rate=1000.0,
                          controller_threads=32)
        assert fast.total_seconds < slow.total_seconds

    def test_validation(self):
        with pytest.raises(ValueError):
            InstallJob(entries=-1, gateways=1, install_rate=1.0)
        with pytest.raises(ValueError):
            InstallJob(entries=1, gateways=0, install_rate=1.0)
        with pytest.raises(ValueError):
            InstallJob(entries=1, gateways=1, install_rate=0.0)

    def test_update_propagation_scales_with_fleet(self):
        big = UpdatePropagation(gateways=600)
        small = UpdatePropagation(gateways=14)
        assert big.propagation_seconds > 40 * small.propagation_seconds


class TestConsolidation:
    """Fig. 3 / §2.2: merging ad hoc per-service clusters."""

    def test_savings_from_pooling_small_services(self):
        from repro.core.economics import consolidation_savings

        # One big service + a tail of small ones, each previously with its
        # own min-size cluster and backup.
        comparison = consolidation_savings([40e9, 6e9, 4e9, 2e9, 1e9, 0.5e9])
        assert comparison.node_savings > 0.3
        assert comparison.codebases_before == 6
        assert comparison.codebases_after == 1

    def test_single_service_no_savings(self):
        from repro.core.economics import consolidation_savings

        comparison = consolidation_savings([100e9])
        assert comparison.dedicated_nodes == comparison.consolidated_nodes
        assert comparison.node_savings == 0.0

    def test_validation(self):
        import pytest as _pytest

        from repro.core.economics import consolidation_savings

        with _pytest.raises(ValueError):
            consolidation_savings([])
        with _pytest.raises(ValueError):
            consolidation_savings([-1.0])
