"""Tests for cross-region forwarding over the CEN."""

import pytest

from repro.core.multiregion import Cen, CrossRegionResult, DEFAULT_LINK_LATENCY_US
from repro.core.sailfish import RegionSpec, Sailfish
from repro.dataplane.gateway_logic import ForwardAction
from repro.workloads.traffic import build_vxlan_packet


def v4_vm(region, vni):
    for vm in region.topology.vpcs[vni].vms:
        if vm.version == 4:
            return vm
    pytest.skip("no v4 VM in VPC")


@pytest.fixture(scope="module")
def deployment():
    cen = Cen()
    from dataclasses import replace as dc_replace

    china = Sailfish.build(RegionSpec.small(), seed=61)
    # Disjoint address plan for the second region (real cross-region
    # connections require non-overlapping CIDRs).
    usa = Sailfish.build(dc_replace(RegionSpec.small(), subnet_base_index=4096),
                         seed=62)
    cen.attach("china", china)
    cen.attach("usa", usa)
    cen.add_link("china", "usa")
    vni_a = china.topology.vnis()[0]
    vni_b = usa.topology.vnis()[0]
    cen.connect_vpcs(("china", vni_a), ("usa", vni_b))
    return cen, china, usa, vni_a, vni_b


class TestProvisioning:
    def test_routes_installed_both_directions(self, deployment):
        cen, china, usa, vni_a, vni_b = deployment
        remote_subnet = usa.topology.vpcs[vni_b].subnets[0]
        gw = next(iter(china.controller.clusters.values())).members()[0].gateway
        hit = gw.tables.routing.lookup(vni_a, remote_subnet.network,
                                       remote_subnet.version)
        assert hit is not None
        assert hit[1].target == "region:usa"
        # Reverse direction too.
        local_subnet = china.topology.vpcs[vni_a].subnets[0]
        gw_b = next(iter(usa.controller.clusters.values())).members()[0].gateway
        assert gw_b.tables.routing.lookup(vni_b, local_subnet.network,
                                          local_subnet.version) is not None

    def test_link_required(self):
        cen = Cen()
        cen.attach("a", Sailfish.build(RegionSpec.small(), seed=1))
        with pytest.raises(KeyError):
            cen.add_link("a", "ghost")

    def test_connect_requires_link(self):
        cen = Cen()
        a = Sailfish.build(RegionSpec.small(), seed=1)
        b = Sailfish.build(RegionSpec.small(), seed=2)
        cen.attach("a", a)
        cen.attach("b", b)
        with pytest.raises(KeyError):
            cen.connect_vpcs(("a", a.topology.vnis()[0]),
                             ("b", b.topology.vnis()[0]))


class TestCrossRegionForwarding:
    def test_vm_to_remote_vm(self, deployment):
        """Table 1's "VM-Cross-region" row, end to end."""
        cen, china, usa, vni_a, vni_b = deployment
        src = v4_vm(china, vni_a)
        dst = v4_vm(usa, vni_b)
        packet = build_vxlan_packet(vni_a, src.ip, dst.ip)
        outcome = cen.forward("china", packet)
        assert outcome.result.action is ForwardAction.DELIVER_NC
        assert outcome.result.packet.ip.dst == dst.nc_ip
        assert outcome.result.packet.vni == vni_b  # translated at the CEN
        assert outcome.hops == ["region:china", "cen:china->usa", "region:usa"]
        assert outcome.latency_us == DEFAULT_LINK_LATENCY_US
        assert cen.packets_carried >= 1

    def test_local_traffic_never_crosses(self, deployment):
        cen, china, _usa, vni_a, _vni_b = deployment
        src = v4_vm(china, vni_a)
        packet = build_vxlan_packet(vni_a, src.ip ^ 1, src.ip)
        outcome = cen.forward("china", packet)
        assert outcome.result.action is ForwardAction.DELIVER_NC
        assert outcome.hops == ["region:china"]
        assert outcome.latency_us == 0.0

    def test_unmapped_vni_dropped_at_cen(self, deployment):
        cen, china, usa, vni_a, vni_b = deployment
        # A different VPC in china has no cross-region mapping; force a
        # cross-region route for it pointing at usa.
        other_vni = china.topology.vnis()[1]
        from repro.core.controller import RouteEntry
        from repro.net.addr import Prefix
        from repro.tables.vxlan_routing import RouteAction, Scope

        cluster_id = china.balancer.cluster_for_vni(other_vni)
        china.controller.install_route(
            cluster_id,
            RouteEntry(other_vni, Prefix.parse("198.18.0.0/16"),
                       RouteAction(Scope.CROSS_REGION, target="region:usa")),
        )
        src = v4_vm(china, other_vni)
        packet = build_vxlan_packet(other_vni, src.ip, 0xC6120001)
        outcome = cen.forward("china", packet)
        assert outcome.result.action is ForwardAction.DROP
        assert outcome.result.detail == "cen-no-mapping"

    def test_return_path_works(self, deployment):
        cen, china, usa, vni_a, vni_b = deployment
        src = v4_vm(usa, vni_b)
        dst = v4_vm(china, vni_a)
        packet = build_vxlan_packet(vni_b, src.ip, dst.ip)
        outcome = cen.forward("usa", packet)
        assert outcome.result.action is ForwardAction.DELIVER_NC
        assert outcome.result.packet.vni == vni_a
