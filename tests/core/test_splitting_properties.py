"""Property-based suite for the horizontal splitter (§4.3): the shard
layer leans on SplitPlan/TableSplitter for ownership, so its contract —
total, stable, capacity-safe, deterministic — is pinned with hypothesis."""

import json

from hypothesis import given, settings, strategies as st

from repro.core.journal import canonical_json
from repro.core.splitting import (ClusterCapacity, SplitError, TableSplitter,
                                  TenantProfile)

CAPACITY = ClusterCapacity(routes=100, vms=200, traffic_bps=1e10)

tenant_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1 << 24 - 1),  # vni
        st.integers(min_value=0, max_value=100),          # routes
        st.integers(min_value=0, max_value=200),          # vms
        st.integers(min_value=0, max_value=int(1e10)),    # traffic
    ),
    min_size=1, max_size=40,
    unique_by=lambda t: t[0],
).map(lambda rows: [TenantProfile(v, r, m, float(b)) for v, r, m, b in rows])


def usage_within_capacity(plan):
    for cluster_id, used in plan.usage.items():
        assert used.routes <= CAPACITY.routes, cluster_id
        assert used.vms <= CAPACITY.vms, cluster_id
        assert used.traffic_bps <= CAPACITY.traffic_bps, cluster_id


def plan_fingerprint(plan):
    return canonical_json({
        "assignments": {str(v): c for v, c in plan.assignments.items()},
        "usage": {
            c: {"routes": u.routes, "vms": u.vms,
                "traffic_bps": u.traffic_bps,
                "tenants": sorted(u.tenants)}
            for c, u in plan.usage.items()
        },
    })


class TestClusterOfTotalAndStable:
    @settings(max_examples=60, deadline=None)
    @given(tenants=tenant_lists)
    def test_every_tenant_is_placed_exactly_once(self, tenants):
        plan = TableSplitter(CAPACITY).assign(tenants)
        assert sorted(plan.assignments) == sorted(t.vni for t in tenants)
        for tenant in tenants:
            assert plan.cluster_of(tenant.vni) in plan.usage
        # Usage back-references partition the tenant set.
        members = [v for u in plan.usage.values() for v in u.tenants]
        assert sorted(members) == sorted(plan.assignments)

    @settings(max_examples=60, deadline=None)
    @given(tenants=tenant_lists, extra_vni=st.integers(min_value=1 << 24,
                                                       max_value=1 << 25))
    def test_placement_is_stable_under_unrelated_growth(self, tenants,
                                                        extra_vni):
        splitter = TableSplitter(CAPACITY)
        plan = splitter.assign(tenants)
        before = dict(plan.assignments)
        try:
            splitter.place(plan, TenantProfile(extra_vni, 1, 1, 1.0))
        except SplitError:
            pass
        for vni, cluster_id in before.items():
            assert plan.cluster_of(vni) == cluster_id

    @settings(max_examples=60, deadline=None)
    @given(tenants=tenant_lists)
    def test_blast_radius_is_exactly_the_co_residents(self, tenants):
        plan = TableSplitter(CAPACITY).assign(tenants)
        for tenant in tenants:
            radius = plan.blast_radius(tenant.vni)
            assert tenant.vni in radius
            cluster_id = plan.cluster_of(tenant.vni)
            assert radius == sorted(plan.usage[cluster_id].tenants)


class TestRebalancePreservesInvariants:
    @settings(max_examples=60, deadline=None)
    @given(tenants=tenant_lists, data=st.data())
    def test_rebalance_never_violates_capacity(self, tenants, data):
        splitter = TableSplitter(CAPACITY)
        plan = splitter.assign(tenants)
        usage_within_capacity(plan)
        mover = data.draw(st.sampled_from(tenants))
        target = data.draw(st.sampled_from(plan.clusters()))
        try:
            splitter.rebalance_tenant(plan, mover, target)
        except SplitError:
            pass  # refusing an unfit move is the invariant holding
        usage_within_capacity(plan)
        assert sorted(plan.assignments) == sorted(t.vni for t in tenants)
        members = [v for u in plan.usage.values() for v in u.tenants]
        assert sorted(members) == sorted(plan.assignments)

    @settings(max_examples=60, deadline=None)
    @given(tenants=tenant_lists, data=st.data())
    def test_rebalance_roundtrip_restores_usage(self, tenants, data):
        splitter = TableSplitter(CAPACITY)
        plan = splitter.assign(tenants)
        mover = data.draw(st.sampled_from(tenants))
        home = plan.cluster_of(mover.vni)
        target = data.draw(st.sampled_from(plan.clusters()))
        fingerprint = plan_fingerprint(plan)
        try:
            splitter.rebalance_tenant(plan, mover, target)
        except SplitError:
            return
        splitter.rebalance_tenant(plan, mover, home)
        assert plan_fingerprint(plan) == fingerprint


class TestDeterminism:
    @settings(max_examples=60, deadline=None)
    @given(tenants=tenant_lists)
    def test_equal_inputs_produce_byte_identical_plans(self, tenants):
        a = TableSplitter(CAPACITY).assign(list(tenants))
        b = TableSplitter(CAPACITY).assign(list(reversed(tenants)))
        # assign() orders tenants canonically, so even a permuted input
        # yields the same bytes — the property the shard router's
        # "agree without talking" contract rests on.
        assert plan_fingerprint(a) == plan_fingerprint(b)
        json.loads(plan_fingerprint(a))  # stays valid JSON
