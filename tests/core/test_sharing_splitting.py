"""Tests for the HW/SW sharing policy and horizontal table splitting."""

import pytest

from repro.core.splitting import (
    ClusterCapacity,
    SplitError,
    TableSplitter,
    TenantProfile,
    vertical_split_blast_radius,
)
from repro.core.table_sharing import (
    ServiceProfile,
    SharingPolicy,
    eighty_twenty_entries,
)


def services():
    return [
        ServiceProfile("vpc-routing", traffic_share=0.80, entries=800_000),
        ServiceProfile("vm-nc", traffic_share=0.15, entries=600_000),
        ServiceProfile("snat", traffic_share=0.03, entries=100_000_000, stateful=True),
        ServiceProfile("festival-lb", traffic_share=0.01, entries=5_000, volatile=True),
        ServiceProfile("newborn", traffic_share=0.005, entries=1_000, maturity=0.1),
        ServiceProfile("idc", traffic_share=0.005, entries=50_000),
    ]


class TestSharingPolicy:
    def test_mature_heavy_services_to_hardware(self):
        decision = SharingPolicy(hardware_entry_budget=2_000_000).decide(services())
        assert decision.placed_in_hardware("vpc-routing")
        assert decision.placed_in_hardware("vm-nc")
        assert decision.placed_in_hardware("idc")

    def test_stateful_stays_soft(self):
        decision = SharingPolicy(hardware_entry_budget=2_000_000).decide(services())
        assert not decision.placed_in_hardware("snat")

    def test_volatile_stays_soft(self):
        decision = SharingPolicy(hardware_entry_budget=2_000_000).decide(services())
        assert not decision.placed_in_hardware("festival-lb")

    def test_newborn_stays_soft(self):
        decision = SharingPolicy(hardware_entry_budget=2_000_000).decide(services())
        assert not decision.placed_in_hardware("newborn")

    def test_budget_enforced(self):
        decision = SharingPolicy(hardware_entry_budget=900_000).decide(services())
        assert decision.placed_in_hardware("vpc-routing")
        assert not decision.placed_in_hardware("vm-nc")  # over budget

    def test_software_traffic_share_small(self):
        """Fig. 22's premise: hardware absorbs the vast majority."""
        decision = SharingPolicy(hardware_entry_budget=2_000_000).decide(services())
        assert decision.software_traffic_share < 0.05
        assert decision.hardware_traffic_share > 0.95

    def test_redirect_rate_limit(self):
        decision = SharingPolicy(hardware_entry_budget=2_000_000,
                                 redirect_headroom=2.0).decide(
            services(), region_traffic_bps=10e12)
        expected = decision.software_traffic_share * 10e12 * 2.0
        assert decision.redirect_rate_limit_bps == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            SharingPolicy(hardware_entry_budget=0)
        with pytest.raises(ValueError):
            ServiceProfile("x", traffic_share=1.5, entries=1)
        with pytest.raises(ValueError):
            ServiceProfile("x", traffic_share=0.5, entries=-1)

    def test_eighty_twenty(self):
        hot, hot_share, cold_share = eighty_twenty_entries(1000)
        assert hot == 50 and hot_share == 0.95
        assert cold_share == pytest.approx(0.05)
        with pytest.raises(ValueError):
            eighty_twenty_entries(100, hot_entry_fraction=0.0)


class TestTableSplitter:
    CAPACITY = ClusterCapacity(routes=100, vms=1000, traffic_bps=1e12)

    def test_single_cluster_when_fits(self):
        splitter = TableSplitter(self.CAPACITY)
        plan = splitter.assign([TenantProfile(i, 10, 50, 1e10) for i in range(5)])
        assert len(plan.clusters()) == 1

    def test_new_cluster_on_overflow(self):
        splitter = TableSplitter(self.CAPACITY)
        # 50+50 routes fill a cluster; the third tenant opens a new one.
        plan = splitter.assign([TenantProfile(i, 50, 100, 1e10) for i in range(3)])
        assert len(plan.clusters()) == 2

    def test_tenant_bigger_than_cluster_rejected(self):
        splitter = TableSplitter(self.CAPACITY)
        with pytest.raises(SplitError):
            splitter.assign([TenantProfile(1, 200, 10, 1e10)])

    def test_heaviest_first_order(self):
        splitter = TableSplitter(self.CAPACITY)
        plan = splitter.assign([
            TenantProfile(1, 10, 10, 1e10),
            TenantProfile(2, 90, 10, 9e11),
        ])
        # The heavy tenant lands in the first cluster.
        assert plan.cluster_of(2) == "cluster-A"

    def test_blast_radius_is_one_cluster(self):
        """§4.3 fault isolation: a faulty tenant only affects co-residents."""
        splitter = TableSplitter(self.CAPACITY)
        tenants = [TenantProfile(i, 60, 100, 1e10) for i in range(4)]
        plan = splitter.assign(tenants)
        radius = plan.blast_radius(tenants[0].vni)
        assert len(radius) < len(tenants)
        assert vertical_split_blast_radius(len(tenants)) == len(tenants)

    def test_incremental_place(self):
        splitter = TableSplitter(self.CAPACITY)
        plan = splitter.assign([TenantProfile(1, 10, 10, 1e10)])
        cluster = splitter.place(plan, TenantProfile(2, 10, 10, 1e10))
        assert cluster == "cluster-A"
        with pytest.raises(SplitError):
            splitter.place(plan, TenantProfile(2, 10, 10, 1e10))  # already placed

    def test_usage_tracking(self):
        splitter = TableSplitter(self.CAPACITY)
        plan = splitter.assign([TenantProfile(1, 10, 20, 1e10)])
        usage = plan.usage["cluster-A"]
        assert usage.routes == 10 and usage.vms == 20

    def test_rebalance(self):
        splitter = TableSplitter(self.CAPACITY)
        t1 = TenantProfile(1, 10, 10, 1e10)
        t2 = TenantProfile(2, 95, 10, 1e10)
        plan = splitter.assign([t1, t2])
        assert len(plan.clusters()) == 2
        source = plan.cluster_of(1)
        target = next(c for c in plan.clusters() if c != source)
        # Moving tenant 1 into tenant 2's cluster would overflow routes.
        if plan.usage[target].routes + t1.routes > self.CAPACITY.routes:
            with pytest.raises(SplitError):
                splitter.rebalance_tenant(plan, t1, target)
        else:
            splitter.rebalance_tenant(plan, t1, target)
            assert plan.cluster_of(1) == target

    def test_rebalance_validation(self):
        splitter = TableSplitter(self.CAPACITY)
        plan = splitter.assign([TenantProfile(1, 10, 10, 1e10)])
        with pytest.raises(SplitError):
            splitter.rebalance_tenant(plan, TenantProfile(9, 1, 1, 1), "cluster-A")
        with pytest.raises(SplitError):
            splitter.rebalance_tenant(plan, TenantProfile(1, 10, 10, 1e10), "ghost")

    def test_rebalance_same_cluster_noop(self):
        splitter = TableSplitter(self.CAPACITY)
        t1 = TenantProfile(1, 10, 10, 1e10)
        plan = splitter.assign([t1])
        splitter.rebalance_tenant(plan, t1, "cluster-A")
        assert plan.cluster_of(1) == "cluster-A"

    def test_cluster_naming_beyond_alphabet(self):
        splitter = TableSplitter(ClusterCapacity(routes=1, vms=1, traffic_bps=1e12))
        tenants = [TenantProfile(i, 1, 1, 0.0) for i in range(30)]
        plan = splitter.assign(tenants)
        assert len(plan.clusters()) == 30
