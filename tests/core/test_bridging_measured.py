"""Measured bridging on the executable data path vs the planner's model."""

import ipaddress

import pytest

from repro.core.planner import bridge_cost, sailfish_table_layout
from repro.core.xgw_h import XgwH
from repro.net.addr import Prefix
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import RouteAction, Scope
from repro.workloads.traffic import build_vxlan_packet

VPC = 100


def ip(text):
    return int(ipaddress.ip_address(text))


@pytest.fixture
def gateway():
    gw = XgwH(gateway_ip=ip("10.0.0.254"))
    gw.install_route(VPC, Prefix.parse("192.168.10.0/24"), RouteAction(Scope.LOCAL))
    gw.install_route(VPC, Prefix.parse("172.31.0.0/16"),
                     RouteAction(Scope.IDC, target="cen"))
    gw.install_vm(VPC, ip("192.168.10.3"), 4, NcBinding(ip("10.1.1.12")))
    return gw


class TestMeasuredBridging:
    def test_local_delivery_bridges_metadata(self, gateway):
        packet = build_vxlan_packet(VPC, ip("192.168.10.2"), ip("192.168.10.3"))
        gateway.forward(packet)
        # Three boundaries cross: resolved_vni+scope (4B), then +nc_ip
        # twice (8B each) = 20 bytes.
        assert gateway.stats.bridged_bytes == 20
        assert gateway.stats.mean_bridge_bytes == pytest.approx(20.0)

    def test_uplink_exits_without_bridging(self, gateway):
        packet = build_vxlan_packet(VPC, ip("192.168.10.2"), ip("172.31.1.1"))
        gateway.forward(packet)
        assert gateway.stats.bridged_bytes == 0

    def test_throughput_loss_formula(self, gateway):
        packet = build_vxlan_packet(VPC, ip("192.168.10.2"), ip("192.168.10.3"))
        gateway.forward(packet)
        loss = gateway.stats.bridge_throughput_loss(256)
        assert loss == pytest.approx(20 / 276)
        with pytest.raises(ValueError):
            gateway.stats.bridge_throughput_loss(0)

    def test_measured_same_order_as_planner_model(self, gateway):
        """The executable bridge bytes and the planner's analytic model
        agree on magnitude (both count the same metadata fields)."""
        packet = build_vxlan_packet(VPC, ip("192.168.10.2"), ip("192.168.10.3"))
        gateway.forward(packet)
        modeled = bridge_cost(sailfish_table_layout()).bytes_per_packet
        measured = gateway.stats.mean_bridge_bytes
        assert 0.3 <= measured / modeled <= 3.0

    def test_mix_dilutes_mean(self, gateway):
        local = build_vxlan_packet(VPC, ip("192.168.10.2"), ip("192.168.10.3"))
        uplink = build_vxlan_packet(VPC, ip("192.168.10.2"), ip("172.31.1.1"))
        gateway.forward(local)
        gateway.forward(uplink)
        assert gateway.stats.mean_bridge_bytes == pytest.approx(10.0)
