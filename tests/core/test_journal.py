"""The write-ahead journal: framing, rotation, snapshots, replay."""

import json

import pytest

from repro.core.journal import (
    Journal,
    JournalCorruption,
    JournalError,
    JournalRecord,
    canonical_json,
    empty_state,
)


def route_op(cluster="A", vni=7, prefix="10.0.0.0/8", scope="local"):
    return "install-route", {
        "cluster": cluster, "vni": vni, "prefix": prefix,
        "action": {"scope": scope, "next_hop_vni": None, "target": None},
    }


def vm_op(cluster="A", vni=7, vm_ip=0x0A000001, version=4, nc_ip=0x0B000001):
    return "install-vm", {
        "cluster": cluster, "vni": vni, "vm_ip": vm_ip, "vm_version": version,
        "binding": {"nc_ip": nc_ip, "nc_version": 4},
    }


class TestRecordFraming:
    def test_roundtrip(self):
        rec = JournalRecord(3, "install-route", {"vni": 7, "prefix": "10.0.0.0/8"})
        assert JournalRecord.decode(rec.encode()) == rec

    def test_payload_with_pipe_characters_survives(self):
        # Journalled keys use "|" internally; the frame splits on the
        # *last* pipe for the CRC and the first two for seq/op.
        rec = JournalRecord(0, "txn", {"key": "7|10.0.0.0/8", "ops": []})
        assert JournalRecord.decode(rec.encode()) == rec

    def test_checksum_flip_detected(self):
        encoded = bytearray(JournalRecord(1, "install-vm", {"vni": 9}).encode())
        pos = encoded.index(b"9")
        encoded[pos:pos + 1] = b"8"
        with pytest.raises(JournalCorruption, match="checksum"):
            JournalRecord.decode(bytes(encoded))

    def test_unparseable_line_detected(self):
        with pytest.raises(JournalCorruption, match="unparseable"):
            JournalRecord.decode(b"not a record\n")

    def test_canonical_json_is_key_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})


class TestAppendAndRotation:
    def test_sequence_is_monotonic(self):
        journal = Journal()
        seqs = [journal.append(*route_op(vni=i)).seq for i in range(5)]
        assert seqs == [0, 1, 2, 3, 4]
        assert journal.last_seq == 4 and journal.appends == 5

    def test_rotation_bounds_segments(self):
        journal = Journal(segment_bytes=256)
        for i in range(20):
            journal.append(*route_op(vni=i))
        assert journal.rotations > 0
        assert all(len(s.data) <= 256 for s in journal.segments)
        # Rotation loses nothing.
        assert [r.seq for r in journal.records(after_seq=-1)] == list(range(20))

    def test_bad_segment_size_rejected(self):
        with pytest.raises(JournalError):
            Journal(segment_bytes=0)


class TestReplay:
    def test_materialize_applies_installs_and_removes(self):
        journal = Journal()
        journal.append(*route_op(vni=7))
        journal.append(*vm_op(vni=7))
        journal.append("remove-route", {"cluster": "A", "vni": 7,
                                        "prefix": "10.0.0.0/8"})
        state = journal.materialize()
        assert state["routes"]["A"] == {}
        assert state["vms"]["A"]["7|167772161|4"]["nc_ip"] == 0x0B000001

    def test_materialize_is_idempotent(self):
        journal = Journal()
        for i in range(4):
            journal.append(*route_op(vni=i))
        assert journal.materialize() == journal.materialize()

    def test_replay_tolerates_duplicate_effects(self):
        # Upsert/delete semantics: re-installing and re-removing the same
        # entry converges to the same state.
        journal = Journal()
        journal.append(*route_op(vni=7))
        journal.append(*route_op(vni=7))
        journal.append("remove-vm", {"cluster": "A", "vni": 9,
                                     "vm_ip": 1, "vm_version": 4})
        state = journal.materialize()
        assert list(state["routes"]["A"]) == ["7|10.0.0.0/8"]

    def test_unknown_op_raises(self):
        journal = Journal()
        journal.append("frobnicate", {"x": 1})
        with pytest.raises(JournalError, match="unknown journal op"):
            journal.materialize()


class TestSnapshots:
    def test_snapshot_plus_tail_equals_genesis_replay(self):
        genesis = Journal()
        snapped = Journal()
        for i in range(6):
            genesis.append(*route_op(vni=i))
            snapped.append(*route_op(vni=i))
            if i == 2:
                snapped.snapshot(snapped.materialize())
        assert snapped.materialize() == genesis.materialize()

    def test_snapshot_prunes_covered_segments(self):
        journal = Journal(segment_bytes=256)
        for i in range(20):
            journal.append(*route_op(vni=i))
        segments_before = len(journal.segments)
        journal.snapshot(journal.materialize())
        assert len(journal.segments) < segments_before
        # The tail after the snapshot is empty; replay still sees all 20.
        assert journal.records() == []
        assert len(journal.materialize()["routes"]["A"]) == 20

    def test_appends_after_snapshot_land_in_tail(self):
        journal = Journal()
        journal.append(*route_op(vni=1))
        journal.snapshot(journal.materialize())
        journal.append(*route_op(vni=2))
        assert [r.payload["vni"] for r in journal.records()] == [2]
        assert len(journal.materialize()["routes"]["A"]) == 2

    def test_snapshot_is_a_deep_copy(self):
        journal = Journal()
        state = empty_state()
        journal.snapshot(state)
        state["version"] = 99
        assert journal.snapshot_state["version"] == 0


class TestTransactions:
    def _txn(self, journal, commit):
        _op, payload = route_op(vni=42)
        payload["op"] = "install-route"
        rec = journal.append("txn", {"cluster": "A", "ops": [payload]})
        if commit:
            journal.append("txn-commit", {"txn_seq": rec.seq})
        return rec

    def test_committed_txn_applies(self):
        journal = Journal()
        self._txn(journal, commit=True)
        state = journal.materialize()
        assert "42|10.0.0.0/8" in state["routes"]["A"]
        assert state["version"] == 1

    def test_unterminated_txn_is_skipped(self):
        # A crash between the txn append and the push leaves no commit
        # marker; replay must treat the batch as never-happened.
        journal = Journal()
        self._txn(journal, commit=False)
        assert journal.materialize() == empty_state()

    def test_aborted_txn_is_skipped(self):
        journal = Journal()
        rec = self._txn(journal, commit=False)
        journal.append("txn-abort", {"txn_seq": rec.seq})
        assert journal.materialize() == empty_state()

    def test_commit_for_unknown_txn_raises(self):
        journal = Journal()
        journal.append("txn-commit", {"txn_seq": 99})
        with pytest.raises(JournalError, match="unknown"):
            journal.materialize()


class TestSerialisation:
    def _populated(self):
        journal = Journal(segment_bytes=256)
        for i in range(10):
            journal.append(*route_op(vni=i))
        journal.snapshot(journal.materialize())
        journal.append(*vm_op(vni=3))
        return journal

    def test_dump_load_roundtrip(self):
        journal = self._populated()
        loaded = Journal.load(journal.dump(), segment_bytes=256)
        assert loaded.materialize() == journal.materialize()
        assert loaded.next_seq == journal.next_seq
        assert loaded.snapshot_seq == journal.snapshot_seq
        assert loaded.dump() == journal.dump()

    def test_equal_histories_dump_identically(self):
        assert self._populated().dump() == self._populated().dump()

    def test_load_rejects_corrupted_record(self):
        data = bytearray(self._populated().dump())
        pos = data.rindex(b"nc_ip")
        data[pos:pos + 5] = b"nc_iq"
        with pytest.raises(JournalCorruption):
            Journal.load(bytes(data))

    def test_load_rejects_missing_header(self):
        with pytest.raises(JournalCorruption, match="SNAP"):
            Journal.load(b"SEG|0\n")

    def test_dump_header_checksummed(self):
        data = self._populated().dump()
        snap_line, rest = data.split(b"\n", 1)
        broken = snap_line.replace(b'"version":', b'"versioM":') + b"\n" + rest
        with pytest.raises(JournalCorruption, match="SNAP header"):
            Journal.load(broken)
