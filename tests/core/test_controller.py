"""Tests for the central controller: placement, consistency, probing."""

import ipaddress

import pytest

from repro.cluster.cluster import GatewayCluster
from repro.cluster.ecmp import VniSteeredBalancer
from repro.core.controller import Controller, RouteEntry, VmEntry, build_probe_packet
from repro.core.splitting import ClusterCapacity, TableSplitter, TenantProfile
from repro.core.xgw_h import XgwH
from repro.net.addr import Prefix
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import RouteAction, Scope


def ip(text):
    return int(ipaddress.ip_address(text))


@pytest.fixture
def controller():
    balancer = VniSteeredBalancer()
    splitter = TableSplitter(ClusterCapacity(routes=50, vms=500, traffic_bps=1e13))
    ctrl = Controller(splitter, balancer)
    counter = [0]

    def factory(cluster_id):
        counter[0] += 1
        nodes = [(f"{cluster_id}-gw{i}", XgwH(gateway_ip=counter[0] * 10 + i))
                 for i in range(2)]
        backup = GatewayCluster(
            f"{cluster_id}-backup",
            [(f"{cluster_id}-bk{i}", XgwH(gateway_ip=counter[0] * 100 + i))
             for i in range(2)],
        )
        return GatewayCluster(cluster_id, nodes, backup=backup)

    ctrl.set_cluster_factory(factory)
    return ctrl


def tenant_payload(vni, subnet="192.168.10.0/24", vm="192.168.10.2", nc="10.1.1.11"):
    routes = [RouteEntry(vni, Prefix.parse(subnet), RouteAction(Scope.LOCAL))]
    vms = [VmEntry(vni, ip(vm), 4, NcBinding(ip(nc)))]
    return TenantProfile(vni, len(routes), len(vms), 1e9), routes, vms


class TestOnboarding:
    def test_add_tenant_creates_cluster_and_steers(self, controller):
        profile, routes, vms = tenant_payload(100)
        cluster_id = controller.add_tenant(profile, routes, vms)
        assert cluster_id in controller.clusters
        assert controller.balancer.cluster_for_vni(100) == cluster_id

    def test_entries_replicated_to_all_nodes_and_backup(self, controller):
        profile, routes, vms = tenant_payload(100)
        cluster_id = controller.add_tenant(profile, routes, vms)
        cluster = controller.clusters[cluster_id]
        for member in cluster.members() + cluster.backup.members():
            assert member.gateway.route_count() == 1
            assert member.gateway.vm_count() == 1

    def test_overflow_allocates_new_cluster(self, controller):
        for i in range(3):
            vni = 100 + i
            profile = TenantProfile(vni, routes=25, vms=10, traffic_bps=1e9)
            routes = [
                RouteEntry(vni, Prefix((10 << 24) + (j << 12), 20, 4),
                           RouteAction(Scope.LOCAL))
                for j in range(25)
            ]
            controller.add_tenant(profile, routes, [])
        # 25+25 fills the 50-route cluster; the third opens a second one.
        assert len(controller.clusters) == 2

    def test_version_increments(self, controller):
        profile, routes, vms = tenant_payload(100)
        controller.add_tenant(profile, routes, vms)
        assert controller.version == 1

    def test_table_size_series_recorded(self, controller):
        profile, routes, vms = tenant_payload(100)
        cluster_id = controller.add_tenant(profile, routes, vms, time=2.0)
        series = controller.table_size_series[cluster_id]
        assert len(series) == 2  # one route + one vm install
        assert series.values[-1] == 2


class TestConsistency:
    def test_clean_cluster_passes(self, controller):
        profile, routes, vms = tenant_payload(100)
        cluster_id = controller.add_tenant(profile, routes, vms)
        assert controller.consistency_check(cluster_id) == []

    def test_detects_missing_route(self, controller):
        profile, routes, vms = tenant_payload(100)
        cluster_id = controller.add_tenant(profile, routes, vms)
        # Corrupt one gateway out-of-band (the paper's bug scenario).
        gw = controller.clusters[cluster_id].members()[0].gateway
        gw.remove_route(100, routes[0].prefix)
        findings = controller.consistency_check(cluster_id)
        assert any(f.kind == "missing-route" for f in findings)

    def test_detects_extra_route(self, controller):
        profile, routes, vms = tenant_payload(100)
        cluster_id = controller.add_tenant(profile, routes, vms)
        gw = controller.clusters[cluster_id].members()[0].gateway
        gw.install_route(100, Prefix.parse("10.99.0.0/16"), RouteAction(Scope.LOCAL))
        findings = controller.consistency_check(cluster_id)
        assert any(f.kind == "extra-route" for f in findings)

    def test_detects_missing_vm(self, controller):
        profile, routes, vms = tenant_payload(100)
        cluster_id = controller.add_tenant(profile, routes, vms)
        gw = controller.clusters[cluster_id].members()[1].gateway
        gw.split_vm_nc.half_for_ip(vms[0].vm_ip).remove(100, vms[0].vm_ip, 4)
        findings = controller.consistency_check(cluster_id)
        assert any(f.kind == "missing-vm" for f in findings)

    def test_repair_restores(self, controller):
        profile, routes, vms = tenant_payload(100)
        cluster_id = controller.add_tenant(profile, routes, vms)
        gw = controller.clusters[cluster_id].members()[0].gateway
        gw.remove_route(100, routes[0].prefix)
        fixed = controller.repair(cluster_id)
        assert fixed >= 1
        assert controller.consistency_check(cluster_id) == []

    def test_repair_clean_cluster_is_zero(self, controller):
        profile, routes, vms = tenant_payload(100)
        cluster_id = controller.add_tenant(profile, routes, vms)
        assert controller.repair(cluster_id) == 0


class TestProbing:
    def test_probe_sweeps_every_member_and_backup(self, controller):
        profile, routes, vms = tenant_payload(100)
        cluster_id = controller.add_tenant(profile, routes, vms)
        report = controller.probe(cluster_id)
        # 1 local VM probed on 2 members + 2 hot-backup members.
        assert report.ok and report.passed == report.sent == 4

    def test_probe_catches_divergence_on_backup_member(self, controller):
        profile, routes, vms = tenant_payload(100)
        cluster_id = controller.add_tenant(profile, routes, vms)
        backup_member = controller.clusters[cluster_id].backup.members()[1]
        backup_member.gateway.split_vm_nc.half_for_ip(vms[0].vm_ip).remove(
            100, vms[0].vm_ip, 4
        )
        report = controller.probe(cluster_id)
        assert not report.ok
        assert len(report.failures) == 1
        assert report.failures[0].startswith(f"{backup_member.name}:")

    def test_probe_skips_offline_members(self, controller):
        profile, routes, vms = tenant_payload(100)
        cluster_id = controller.add_tenant(profile, routes, vms)
        cluster = controller.clusters[cluster_id]
        cluster.take_offline(cluster.members()[0].name)
        report = controller.probe(cluster_id)
        assert report.ok and report.sent == 3

    def test_probe_detects_broken_vm_entry(self, controller):
        profile, routes, vms = tenant_payload(100)
        cluster_id = controller.add_tenant(profile, routes, vms)
        gw = controller.clusters[cluster_id].members()[0].gateway
        gw.split_vm_nc.half_for_ip(vms[0].vm_ip).remove(100, vms[0].vm_ip, 4)
        report = controller.probe(cluster_id)
        assert not report.ok and report.failures

    def test_probe_packet_shape(self):
        packet = build_probe_packet(7, ip("192.168.10.2"))
        assert packet.is_vxlan and packet.vni == 7
        assert packet.inner_dst == ip("192.168.10.2")
