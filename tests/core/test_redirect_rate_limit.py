"""Tests for the §4.2 redirect overload-protection meter on XGW-H."""

import ipaddress

import pytest

from repro.core.xgw_h import XgwH
from repro.dataplane.gateway_logic import ForwardAction
from repro.net.addr import Prefix
from repro.tables.vxlan_routing import RouteAction, Scope
from repro.workloads.traffic import build_vxlan_packet

VPC = 100


def ip(text):
    return int(ipaddress.ip_address(text))


@pytest.fixture
def gateway():
    gw = XgwH(gateway_ip=ip("10.0.0.254"))
    gw.install_route(VPC, Prefix.parse("0.0.0.0/0"),
                     RouteAction(Scope.SERVICE, target="snat"))
    return gw


def snat_packet(i=0):
    return build_vxlan_packet(VPC, ip("192.168.10.2"), 0x08080808 + i,
                              payload=b"x" * 100)


class TestRedirectRateLimit:
    def test_unlimited_by_default(self, gateway):
        for i in range(100):
            result = gateway.forward(snat_packet(i), now=0.0)
            assert result.action is ForwardAction.REDIRECT_X86

    def test_flood_is_clamped(self, gateway):
        size = snat_packet().wire_length()
        # Allow ~10 packets per second of redirect traffic.
        gateway.set_redirect_rate_limit(rate_bps=size * 8 * 10,
                                        burst_bytes=size * 10)
        outcomes = [gateway.forward(snat_packet(i), now=0.0).action
                    for i in range(100)]
        redirected = outcomes.count(ForwardAction.REDIRECT_X86)
        dropped = outcomes.count(ForwardAction.DROP)
        assert redirected <= 11
        assert dropped >= 89

    def test_drop_reason(self, gateway):
        size = snat_packet().wire_length()
        gateway.set_redirect_rate_limit(rate_bps=8 * size, burst_bytes=size)
        assert gateway.forward(snat_packet(0), now=0.0).action is ForwardAction.REDIRECT_X86
        result = gateway.forward(snat_packet(1), now=0.0)
        assert result.action is ForwardAction.DROP
        assert result.detail == "redirect-rate-limited"

    def test_recovers_over_time(self, gateway):
        size = snat_packet().wire_length()
        gateway.set_redirect_rate_limit(rate_bps=8 * size, burst_bytes=size)
        gateway.forward(snat_packet(0), now=0.0)
        assert gateway.forward(snat_packet(1), now=0.0).action is ForwardAction.DROP
        # One second later a full packet's worth of tokens has refilled.
        assert gateway.forward(snat_packet(2), now=1.0).action is ForwardAction.REDIRECT_X86

    def test_local_traffic_unaffected(self, gateway):
        from repro.tables.vm_nc import NcBinding

        gateway.install_route(VPC, Prefix.parse("192.168.10.0/24"),
                              RouteAction(Scope.LOCAL), replace=False)
        gateway.install_vm(VPC, ip("192.168.10.3"), 4, NcBinding(ip("10.1.1.12")))
        size = snat_packet().wire_length()
        gateway.set_redirect_rate_limit(rate_bps=8 * size, burst_bytes=size)
        # Exhaust the redirect budget.
        gateway.forward(snat_packet(0), now=0.0)
        gateway.forward(snat_packet(1), now=0.0)
        # LOCAL traffic still flows.
        local = build_vxlan_packet(VPC, ip("192.168.10.2"), ip("192.168.10.3"))
        assert gateway.forward(local, now=0.0).action is ForwardAction.DELIVER_NC
