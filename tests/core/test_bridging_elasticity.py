"""Tests for bridging cost (metadata placement) and pooling elasticity."""

import pytest

from repro.core.occupancy import ALL_STEPS, OccupancyModel, Step
from repro.core.planner import (
    BridgeCost,
    LogicalTable,
    bridge_cost,
    max_possible_bridges,
    sailfish_table_layout,
)
from repro.tables.geometry import MemoryFootprint
from repro.tofino.pipeline import Gress


def table(name, pipe, deps=(), md_bits=0):
    return LogicalTable(
        name=name,
        footprint=MemoryFootprint(sram_words=1),
        preferred_pipe=pipe,
        depends_on=deps,
        metadata_bits=md_bits,
    )


class TestBridgeCost:
    def test_same_pipe_no_bridge(self):
        """§4.4: "for tables that need to share the same metadata, we
        recommend placing them in the same pipe"."""
        tables = [
            table("a", (1, Gress.INGRESS), md_bits=24),
            table("b", (1, Gress.INGRESS), deps=("a",)),
        ]
        cost = bridge_cost(tables)
        assert cost.crossings == 0 and cost.bytes_per_packet == 0

    def test_adjacent_pipe_one_bridge(self):
        tables = [
            table("a", (0, Gress.INGRESS), md_bits=24),
            table("b", (1, Gress.EGRESS), deps=("a",)),
        ]
        cost = bridge_cost(tables)
        assert cost.crossings == 1
        assert cost.bytes_per_packet == 3  # 24 bits

    def test_full_span_three_bridges(self):
        """Folding raises possible bridge points from 1 to 3."""
        tables = [
            table("a", (0, Gress.INGRESS), md_bits=32),
            table("d", (0, Gress.EGRESS), deps=("a",)),
        ]
        cost = bridge_cost(tables)
        assert cost.crossings == max_possible_bridges(folded=True) == 3
        assert cost.bytes_per_packet == 12

    def test_no_metadata_no_cost(self):
        tables = [
            table("a", (0, Gress.INGRESS), md_bits=0),
            table("b", (0, Gress.EGRESS), deps=("a",)),
        ]
        assert bridge_cost(tables).bytes_per_packet == 0

    def test_throughput_loss(self):
        cost = BridgeCost(crossings=2, bytes_per_packet=8)
        assert cost.throughput_loss(192) == pytest.approx(8 / 200)
        with pytest.raises(ValueError):
            cost.throughput_loss(0)

    def test_sailfish_layout_cost_is_small(self):
        """The production layout keeps bridging under 1.5% at 256B."""
        cost = bridge_cost(sailfish_table_layout())
        assert cost.throughput_loss(256) < 0.05
        assert cost.crossings <= 6

    def test_bad_layout_costs_more(self):
        """Putting the consumer at the far end multiplies the cost."""
        good = bridge_cost([
            table("a", (0, Gress.INGRESS), md_bits=32),
            table("b", (1, Gress.EGRESS), deps=("a",)),
        ])
        bad = bridge_cost([
            table("a", (0, Gress.INGRESS), md_bits=32),
            table("b", (0, Gress.EGRESS), deps=("a",)),
        ])
        assert bad.bytes_per_packet == 3 * good.bytes_per_packet

    def test_unfolded_max_bridges(self):
        assert max_possible_bridges(folded=False) == 1


class TestPoolingElasticity:
    def test_pooled_always_full_capacity(self):
        model = OccupancyModel.paper_scale()
        for mix in (0.0, 0.25, 0.5, 0.9):
            assert model.capacity_under_mix(ALL_STEPS, 0.25, mix) == 1.0

    def test_dedicated_full_at_provisioned_point(self):
        model = OccupancyModel.paper_scale()
        steps = set(ALL_STEPS) - {Step.POOLING}
        assert model.capacity_under_mix(steps, 0.25, 0.25) == pytest.approx(1.0)

    def test_dedicated_degrades_on_drift(self):
        """§4.4: "separate tables may cause memory waste or insufficient
        memory" when the v4/v6 ratio shifts."""
        model = OccupancyModel.paper_scale()
        steps = set(ALL_STEPS) - {Step.POOLING}
        drifted = model.capacity_under_mix(steps, 0.25, 0.6)
        assert drifted < 0.6

    def test_degradation_monotone_in_drift(self):
        model = OccupancyModel.paper_scale()
        steps = set(ALL_STEPS) - {Step.POOLING}
        capacities = [
            model.capacity_under_mix(steps, 0.25, mix)
            for mix in (0.25, 0.4, 0.6, 0.8)
        ]
        assert capacities == sorted(capacities, reverse=True)

    def test_drift_both_directions_hurts(self):
        model = OccupancyModel.paper_scale()
        steps = set(ALL_STEPS) - {Step.POOLING}
        assert model.capacity_under_mix(steps, 0.5, 0.1) < 1.0
        assert model.capacity_under_mix(steps, 0.5, 0.9) < 1.0
