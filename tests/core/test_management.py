"""Tests for the §6.1 cluster-management control loop."""

import pytest

from repro.cluster.cluster import GatewayCluster
from repro.cluster.ecmp import VniSteeredBalancer
from repro.core.controller import Controller, RouteEntry, VmEntry
from repro.core.management import ClusterManager
from repro.core.splitting import ClusterCapacity, TableSplitter, TenantProfile
from repro.core.xgw_h import XgwH
from repro.net.addr import Prefix
from repro.sim.engine import Engine
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import RouteAction, Scope


def make_manager(route_capacity=100, vm_capacity=1000):
    balancer = VniSteeredBalancer()
    splitter = TableSplitter(
        ClusterCapacity(routes=route_capacity, vms=vm_capacity, traffic_bps=1e15)
    )
    controller = Controller(splitter, balancer)
    counter = [0]

    def factory(cluster_id):
        counter[0] += 1
        return GatewayCluster(
            cluster_id, [(f"{cluster_id}-gw0", XgwH(gateway_ip=counter[0]))]
        )

    controller.set_cluster_factory(factory)
    engine = Engine()
    return ClusterManager(controller, engine, safe_water_level=0.8,
                          reopen_water_level=0.5), engine


def tenant(vni, routes=10):
    profile = TenantProfile(vni, routes=routes, vms=1, traffic_bps=1e9)
    route_entries = [
        RouteEntry(vni, Prefix((10 << 24) + (vni << 13) + (j << 8), 24, 4),
                   RouteAction(Scope.LOCAL))
        for j in range(routes)
    ]
    vm_entries = [VmEntry(vni, (10 << 24) + (vni << 13) + 2, 4, NcBinding(1))]
    return profile, route_entries, vm_entries


class TestWaterLevels:
    def test_levels_recorded(self):
        manager, engine = make_manager()
        profile, routes, vms = tenant(1, routes=40)
        manager.admit_tenant(profile, routes, vms)
        manager.start(until=3.0)
        engine.run()
        series = manager.water_levels["cluster-A"]
        assert len(series) == 3
        assert series.values[-1] == pytest.approx(0.4)

    def test_sales_close_on_high_water(self):
        manager, engine = make_manager()
        profile, routes, vms = tenant(1, routes=85)
        manager.admit_tenant(profile, routes, vms)
        manager.start(until=1.0)
        engine.run()
        assert "cluster-A" in manager.closed_for_sale
        assert manager.actions("sales-closed")
        assert manager.monitor.alerts  # water-level alert fired

    def test_sales_reopen_after_drain(self):
        manager, engine = make_manager()
        profile, routes, vms = tenant(1, routes=85)
        manager.admit_tenant(profile, routes, vms)
        manager.start(until=1.0)
        engine.run()
        assert "cluster-A" in manager.closed_for_sale
        # Tenant shrinks (entries removed from the plan).
        manager.controller.plan.usage["cluster-A"].routes = 30
        engine.schedule_every(1.0, manager.check_water_levels, until=2.0)
        engine.run()
        assert "cluster-A" not in manager.closed_for_sale
        assert manager.actions("sales-reopened")

    def test_validation(self):
        manager, engine = make_manager()
        with pytest.raises(ValueError):
            ClusterManager(manager.controller, engine, safe_water_level=0.5,
                           reopen_water_level=0.9)


class TestAdmission:
    def test_new_tenants_avoid_closed_clusters(self):
        manager, engine = make_manager()
        p1, r1, v1 = tenant(1, routes=85)
        manager.admit_tenant(p1, r1, v1)
        manager.start(until=1.0)
        engine.run()
        assert "cluster-A" in manager.closed_for_sale
        # The next tenant would fit cluster-A's raw capacity (85+10 < 100)
        # but sales are closed -> a new cluster is built.
        p2, r2, v2 = tenant(2, routes=10)
        placed = manager.admit_tenant(p2, r2, v2)
        assert placed != "cluster-A"
        assert len(manager.controller.clusters) == 2

    def test_open_cluster_preferred(self):
        manager, engine = make_manager()
        p1, r1, v1 = tenant(1, routes=30)
        manager.admit_tenant(p1, r1, v1)
        p2, r2, v2 = tenant(2, routes=30)
        placed = manager.admit_tenant(p2, r2, v2)
        assert placed == "cluster-A"
        assert len(manager.controller.clusters) == 1

    def test_oversized_tenant_rejected(self):
        manager, engine = make_manager()
        profile, routes, vms = tenant(1, routes=500)
        assert manager.admit_tenant(profile, routes, vms) is None
        assert manager.rejected_tenants == [profile]
        assert manager.actions("rejected")

    def test_entries_actually_installed(self):
        manager, engine = make_manager()
        profile, routes, vms = tenant(1, routes=5)
        cluster_id = manager.admit_tenant(profile, routes, vms)
        gw = manager.controller.clusters[cluster_id].members()[0].gateway
        assert gw.route_count() == 5
        assert manager.controller.consistency_check(cluster_id) == []

    def test_growth_scenario_allocates_clusters(self):
        """A month of tenant arrivals: the manager grows the fleet."""
        manager, engine = make_manager(route_capacity=60)
        manager.start(until=30.0)
        arrivals = [(float(day), tenant(100 + day, routes=20)) for day in range(12)]
        for at, (profile, routes, vms) in arrivals:
            engine.schedule(
                at + 0.5,
                lambda p=profile, r=routes, v=vms: manager.admit_tenant(p, r, v),
            )
        engine.run()
        # 12 tenants x 20 routes at 60/cluster: 3 tenants fill a cluster
        # (the 48-route close threshold fires after the third) -> 4 clusters.
        assert len(manager.controller.clusters) == 4
        assert len(manager.actions("placed")) == 12
        # Every cluster stayed under its raw capacity.
        for cluster_id, usage in manager.controller.plan.usage.items():
            assert usage.routes <= 60
