"""Tests for the flow-cache fast path and its generation invalidation."""

import ipaddress

import pytest

from repro.dataplane.flowcache import CacheEntry, FlowCache, forward_cached
from repro.dataplane.gateway_logic import (
    ForwardAction,
    GatewayTables,
    forward,
)
from repro.net.addr import Prefix
from repro.tables.acl import AclRule, AclVerdict
from repro.tables.meter import TokenBucket
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import RouteAction, Scope
from repro.workloads.traffic import build_vxlan_packet

GATEWAY_IP = 0x0AFFFF01
VPC_A, VPC_B = 100, 200


def ip(text):
    return int(ipaddress.ip_address(text))


@pytest.fixture
def tables():
    t = GatewayTables()
    t.routing.insert(VPC_A, Prefix.parse("192.168.10.0/24"), RouteAction(Scope.LOCAL))
    t.routing.insert(VPC_A, Prefix.parse("192.168.30.0/24"),
                     RouteAction(Scope.PEER, next_hop_vni=VPC_B))
    t.routing.insert(VPC_B, Prefix.parse("192.168.30.0/24"), RouteAction(Scope.LOCAL))
    t.vm_nc.insert(VPC_A, ip("192.168.10.3"), 4, NcBinding(ip("10.1.1.12")))
    t.vm_nc.insert(VPC_B, ip("192.168.30.5"), 4, NcBinding(ip("10.1.1.15")))
    return t


def packet(vni=VPC_A, src="192.168.10.2", dst="192.168.10.3", **kw):
    return build_vxlan_packet(vni=vni, src_ip=ip(src), dst_ip=ip(dst), **kw)


def results_equal(a, b):
    return (a.action is b.action and a.detail == b.detail
            and a.resolved_vni == b.resolved_vni and a.nc_ip == b.nc_ip
            and a.packet.to_bytes() == b.packet.to_bytes())


class TestHitMissSemantics:
    def test_hit_matches_slow_path_bytes(self, tables):
        oracle_tables = GatewayTables()
        oracle_tables.routing.insert(VPC_A, Prefix.parse("192.168.10.0/24"),
                                     RouteAction(Scope.LOCAL))
        oracle_tables.vm_nc.insert(VPC_A, ip("192.168.10.3"), 4,
                                   NcBinding(ip("10.1.1.12")))
        cache = FlowCache()
        pkt = packet()
        miss = forward_cached(tables, cache, pkt, GATEWAY_IP)
        hit = forward_cached(tables, cache, pkt, GATEWAY_IP)
        oracle = forward(oracle_tables, pkt, GATEWAY_IP)
        assert cache.hits == 1 and cache.misses == 1
        assert results_equal(miss, hit)
        assert results_equal(hit, oracle)

    def test_cross_vpc_hit_rewrites_vni(self, tables):
        cache = FlowCache()
        pkt = packet(dst="192.168.30.5")
        forward_cached(tables, cache, pkt, GATEWAY_IP)
        hit = forward_cached(tables, cache, pkt, GATEWAY_IP)
        assert hit.action is ForwardAction.DELIVER_NC
        assert hit.packet.vni == VPC_B
        assert hit.packet.ip.dst == ip("10.1.1.15")
        assert results_equal(hit, forward(tables, pkt, GATEWAY_IP))

    def test_negative_decision_is_cached(self, tables):
        cache = FlowCache()
        pkt = packet(dst="10.99.1.1")  # no route in VPC_A
        assert forward_cached(tables, cache, pkt, GATEWAY_IP).detail == "no-route"
        assert forward_cached(tables, cache, pkt, GATEWAY_IP).detail == "no-route"
        assert cache.hits == 1

    def test_non_vxlan_never_touches_cache(self, tables):
        cache = FlowCache()
        plain = packet().decap()
        result = forward_cached(tables, cache, plain, GATEWAY_IP)
        assert result.detail == "not-vxlan"
        assert cache.hits == cache.misses == len(cache) == 0

    def test_counters_charge_on_hits(self, tables):
        cache = FlowCache()
        pkt = packet()
        for _ in range(5):
            forward_cached(tables, cache, pkt, GATEWAY_IP)
        assert tables.counters.total_packets() == 5

    def test_meter_red_on_hit_path(self, tables):
        tables.meters.configure(("vni", VPC_A),
                                TokenBucket(committed_rate=1.0,
                                            committed_burst=1e6))
        cache = FlowCache()
        pkt = packet()
        first = forward_cached(tables, cache, pkt, GATEWAY_IP, now=0.0)
        assert first.action is ForwardAction.DELIVER_NC
        # Burst exhausted: the cached entry must not shield the flow.
        for _ in range(20000):
            result = forward_cached(tables, cache, pkt, GATEWAY_IP, now=0.0)
        assert result.detail == "meter-red"
        assert result.action is ForwardAction.DROP


class TestGenerationInvalidation:
    @pytest.mark.parametrize("mutate", [
        lambda t: t.routing.insert(VPC_A, Prefix.parse("172.16.0.0/16"),
                                   RouteAction(Scope.LOCAL)),
        lambda t: t.vm_nc.insert(VPC_A, ip("192.168.10.99"), 4,
                                 NcBinding(ip("10.1.1.99"))),
        lambda t: t.acl.insert(AclRule(priority=5, verdict=AclVerdict.PERMIT)),
    ], ids=["routing", "vm_nc", "acl"])
    def test_any_table_mutation_invalidates(self, tables, mutate):
        cache = FlowCache()
        pkt = packet()
        forward_cached(tables, cache, pkt, GATEWAY_IP)
        forward_cached(tables, cache, pkt, GATEWAY_IP)
        assert cache.hits == 1
        mutate(tables)
        forward_cached(tables, cache, pkt, GATEWAY_IP)
        assert cache.hits == 1  # stale, re-resolved
        assert cache.stale == 1
        forward_cached(tables, cache, pkt, GATEWAY_IP)
        assert cache.hits == 2  # fresh entry serves again

    def test_remove_bumps_generation_too(self, tables):
        gen = tables.vm_nc.generation
        tables.vm_nc.remove(VPC_B, ip("192.168.30.5"), 4)
        assert tables.vm_nc.generation == gen + 1

    def test_failed_mutation_does_not_bump(self, tables):
        gen = tables.routing.generation
        with pytest.raises(Exception):
            tables.routing.remove(VPC_A, Prefix.parse("203.0.113.0/24"))
        assert tables.routing.generation == gen

    def test_negative_entry_revalidates_after_route_add(self, tables):
        cache = FlowCache()
        pkt = packet(vni=999, dst="192.168.10.3")
        assert forward_cached(tables, cache, pkt, GATEWAY_IP).detail == "no-route"
        tables.routing.insert(999, Prefix.parse("192.168.10.0/24"),
                              RouteAction(Scope.PEER, next_hop_vni=VPC_A))
        result = forward_cached(tables, cache, pkt, GATEWAY_IP)
        assert result.action is ForwardAction.DELIVER_NC
        assert result.nc_ip == ip("10.1.1.12")


class TestAclOnHitPath:
    def test_per_flow_deny_under_shared_key(self, tables):
        """The cache key is dst-only; ACL verdicts are per 5-tuple. A hit
        must still evaluate rules so one src can be denied while another
        src to the same dst stays cached-fast."""
        tables.acl.insert(AclRule(
            priority=1, verdict=AclVerdict.DENY, vni=VPC_A,
            src_net=(ip("192.168.10.66"), 0xFFFFFFFF)))
        cache = FlowCache()
        allowed = packet(src="192.168.10.2")
        denied = packet(src="192.168.10.66")
        assert forward_cached(tables, cache, allowed,
                              GATEWAY_IP).action is ForwardAction.DELIVER_NC
        hit = forward_cached(tables, cache, denied, GATEWAY_IP)
        assert cache.hits == 1  # same (vni, dst, version) key
        assert hit.action is ForwardAction.DROP
        assert hit.detail == "acl-deny"
        # The permitted flow keeps flowing.
        again = forward_cached(tables, cache, allowed, GATEWAY_IP)
        assert again.action is ForwardAction.DELIVER_NC

    def test_acl_deny_result_is_not_cached(self, tables):
        tables.acl.insert(AclRule(priority=1, verdict=AclVerdict.DENY, vni=VPC_A))
        cache = FlowCache()
        pkt = packet()
        assert forward_cached(tables, cache, pkt, GATEWAY_IP).detail == "acl-deny"
        assert len(cache) == 0

    def test_acl_bypass_only_when_provably_permit_all(self, tables):
        cache = FlowCache()
        pkt = packet()
        forward_cached(tables, cache, pkt, GATEWAY_IP)
        (entry,) = cache._entries.values()
        assert entry.acl_bypass  # empty table, PERMIT default
        tables.acl.insert(AclRule(priority=9, verdict=AclVerdict.PERMIT))
        forward_cached(tables, cache, pkt, GATEWAY_IP)  # stale re-capture
        (entry,) = cache._entries.values()
        assert not entry.acl_bypass


class TestLruBounds:
    def test_capacity_evicts_oldest(self, tables):
        cache = FlowCache(capacity=2)
        for host in (3, 4, 5):
            tables.vm_nc.insert(VPC_A, ip(f"192.168.10.{host}"), 4,
                                NcBinding(ip(f"10.1.1.{host}")), replace=True)
        pkts = [packet(dst=f"192.168.10.{h}") for h in (3, 4, 5)]
        forward_cached(tables, cache, pkts[0], GATEWAY_IP)
        forward_cached(tables, cache, pkts[1], GATEWAY_IP)
        # Touch pkt0 so pkt1 is the LRU victim.
        forward_cached(tables, cache, pkts[0], GATEWAY_IP)
        forward_cached(tables, cache, pkts[2], GATEWAY_IP)
        assert len(cache) == 2
        assert cache.evictions == 1
        hits_before = cache.hits
        forward_cached(tables, cache, pkts[0], GATEWAY_IP)
        assert cache.hits == hits_before + 1  # survivor
        forward_cached(tables, cache, pkts[1], GATEWAY_IP)
        assert cache.hits == hits_before + 1  # evicted -> miss

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlowCache(capacity=0)

    def test_counters_snapshot(self, tables):
        cache = FlowCache()
        pkt = packet()
        forward_cached(tables, cache, pkt, GATEWAY_IP)
        forward_cached(tables, cache, pkt, GATEWAY_IP)
        snap = cache.counters()
        assert snap == {"flowcache_hits": 1, "flowcache_misses": 1,
                        "flowcache_evictions": 0, "flowcache_stale": 0}
        assert cache.hit_rate == 0.5

    def test_entries_are_slotted(self):
        entry = CacheEntry(ForwardAction.DROP, "no-route", None, None, None,
                           (0, 0, 0), True)
        with pytest.raises(AttributeError):
            entry.extra = 1


class TestWireLength:
    @pytest.mark.parametrize("kw", [
        {},
        {"payload": b"x" * 73},
        {"version": 6, "src": "2001:db8::1", "dst": "2001:db8::2"},
    ], ids=["v4", "payload", "v6-inner"])
    def test_matches_serialized_length(self, kw):
        version = kw.pop("version", 4)
        src = kw.pop("src", "192.168.10.2")
        dst = kw.pop("dst", "192.168.10.3")
        pkt = build_vxlan_packet(vni=VPC_A, src_ip=ip(src), dst_ip=ip(dst),
                                 version=version, **kw)
        assert pkt.wire_length() == len(pkt.to_bytes())
        plain = pkt.decap()
        assert plain.wire_length() == len(plain.to_bytes())
