"""Tests for the shared gateway forwarding program."""

import ipaddress

import pytest

from repro.dataplane.gateway_logic import (
    ForwardAction,
    GatewayTables,
    forward,
    inner_flow_key,
)
from repro.net.addr import Prefix
from repro.tables.acl import AclRule, AclVerdict
from repro.tables.meter import TokenBucket
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import RouteAction, Scope
from repro.workloads.traffic import build_vxlan_packet

GATEWAY_IP = 0x0AFFFF01
VPC_A, VPC_B = 100, 200


def ip(text):
    return int(ipaddress.ip_address(text))


@pytest.fixture
def tables():
    t = GatewayTables()
    t.routing.insert(VPC_A, Prefix.parse("192.168.10.0/24"), RouteAction(Scope.LOCAL))
    t.routing.insert(VPC_A, Prefix.parse("192.168.30.0/24"),
                     RouteAction(Scope.PEER, next_hop_vni=VPC_B))
    t.routing.insert(VPC_B, Prefix.parse("192.168.30.0/24"), RouteAction(Scope.LOCAL))
    t.routing.insert(VPC_A, Prefix.parse("0.0.0.0/0"),
                     RouteAction(Scope.SERVICE, target="snat"))
    t.routing.insert(VPC_A, Prefix.parse("172.31.0.0/16"),
                     RouteAction(Scope.IDC, target="cen-1"))
    t.vm_nc.insert(VPC_A, ip("192.168.10.3"), 4, NcBinding(ip("10.1.1.12")))
    t.vm_nc.insert(VPC_B, ip("192.168.30.5"), 4, NcBinding(ip("10.1.1.15")))
    return t


def packet(vni=VPC_A, src="192.168.10.2", dst="192.168.10.3"):
    return build_vxlan_packet(vni=vni, src_ip=ip(src), dst_ip=ip(dst))


class TestLocalDelivery:
    def test_same_vpc(self, tables):
        result = forward(tables, packet(), GATEWAY_IP)
        assert result.action is ForwardAction.DELIVER_NC
        assert result.nc_ip == ip("10.1.1.12")
        assert result.packet.ip.dst == ip("10.1.1.12")
        assert result.packet.ip.src == GATEWAY_IP
        assert result.packet.vni == VPC_A  # unchanged for same-VPC

    def test_cross_vpc_rewrites_vni(self, tables):
        result = forward(tables, packet(dst="192.168.30.5"), GATEWAY_IP)
        assert result.action is ForwardAction.DELIVER_NC
        assert result.resolved_vni == VPC_B
        assert result.packet.vni == VPC_B
        assert result.nc_ip == ip("10.1.1.15")

    def test_unknown_vm_drops(self, tables):
        result = forward(tables, packet(dst="192.168.10.200"), GATEWAY_IP)
        assert result.action is ForwardAction.DROP
        assert result.detail == "no-vm"

    def test_inner_payload_preserved(self, tables):
        original = packet()
        result = forward(tables, original, GATEWAY_IP)
        assert result.packet.inner == original.inner


class TestOtherScopes:
    def test_service_redirect(self, tables):
        result = forward(tables, packet(dst="8.8.8.8"), GATEWAY_IP)
        assert result.action is ForwardAction.REDIRECT_X86
        assert result.detail == "snat"

    def test_idc_uplink(self, tables):
        result = forward(tables, packet(dst="172.31.7.7"), GATEWAY_IP)
        assert result.action is ForwardAction.UPLINK
        assert result.detail == "cen-1"

    def test_unknown_vni_drops(self, tables):
        result = forward(tables, packet(vni=999), GATEWAY_IP)
        assert result.action is ForwardAction.DROP
        assert result.detail == "no-route"

    def test_non_vxlan_drops(self, tables):
        plain = packet().decap()
        result = forward(tables, plain, GATEWAY_IP)
        assert result.action is ForwardAction.DROP
        assert result.detail == "not-vxlan"

    def test_peer_loop_drops(self, tables):
        tables.routing.insert(VPC_B, Prefix.parse("10.99.0.0/16"),
                              RouteAction(Scope.PEER, next_hop_vni=VPC_A))
        tables.routing.insert(VPC_A, Prefix.parse("10.99.0.0/16"),
                              RouteAction(Scope.PEER, next_hop_vni=VPC_B))
        result = forward(tables, packet(dst="10.99.1.1"), GATEWAY_IP)
        assert result.action is ForwardAction.DROP
        assert result.detail == "peer-loop"


class TestServiceTables:
    def test_acl_deny(self, tables):
        tables.acl.insert(AclRule(priority=1, verdict=AclVerdict.DENY, vni=VPC_A))
        result = forward(tables, packet(), GATEWAY_IP)
        assert result.action is ForwardAction.DROP
        assert result.detail == "acl-deny"

    def test_meter_red_drops(self, tables):
        tables.meters.configure(("vni", VPC_A),
                                TokenBucket(committed_rate=1.0, committed_burst=1.0))
        result = forward(tables, packet(), GATEWAY_IP, now=0.0)
        assert result.action is ForwardAction.DROP
        assert result.detail == "meter-red"

    def test_counters_count_all_packets(self, tables):
        forward(tables, packet(), GATEWAY_IP)
        forward(tables, packet(dst="8.8.8.8"), GATEWAY_IP)
        assert tables.counters.read(("vni", VPC_A)).packets == 2

    def test_inner_flow_key(self, tables):
        key = inner_flow_key(packet())
        assert key.src_ip == ip("192.168.10.2")
        assert key.dst_ip == ip("192.168.10.3")
        assert key.version == 4
