"""Differential property test: cached forwarding vs a never-cached oracle.

Hypothesis drives randomized interleavings of forwards with routing, VM
and ACL table mutations against two identical table sets — one fronted
by a :class:`FlowCache`, one walking the slow path every time. Every
forward must produce byte-identical results; any missed invalidation,
wrong rewrite recipe or illegally cached verdict shows up as a diverging
interleaving (which hypothesis then shrinks to a minimal repro).
"""

import ipaddress

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataplane.flowcache import FlowCache, forward_cached
from repro.dataplane.gateway_logic import GatewayTables, forward
from repro.net.addr import Prefix
from repro.tables.acl import AclRule, AclVerdict
from repro.tables.errors import TableError
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import RouteAction, Scope
from repro.workloads.traffic import build_vxlan_packet

GATEWAY_IP = 0x0AFFFF01
VNIS = [10, 11, 12]


def ip(text):
    return int(ipaddress.ip_address(text))


HOSTS = [ip(f"192.168.{net}.{h}") for net in (0, 1) for h in (1, 2, 3)]
NC_IPS = [ip(f"10.1.1.{h}") for h in range(1, 7)]
PREFIXES = [Prefix.parse(p) for p in (
    "192.168.0.0/24", "192.168.1.0/24", "192.168.0.0/16",
    "192.168.0.1/32", "192.168.1.2/32", "0.0.0.0/0",
)]

vnis = st.sampled_from(VNIS)
hosts = st.sampled_from(HOSTS)
prefixes = st.sampled_from(PREFIXES)

# PEER targets may form loops — fine, both paths must drop identically.
route_actions = st.one_of(
    st.just(RouteAction(Scope.LOCAL)),
    vnis.map(lambda v: RouteAction(Scope.PEER, next_hop_vni=v)),
    st.just(RouteAction(Scope.SERVICE, target="snat")),
    st.just(RouteAction(Scope.IDC, target="cen-1")),
    st.just(RouteAction(Scope.INTERNET)),
)

acl_rules = st.builds(
    AclRule,
    priority=st.integers(min_value=1, max_value=5),
    verdict=st.sampled_from([AclVerdict.PERMIT, AclVerdict.DENY]),
    vni=st.one_of(st.none(), vnis),
    src_net=st.one_of(st.none(), hosts.map(lambda h: (h, 0xFFFFFFFF))),
    dst_net=st.one_of(st.none(), hosts.map(lambda h: (h, 0xFFFFFFFF))),
)

ops = st.one_of(
    st.tuples(st.just("forward"), vnis, hosts, hosts),
    st.tuples(st.just("route+"), vnis, prefixes, route_actions),
    st.tuples(st.just("route-"), vnis, prefixes),
    st.tuples(st.just("vm+"), vnis, hosts, st.sampled_from(NC_IPS)),
    st.tuples(st.just("vm-"), vnis, hosts),
    st.tuples(st.just("acl+"), acl_rules),
    st.tuples(st.just("acl-"), acl_rules),
)


def apply_mutation(tables, op):
    """One table mutation; TableError (duplicate/missing) is a legal
    no-op outcome as long as both sides raise identically."""
    kind = op[0]
    try:
        if kind == "route+":
            tables.routing.insert(op[1], op[2], op[3], replace=True)
        elif kind == "route-":
            tables.routing.remove(op[1], op[2])
        elif kind == "vm+":
            tables.vm_nc.insert(op[1], op[2], 4, NcBinding(op[3]), replace=True)
        elif kind == "vm-":
            tables.vm_nc.remove(op[1], op[2], 4)
        elif kind == "acl+":
            tables.acl.insert(op[1])
        elif kind == "acl-":
            tables.acl.remove(op[1])
    except TableError as exc:
        return type(exc)
    return None


@settings(max_examples=250, deadline=None)
@given(st.lists(ops, min_size=1, max_size=40))
def test_cached_forwarding_matches_oracle(op_list):
    cached_tables = GatewayTables()
    oracle_tables = GatewayTables()
    # Small capacity so evictions interleave with invalidations too.
    cache = FlowCache(capacity=8)
    now = 0.0
    for step, op in enumerate(op_list):
        now += 0.001
        if op[0] == "forward":
            pkt = build_vxlan_packet(vni=op[1], src_ip=op[2], dst_ip=op[3])
            got = forward_cached(cached_tables, cache, pkt, GATEWAY_IP, now)
            want = forward(oracle_tables, pkt, GATEWAY_IP, now)
            assert got.action is want.action, (step, op)
            assert got.detail == want.detail, (step, op)
            assert got.resolved_vni == want.resolved_vni, (step, op)
            assert got.nc_ip == want.nc_ip, (step, op)
            assert got.packet.to_bytes() == want.packet.to_bytes(), (step, op)
        else:
            outcome_a = apply_mutation(cached_tables, op)
            outcome_b = apply_mutation(oracle_tables, op)
            assert outcome_a == outcome_b, (step, op)
    # Both sides saw identical traffic: the stateful layers must agree.
    assert (cached_tables.counters.total_packets()
            == oracle_tables.counters.total_packets())
    assert (cached_tables.counters.total_bytes()
            == oracle_tables.counters.total_bytes())
