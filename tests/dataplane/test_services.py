"""Tests for the SNAT service: the full Fig. 11 request/response cycle."""

import ipaddress

import pytest

from repro.dataplane.gateway_logic import ForwardAction, GatewayTables
from repro.dataplane.services import SnatService
from repro.net.addr import Prefix
from repro.net.packet import Packet
from repro.tables.snat import SnatTable
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import RouteAction, Scope
from repro.workloads.traffic import build_vxlan_packet

GATEWAY_IP = 0x0AFFFF01
VPC = 100
PUBLIC_IP = 0xCB007101  # 203.0.113.1


def ip(text):
    return int(ipaddress.ip_address(text))


@pytest.fixture
def service():
    tables = GatewayTables()
    tables.routing.insert(VPC, Prefix.parse("0.0.0.0/0"),
                          RouteAction(Scope.SERVICE, target="snat"))
    tables.vm_nc.insert(VPC, ip("192.168.10.2"), 4, NcBinding(ip("10.1.1.11")))
    snat = SnatTable(public_ips=[PUBLIC_IP])
    return SnatService(snat, tables, GATEWAY_IP)


def request_packet(src="192.168.10.2", dst="93.184.216.34", sport=5555):
    return build_vxlan_packet(vni=VPC, src_ip=ip(src), dst_ip=ip(dst),
                              src_port=sport, dst_port=80, payload=b"GET /")


class TestRequestPath:
    def test_translates_and_decaps(self, service):
        result = service.handle_request(request_packet(), now=0.0)
        assert result.action is ForwardAction.UPLINK
        out = result.packet
        assert not out.is_vxlan  # tunnel removed
        assert out.ip.src == PUBLIC_IP  # source rewritten
        assert out.ip.dst == ip("93.184.216.34")
        assert out.l4.src_port != 5555 or out.l4.src_port >= 1024
        assert out.payload == b"GET /"
        assert service.requests == 1

    def test_same_flow_reuses_session(self, service):
        first = service.handle_request(request_packet(), now=0.0)
        second = service.handle_request(request_packet(), now=1.0)
        assert first.packet.l4.src_port == second.packet.l4.src_port
        assert len(service.snat) == 1

    def test_distinct_flows_distinct_ports(self, service):
        a = service.handle_request(request_packet(sport=1111), now=0.0)
        b = service.handle_request(request_packet(sport=2222), now=0.0)
        assert a.packet.l4.src_port != b.packet.l4.src_port

    def test_non_vxlan_rejected(self, service):
        plain = request_packet().decap()
        result = service.handle_request(plain, now=0.0)
        assert result.action is ForwardAction.DROP

    def test_pool_exhaustion_drops(self, service):
        service.snat._pools[PUBLIC_IP].free = []
        result = service.handle_request(request_packet(), now=0.0)
        assert result.action is ForwardAction.DROP
        assert result.detail == "snat-pool-exhausted"
        assert service.failures == 1


class TestResponsePath:
    def _roundtrip(self, service):
        request = service.handle_request(request_packet(), now=0.0)
        out = request.packet
        # Build the Internet's response: src/dst swapped.
        response_bytes = out.to_bytes()
        response = Packet.from_bytes(response_bytes)
        from dataclasses import replace
        from repro.net.headers import UDP
        response = replace(
            response,
            ip=type(response.ip)(src=out.ip.dst, dst=out.ip.src, proto=out.ip.proto),
            l4=UDP(src_port=out.l4.dst_port, dst_port=out.l4.src_port),
            payload=b"200 OK",
        )
        return service.handle_response(response, now=1.0)

    def test_response_reencapsulated_to_nc(self, service):
        result = self._roundtrip(service)
        assert result.action is ForwardAction.DELIVER_NC
        packet = result.packet
        assert packet.is_vxlan and packet.vni == VPC
        assert packet.ip.dst == ip("10.1.1.11")  # the VM's NC
        assert packet.inner.ip.dst == ip("192.168.10.2")  # original VM IP
        assert packet.inner.l4.dst_port == 5555  # original source port
        assert packet.inner.payload == b"200 OK"
        assert service.responses == 1

    def test_unknown_session_drops(self, service):
        from repro.net.headers import Ethernet, IPv4, UDP, ETHERTYPE_IPV4
        stray = Packet(
            eth=Ethernet(1, 2, ETHERTYPE_IPV4),
            ip=IPv4(src=ip("93.184.216.34"), dst=PUBLIC_IP, proto=17),
            l4=UDP(src_port=80, dst_port=4444),
            payload=b"stray",
        )
        result = service.handle_response(stray, now=0.0)
        assert result.action is ForwardAction.DROP
        assert result.detail == "snat-no-session"

    def test_vxlan_response_rejected(self, service):
        result = service.handle_response(request_packet(), now=0.0)
        assert result.action is ForwardAction.DROP

    def test_expiry_clears_context(self, service):
        service.handle_request(request_packet(), now=0.0)
        expired = service.expire(now=10_000.0)
        assert expired == 1
        assert len(service._contexts) == 0
