"""Unit tests for the columnar batch data plane (DESIGN §13).

Covers backend selection (numpy vs pure-python, env override), the
struct-of-arrays :class:`PacketBatch` and its lazy burst aggregates, the
compiled ACL classifier against the scalar table on both backends,
generation-vector invalidation of compiled programs, and an XGW-H
columnar-vs-scalar differential over mixed bursts (results, stats, drop
counters, per-pipe tallies, bridge bytes, table counters and meters).
"""

import ipaddress
import random

import pytest

from repro.dataplane.columnar import (
    BatchCompiler,
    CompiledAcl,
    PacketBatch,
    PythonBackend,
    NumpyBackend,
    numpy_available,
    resolve_backend,
)
from repro.dataplane.columnar import backend as backend_mod
from repro.core.xgw_h import XgwH
from repro.dataplane.gateway_logic import ForwardAction, GatewayTables, vni_key
from repro.net.addr import Prefix
from repro.net.flow import FlowKey
from repro.net.headers import ETHERTYPE_IPV4, Ethernet, IPv4, PROTO_UDP, UDP
from repro.net.packet import Packet
from repro.tables.acl import AclRule, AclTable, AclVerdict
from repro.tables.meter import TokenBucket
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import RouteAction, Scope
from repro.workloads.traffic import build_vxlan_packet
from repro.x86.gateway import XgwX86


def ip(text):
    return int(ipaddress.ip_address(text))


BACKENDS = [
    pytest.param("python", id="python"),
    pytest.param("numpy", id="numpy",
                 marks=pytest.mark.skipif(not numpy_available(),
                                          reason="numpy not installed")),
]


def plain_packet(src=ip("10.9.0.1"), dst=ip("10.9.0.2")):
    return Packet(
        eth=Ethernet(dst=0x02BB00000002, src=0x02BB00000001,
                     ethertype=ETHERTYPE_IPV4),
        ip=IPv4(src=src, dst=dst, proto=PROTO_UDP),
        l4=UDP(src_port=1234, dst_port=53),
    )


class TestBackendResolution:
    def test_explicit_python(self):
        b = resolve_backend("python")
        assert isinstance(b, PythonBackend)
        assert not b.vectorized

    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    def test_explicit_numpy(self):
        b = resolve_backend("numpy")
        assert isinstance(b, NumpyBackend)
        assert b.vectorized

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(backend_mod.BACKEND_ENV, "python")
        assert isinstance(resolve_backend(), PythonBackend)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown columnar backend"):
            resolve_backend("fortran")

    def test_default_prefers_numpy_when_importable(self, monkeypatch):
        monkeypatch.delenv(backend_mod.BACKEND_ENV, raising=False)
        b = resolve_backend()
        assert isinstance(b, NumpyBackend if numpy_available() else PythonBackend)

    def test_numpy_backend_requires_numpy(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "_np", None)
        assert not numpy_available()
        with pytest.raises(RuntimeError, match="numpy backend requested"):
            NumpyBackend()


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestPacketBatch:
    @staticmethod
    def mixed_burst():
        return [
            build_vxlan_packet(vni=7, src_ip=ip("192.168.0.1"),
                               dst_ip=ip("192.168.0.2")),
            plain_packet(),
            build_vxlan_packet(vni=8, src_ip=ip("192.168.0.3"),
                               dst_ip=ip("192.168.0.4"), payload=b"abcd"),
            build_vxlan_packet(vni=7, src_ip=ip("192.168.0.9"),
                               dst_ip=ip("192.168.0.2")),
        ]

    def test_shape_and_keys(self, backend_name):
        packets = self.mixed_burst()
        batch = PacketBatch.from_packets(packets, resolve_backend(backend_name))
        assert batch.n == 4
        assert batch.vxlan_count == 3
        assert batch.nonvxlan_lanes == [1]
        assert batch.keys == [(7, ip("192.168.0.2"), 4), None,
                              (8, ip("192.168.0.4"), 4),
                              (7, ip("192.168.0.2"), 4)]
        for lane, p in enumerate(packets):
            if p.is_vxlan:
                assert batch.sizes[lane] == p.wire_length()
        if batch.backend.vectorized:
            assert batch.src_list is None
            assert list(batch.vni_col) == [7, 0, 8, 7]
            assert list(batch.vxlan_mask) == [True, False, True, True]
            assert list(batch.dst_lo) == [ip("192.168.0.2"), 0,
                                          ip("192.168.0.4"), ip("192.168.0.2")]
        else:
            assert batch.vni_col is None
            assert batch.dst_list == [ip("192.168.0.2"), 0,
                                      ip("192.168.0.4"), ip("192.168.0.2")]

    def test_key_index_aggregates(self, backend_name):
        packets = self.mixed_burst()
        batch = PacketBatch.from_packets(packets, resolve_backend(backend_name))
        unique_keys, inverse, uniq_counts, uniq_bytes, per_vni = batch.key_index()
        assert unique_keys == [(7, ip("192.168.0.2"), 4),
                              (8, ip("192.168.0.4"), 4)]
        assert list(inverse) == [0, -1, 1, 0]
        assert uniq_counts == [2, 1]
        assert uniq_bytes == [batch.sizes[0] + batch.sizes[3], batch.sizes[2]]
        assert per_vni == {7: [2, batch.sizes[0] + batch.sizes[3]],
                           8: [1, batch.sizes[2]]}
        # Cached: a second call returns the same tuple object.
        assert batch.key_index() is batch._key_index

    def test_lanes_by_vni(self, backend_name):
        batch = PacketBatch.from_packets(self.mixed_burst(),
                                         resolve_backend(backend_name))
        assert batch.lanes_by_vni() == {7: [0, 3], 8: [2]}

    def test_direct_construction_rejected(self, backend_name):
        with pytest.raises(TypeError, match="from_packets"):
            PacketBatch()


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestCompiledAcl:
    """The compiled classifier against the scalar AclTable, rule for
    rule: same first-match semantics, same deny set, same matched
    telemetry, on both backends."""

    RULES = [
        AclRule(priority=5, verdict=AclVerdict.PERMIT, vni=7,
                dst_ports=(80, 99)),
        AclRule(priority=4, verdict=AclVerdict.DENY,
                src_net=(ip("192.168.1.0"), 0xFFFFFF00)),
        AclRule(priority=3, verdict=AclVerdict.DENY, vni=8),
        AclRule(priority=2, verdict=AclVerdict.DENY, proto=PROTO_UDP,
                dst_net=(ip("192.168.0.4"), 0xFFFFFFFF)),
        AclRule(priority=1, verdict=AclVerdict.PERMIT),
    ]

    @staticmethod
    def burst():
        rng = random.Random(13)
        packets = [plain_packet()]
        for _ in range(60):
            packets.append(build_vxlan_packet(
                vni=rng.choice([7, 8, 9]),
                src_ip=ip(f"192.168.{rng.randrange(2)}.{rng.randrange(1, 9)}"),
                dst_ip=ip(f"192.168.0.{rng.randrange(1, 9)}"),
                dst_port=rng.choice([80, 99, 100]),
            ))
        return packets

    @pytest.mark.parametrize("default", [AclVerdict.PERMIT, AclVerdict.DENY])
    def test_matches_scalar_table(self, backend_name, default):
        table = AclTable(default_verdict=default)
        for rule in self.RULES:
            table.insert(rule)
        packets = self.burst()
        batch = PacketBatch.from_packets(packets, resolve_backend(backend_name))
        compiled = CompiledAcl(table.rules(), default is AclVerdict.DENY)
        deny_lanes, matched = compiled.classify(batch)
        want_deny, want_matched = [], 0
        for lane, p in enumerate(packets):
            if not p.is_vxlan:
                continue
            src, dst, proto, sport, dport = p.inner.five_tuple()
            flow = FlowKey(src, dst, proto, sport, dport, version=4)
            before = table.matched
            if table.evaluate(p.vni, flow) is AclVerdict.DENY:
                want_deny.append(lane)
            want_matched += table.matched - before
        assert deny_lanes == want_deny
        assert matched == want_matched
        assert any(want_deny), "burst must exercise deny rules"


class TestGenerationInvalidation:
    """Compiled programs are guarded by the same table generation vector
    as the flow cache: memoized decisions die with the mutation, and an
    untouched table keeps the same program (and its memo) alive."""

    VNI = 40

    def make_gw(self):
        t = GatewayTables()
        t.routing.insert(self.VNI, Prefix.parse("192.168.0.0/24"),
                         RouteAction(Scope.LOCAL))
        t.vm_nc.insert(self.VNI, ip("192.168.0.1"), 4,
                       NcBinding(ip("10.3.0.1")))
        return XgwX86(gateway_ip=ip("10.255.0.1"), tables=t)

    @staticmethod
    def pkt(dst="192.168.0.1", vni=40):
        return build_vxlan_packet(vni=vni, src_ip=ip("192.168.0.7"),
                                  dst_ip=ip(dst))

    def test_vm_removal_invalidates_memo(self):
        gw = self.make_gw()
        assert gw.forward_batch([self.pkt()])[0].action is ForwardAction.DELIVER_NC
        program = gw._compiled
        assert program is not None
        # No mutation: the program (and its key memo) is reused.
        gw.forward_batch([self.pkt()])
        assert gw._compiled is program
        gw.remove_vm(self.VNI, ip("192.168.0.1"), 4)
        result = gw.forward_batch([self.pkt()])[0]
        assert result.action is ForwardAction.DROP
        assert result.detail == "no-vm"
        assert gw._compiled is not program

    def test_route_and_acl_mutations_invalidate(self):
        gw = self.make_gw()
        gw.forward_batch([self.pkt()])
        program = gw._compiled
        gw.install_route(self.VNI, Prefix.parse("192.168.0.0/24"),
                         RouteAction(Scope.INTERNET), replace=True)
        assert gw.forward_batch([self.pkt()])[0].action is ForwardAction.UPLINK
        assert gw._compiled is not program
        program = gw._compiled
        gw.tables.acl.insert(AclRule(priority=1, verdict=AclVerdict.DENY))
        result = gw.forward_batch([self.pkt()])[0]
        assert (result.action, result.detail) == (ForwardAction.DROP, "acl-deny")
        assert gw._compiled is not program

    def test_meter_state_is_read_live(self):
        # Meters are charged against the live table at execute time, so
        # configuring one needs no recompile to take effect.
        gw = self.make_gw()
        gw.forward_batch([self.pkt()], now=0.0)
        program = gw._compiled
        gw.tables.meters.configure(
            vni_key(self.VNI),
            TokenBucket(committed_rate=1.0, committed_burst=1.0))
        result = gw.forward_batch([self.pkt()], now=0.001)[0]
        assert (result.action, result.detail) == (ForwardAction.DROP, "meter-red")
        assert gw._compiled is program


GW_H_IP = ip("10.255.0.2")


def make_hw_gateway(columnar):
    t = GatewayTables()
    gw = XgwH(gateway_ip=GW_H_IP, tables=t, columnar=columnar)
    t.routing.insert(100, Prefix.parse("192.168.0.0/24"),
                     RouteAction(Scope.LOCAL))
    # A 3-hop PEER chain ending in the LOCAL VNI.
    t.routing.insert(101, Prefix.parse("192.168.0.0/24"),
                     RouteAction(Scope.PEER, next_hop_vni=100))
    t.routing.insert(104, Prefix.parse("192.168.0.0/24"),
                     RouteAction(Scope.PEER, next_hop_vni=101))
    t.routing.insert(102, Prefix.parse("0.0.0.0/0"), RouteAction(Scope.INTERNET))
    t.routing.insert(103, Prefix.parse("0.0.0.0/0"),
                     RouteAction(Scope.SERVICE, target="snat"))
    for h in range(1, 7):  # hosts 7/8 stay unbound: no-vm drops
        gw.install_vm(100, ip(f"192.168.0.{h}"), 4, NcBinding(ip(f"10.2.0.{h}")))
    t.acl.insert(AclRule(priority=5, verdict=AclVerdict.DENY,
                         dst_ports=(9000, 9100)))
    t.meters.configure(vni_key(102),
                       TokenBucket(committed_rate=800.0, committed_burst=400.0))
    gw.set_redirect_rate_limit(rate_bps=8 * 400.0, burst_bytes=300.0)
    return gw


def hw_burst(rng, n=50):
    packets = []
    for _ in range(n):
        if rng.random() < 0.05:
            packets.append(plain_packet())
            continue
        packets.append(build_vxlan_packet(
            vni=rng.choice([100, 101, 102, 103, 104, 105]),
            src_ip=ip(f"192.168.0.{rng.randrange(1, 9)}"),
            dst_ip=ip(f"192.168.0.{rng.randrange(1, 9)}"),
            dst_port=rng.choice([80, 9050]),
        ))
    return packets


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestXgwHColumnarDifferential:
    """XGW-H columnar bursts vs the per-packet fabric simulation: every
    observable — results, stats, drop counters, chip tallies, per-pipe
    packet counts, bridged bytes, table counters, meter colors — must be
    identical."""

    def test_matches_fabric_simulation(self, backend_name):
        backend = resolve_backend(backend_name)
        col = make_hw_gateway(columnar=True)
        oracle = make_hw_gateway(columnar=False)
        assert col._batch_compiler is not None
        assert oracle._batch_compiler is None
        rng = random.Random(2021)
        now = 0.0
        for _ in range(12):
            now += 0.02
            packets = hw_burst(rng)
            got_list = col.forward_batch(
                PacketBatch.from_packets(packets, backend), now)
            want_list = oracle.forward_batch(packets, now)
            for got, want in zip(got_list, want_list):
                assert got.action is want.action
                assert got.detail == want.detail
                assert got.nc_ip == want.nc_ip
                assert got.packet.to_bytes() == want.packet.to_bytes()
        assert col.stats == oracle.stats
        assert col.stats.delivered > 0
        assert col.stats.redirected > 0
        assert col.counters.snapshot() == oracle.counters.snapshot()
        assert {"drop_acl_deny", "drop_meter_red", "drop_no_vm",
                "drop_no_route"} <= set(col.counters.snapshot())
        assert col.chip.packets_in == oracle.chip.packets_in
        assert col.chip.packets_dropped == oracle.chip.packets_dropped
        assert col.chip.fabric.pipe_packets == oracle.chip.fabric.pipe_packets
        t_col, t_ora = col.tables, oracle.tables
        assert (t_col.counters.total_packets(), t_col.counters.total_bytes()) \
            == (t_ora.counters.total_packets(), t_ora.counters.total_bytes())
        assert (t_col.acl.lookups, t_col.acl.matched) \
            == (t_ora.acl.lookups, t_ora.acl.matched)
        assert (t_col.meters.green, t_col.meters.yellow, t_col.meters.red) \
            == (t_ora.meters.green, t_ora.meters.yellow, t_ora.meters.red)

    def test_unfolded_chip_falls_back_to_per_packet(self, backend_name):
        gw = XgwH(gateway_ip=GW_H_IP, folded=False)
        assert gw._batch_compiler is None
        results = gw.forward_batch([plain_packet()])
        assert results[0].action is ForwardAction.DROP
        assert gw.stats.packets == 1
