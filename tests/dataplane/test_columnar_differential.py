"""Differential property test: the columnar batch path vs the scalar oracle.

Extends the flow-cache differential suite to the compiled data plane:
hypothesis drives randomized interleavings of forwards, batch-flush
boundaries and routing/VM/ACL/meter mutations against two identical
table sets — one forwarded in columnar bursts through
:class:`~repro.dataplane.columnar.BatchCompiler`-compiled programs, one
walked packet-by-packet through the never-cached scalar program. Every
burst must produce byte-identical :class:`ForwardResult`s, and at the
end of the interleaving the gateway counter sets (including every
per-reason ``drop_*`` counter), the tenant counter table, the ACL
telemetry and the meter color tallies must all agree exactly. Both
columnar backends (numpy and pure-python) run the same interleavings.
"""

import ipaddress

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataplane.columnar import PacketBatch, numpy_available, resolve_backend
from repro.dataplane.gateway_logic import GatewayTables, vni_key
from repro.net.addr import Prefix
from repro.net.headers import ETHERTYPE_IPV4, Ethernet, IPv4, PROTO_UDP, UDP
from repro.net.packet import Packet
from repro.tables.acl import AclRule, AclVerdict
from repro.tables.errors import TableError
from repro.tables.meter import TokenBucket
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import RouteAction, Scope
from repro.workloads.traffic import build_vxlan_packet
from repro.x86.gateway import XgwX86

GATEWAY_IP = 0x0AFFFF01
VNIS = [10, 11, 12]


def ip(text):
    return int(ipaddress.ip_address(text))


HOSTS = [ip(f"192.168.{net}.{h}") for net in (0, 1) for h in (1, 2, 3)]
NC_IPS = [ip(f"10.1.1.{h}") for h in range(1, 7)]
PREFIXES = [Prefix.parse(p) for p in (
    "192.168.0.0/24", "192.168.1.0/24", "192.168.0.0/16",
    "192.168.0.1/32", "192.168.1.2/32", "0.0.0.0/0",
)]
#: (committed_burst,) presets small enough that bursts mix GREEN and RED.
METER_BURSTS = [150.0, 400.0, 5000.0]

vnis = st.sampled_from(VNIS)
hosts = st.sampled_from(HOSTS)
prefixes = st.sampled_from(PREFIXES)
dports = st.sampled_from([53, 80, 443])

# PEER targets may form loops — fine, both paths must drop identically.
route_actions = st.one_of(
    st.just(RouteAction(Scope.LOCAL)),
    vnis.map(lambda v: RouteAction(Scope.PEER, next_hop_vni=v)),
    st.just(RouteAction(Scope.SERVICE, target="snat")),
    st.just(RouteAction(Scope.IDC, target="cen-1")),
    st.just(RouteAction(Scope.INTERNET)),
)

# Host-exact and /24 networks so the vectorized mask compares see both
# full and partial care-bits.
nets = st.one_of(
    st.none(),
    hosts.map(lambda h: (h, 0xFFFFFFFF)),
    hosts.map(lambda h: (h & 0xFFFFFF00, 0xFFFFFF00)),
)

acl_rules = st.builds(
    AclRule,
    priority=st.integers(min_value=1, max_value=5),
    verdict=st.sampled_from([AclVerdict.PERMIT, AclVerdict.DENY]),
    vni=st.one_of(st.none(), vnis),
    src_net=nets,
    dst_net=nets,
    dst_ports=st.one_of(st.none(), st.just((80, 443))),
)

ops = st.one_of(
    st.tuples(st.just("forward"), vnis, hosts, hosts, dports),
    st.tuples(st.just("plain"), hosts, hosts),
    st.tuples(st.just("flush")),
    st.tuples(st.just("route+"), vnis, prefixes, route_actions),
    st.tuples(st.just("route-"), vnis, prefixes),
    st.tuples(st.just("vm+"), vnis, hosts, st.sampled_from(NC_IPS)),
    st.tuples(st.just("vm-"), vnis, hosts),
    st.tuples(st.just("acl+"), acl_rules),
    st.tuples(st.just("acl-"), acl_rules),
    st.tuples(st.just("meter"), vnis, st.sampled_from(METER_BURSTS)),
)


def build_plain_packet(src, dst):
    """A non-VXLAN packet (exercises the not-vxlan lane fate)."""
    return Packet(
        eth=Ethernet(dst=0x02BB00000002, src=0x02BB00000001,
                     ethertype=ETHERTYPE_IPV4),
        ip=IPv4(src=src, dst=dst, proto=PROTO_UDP),
        l4=UDP(src_port=1234, dst_port=53),
    )


def apply_mutation(tables, op):
    """One table mutation; TableError (duplicate/missing) is a legal
    no-op outcome as long as both sides raise identically."""
    kind = op[0]
    try:
        if kind == "route+":
            tables.routing.insert(op[1], op[2], op[3], replace=True)
        elif kind == "route-":
            tables.routing.remove(op[1], op[2])
        elif kind == "vm+":
            tables.vm_nc.insert(op[1], op[2], 4, NcBinding(op[3]), replace=True)
        elif kind == "vm-":
            tables.vm_nc.remove(op[1], op[2], 4)
        elif kind == "acl+":
            tables.acl.insert(op[1])
        elif kind == "acl-":
            tables.acl.remove(op[1])
        elif kind == "meter":
            # A fresh bucket per side: TokenBucket carries live token state.
            tables.meters.configure(
                vni_key(op[1]),
                TokenBucket(committed_rate=500.0, committed_burst=op[2]))
    except TableError as exc:
        return type(exc)
    return None


def flush(col_gw, oracle_gw, pending, backend, now, step):
    """Forward the pending burst through both paths and compare."""
    if not pending:
        return
    batch = PacketBatch.from_packets(pending, backend)
    got_list = col_gw.forward_batch(batch, now)
    want_list = [oracle_gw.forward(p, now) for p in pending]
    for lane, (got, want) in enumerate(zip(got_list, want_list)):
        ctx = (step, lane)
        assert got.action is want.action, ctx
        assert got.detail == want.detail, ctx
        assert got.resolved_vni == want.resolved_vni, ctx
        assert got.nc_ip == want.nc_ip, ctx
        assert got.packet.to_bytes() == want.packet.to_bytes(), ctx
    pending.clear()


BACKENDS = [
    pytest.param("python", id="python"),
    pytest.param("numpy", id="numpy",
                 marks=pytest.mark.skipif(not numpy_available(),
                                          reason="numpy not installed")),
]


@pytest.mark.parametrize("backend_name", BACKENDS)
@settings(max_examples=250, deadline=None)
@given(op_list=st.lists(ops, min_size=1, max_size=40))
def test_columnar_batches_match_scalar_oracle(backend_name, op_list):
    backend = resolve_backend(backend_name)
    col_tables = GatewayTables()
    oracle_tables = GatewayTables()
    col_gw = XgwX86(gateway_ip=GATEWAY_IP, tables=col_tables)
    oracle_gw = XgwX86(gateway_ip=GATEWAY_IP, tables=oracle_tables,
                       cache_entries=0, columnar=False)
    assert col_gw._batch_compiler is not None
    pending = []
    now = 0.0
    for step, op in enumerate(op_list):
        now += 0.001
        kind = op[0]
        if kind == "forward":
            pending.append(build_vxlan_packet(vni=op[1], src_ip=op[2],
                                              dst_ip=op[3], dst_port=op[4]))
        elif kind == "plain":
            pending.append(build_plain_packet(op[1], op[2]))
        elif kind == "flush":
            flush(col_gw, oracle_gw, pending, backend, now, step)
        else:
            # A batch sees one table snapshot: settle the pending burst
            # before mutating (the mutation bumps the generation vector,
            # which must force a recompile on the next flush).
            flush(col_gw, oracle_gw, pending, backend, now, step)
            outcome_a = apply_mutation(col_tables, op)
            outcome_b = apply_mutation(oracle_tables, op)
            assert outcome_a == outcome_b, (step, op)
    flush(col_gw, oracle_gw, pending, backend, now + 0.001, len(op_list))
    # Both sides saw identical traffic: every observable stateful layer
    # must agree — gateway counters (rx, per-action, per-reason drop_*),
    # tenant counters, ACL telemetry and meter colors.
    assert col_gw.counters.snapshot() == oracle_gw.counters.snapshot()
    assert (col_tables.counters.total_packets()
            == oracle_tables.counters.total_packets())
    assert (col_tables.counters.total_bytes()
            == oracle_tables.counters.total_bytes())
    assert col_tables.acl.lookups == oracle_tables.acl.lookups
    assert col_tables.acl.matched == oracle_tables.acl.matched
    assert ((col_tables.meters.green, col_tables.meters.yellow,
             col_tables.meters.red)
            == (oracle_tables.meters.green, oracle_tables.meters.yellow,
                oracle_tables.meters.red))
