"""Tests for the XGW-H pipeline-split program: it must behave exactly
like the single-pass software program."""

import ipaddress

import pytest

from repro.core.xgw_h import XgwH
from repro.dataplane.gateway_logic import ForwardAction, GatewayTables, forward
from repro.dataplane.pipeline_program import SplitVmNc, parity_pipeline
from repro.net.addr import Prefix
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import RouteAction, Scope
from repro.workloads.traffic import build_vxlan_packet

GATEWAY_IP = 0x0AFFFF01
VPC_EVEN, VPC_ODD = 100, 101


def ip(text):
    return int(ipaddress.ip_address(text))


@pytest.fixture
def xgw_h():
    gw = XgwH(gateway_ip=GATEWAY_IP)
    for vpc, subnet in ((VPC_EVEN, "192.168.10.0/24"), (VPC_ODD, "192.168.20.0/24")):
        gw.install_route(vpc, Prefix.parse(subnet), RouteAction(Scope.LOCAL))
        gw.install_route(vpc, Prefix.parse("0.0.0.0/0"),
                         RouteAction(Scope.SERVICE, target="snat"))
    gw.install_route(VPC_EVEN, Prefix.parse("192.168.20.0/24"),
                     RouteAction(Scope.PEER, next_hop_vni=VPC_ODD))
    gw.install_route(VPC_EVEN, Prefix.parse("172.31.0.0/16"),
                     RouteAction(Scope.IDC, target="cen-1"))
    gw.install_vm(VPC_EVEN, ip("192.168.10.3"), 4, NcBinding(ip("10.1.1.12")))
    gw.install_vm(VPC_ODD, ip("192.168.20.5"), 4, NcBinding(ip("10.1.1.15")))
    return gw


class TestSplitVmNc:
    def test_parity_placement(self):
        split = SplitVmNc.empty()
        split.insert(2, 10, 4, NcBinding(1))
        split.insert(3, 11, 4, NcBinding(2))
        assert len(split.halves[0]) == 1 and len(split.halves[1]) == 1
        assert split.lookup(2, 10, 4).nc_ip == 1
        assert split.lookup(3, 11, 4).nc_ip == 2

    def test_pipe_mapping(self):
        split = SplitVmNc.empty()
        assert split.half_for_pipe(1) is split.halves[0]
        assert split.half_for_pipe(3) is split.halves[1]

    def test_parity_pipeline(self):
        assert parity_pipeline(10) == 0
        assert parity_pipeline(11) == 2


class TestXgwHForwarding:
    def test_local_delivery(self, xgw_h):
        packet = build_vxlan_packet(VPC_EVEN, ip("192.168.10.2"), ip("192.168.10.3"))
        result = xgw_h.forward(packet)
        assert result.action is ForwardAction.DELIVER_NC
        assert result.packet.ip.dst == ip("10.1.1.12")
        assert result.packet.ip.src == GATEWAY_IP
        assert xgw_h.stats.delivered == 1

    def test_odd_vni_uses_other_pipe_pair(self, xgw_h):
        packet = build_vxlan_packet(VPC_ODD, ip("192.168.20.2"), ip("192.168.20.5"))
        result = xgw_h.forward(packet)
        assert result.action is ForwardAction.DELIVER_NC
        share = xgw_h.egress_pipe_share()
        assert share.get(3, 0) == 1  # odd parity -> entry 2 -> egress pipe 3

    def test_peer_vpc_rewrite(self, xgw_h):
        packet = build_vxlan_packet(VPC_EVEN, ip("192.168.10.2"), ip("192.168.20.5"))
        result = xgw_h.forward(packet)
        # The split keys on the inner dst IP, which is invariant through
        # PEER resolution, so cross-VPC delivery works on either pair.
        assert result.action is ForwardAction.DELIVER_NC
        assert result.packet.ip.dst == ip("10.1.1.15")
        assert result.packet.vni == VPC_ODD

    def test_service_redirect(self, xgw_h):
        packet = build_vxlan_packet(VPC_EVEN, ip("192.168.10.2"), ip("8.8.8.8"))
        result = xgw_h.forward(packet)
        assert result.action is ForwardAction.REDIRECT_X86
        assert result.detail == "snat"
        assert xgw_h.stats.redirected == 1

    def test_uplink_early_exit(self, xgw_h):
        packet = build_vxlan_packet(VPC_EVEN, ip("192.168.10.2"), ip("172.31.9.9"))
        result = xgw_h.forward(packet)
        assert result.action is ForwardAction.UPLINK
        assert result.detail == "cen-1"

    def test_no_route_drop(self, xgw_h):
        packet = build_vxlan_packet(999, ip("192.168.10.2"), ip("192.168.10.3"))
        result = xgw_h.forward(packet)
        assert result.action is ForwardAction.DROP
        assert result.detail == "no-route"

    def test_no_vm_drop(self, xgw_h):
        packet = build_vxlan_packet(VPC_EVEN, ip("192.168.10.2"), ip("192.168.10.222"))
        result = xgw_h.forward(packet)
        assert result.action is ForwardAction.DROP
        assert result.detail == "no-vm"

    def test_latency_and_throughput_passthrough(self, xgw_h):
        assert 2.0 <= xgw_h.latency_us() <= 2.4
        assert xgw_h.throughput_bps() == pytest.approx(3.2e12)


class TestEquivalenceWithSoftwarePath:
    """The hardware pipeline program and the one-pass software program
    must agree on every packet."""

    def test_agreement_on_traffic_mix(self, xgw_h):
        tables = GatewayTables()
        for vni, prefix, action in xgw_h.tables.routing.items():
            tables.routing.insert(vni, prefix, action)
        tables.vm_nc.insert(VPC_EVEN, ip("192.168.10.3"), 4, NcBinding(ip("10.1.1.12")))
        tables.vm_nc.insert(VPC_ODD, ip("192.168.20.5"), 4, NcBinding(ip("10.1.1.15")))

        cases = [
            (VPC_EVEN, "192.168.10.2", "192.168.10.3"),
            (VPC_ODD, "192.168.20.2", "192.168.20.5"),
            (VPC_EVEN, "192.168.10.2", "8.8.8.8"),
            (VPC_EVEN, "192.168.10.2", "172.31.1.1"),
            (999, "192.168.10.2", "192.168.10.3"),
            (VPC_EVEN, "192.168.10.2", "192.168.10.99"),
        ]
        for vni, src, dst in cases:
            packet = build_vxlan_packet(vni, ip(src), ip(dst))
            hw = xgw_h.forward(packet)
            sw = forward(tables, packet, GATEWAY_IP)
            assert hw.action == sw.action, (vni, src, dst)
            if hw.action is ForwardAction.DELIVER_NC:
                assert hw.packet.ip.dst == sw.packet.ip.dst
                assert hw.packet.vni == sw.packet.vni
