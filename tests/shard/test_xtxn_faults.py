"""The cross-shard 2PC crash matrix: a seeded CONTROLLER_CRASH at every
protocol stage — pre-prepare, between prepares, pre-commit-marker,
mid-commit — must recover to all-committed or all-aborted, with any
gateway residue surfacing only as audit findings that the RepairBridge
clears."""

import json
import os

import pytest

from tests.shard.helpers import (SHARD_VNIS, ip, make_sharded, onboard,
                                 stage_peer_chain, subnet_of)

from repro.core.controller import VmEntry
from repro.core.journal import ControllerCrash
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.shard import ShardedAuditDriver, ShardedController
from repro.tables.vm_nc import NcBinding

A, B = SHARD_VNIS[0], SHARD_VNIS[2]  # endpoints on shards s00 and s02


def armed_region(*specs, seed=11):
    sharded = make_sharded()
    for vni in SHARD_VNIS:
        onboard(sharded, vni, subnet=str(subnet_of(vni)))
    plan = FaultPlan(seed=seed, specs=list(specs))
    FaultInjector(plan).arm_sharded(sharded)
    return sharded, plan


def attempt_chain(sharded):
    """The canonical cross-shard batch: the A<->B peer chain plus one new
    VM binding per side (VM residue is what recovery's sync cannot
    withdraw, so it must surface through the audit)."""
    with sharded.cross_transaction() as xtxn:
        stage_peer_chain(xtxn, A, B)
        xtxn.install_vm(VmEntry(A, ip("192.168.10.200"), 4,
                                NcBinding(ip("10.1.1.50"))))
        xtxn.install_vm(VmEntry(B, ip("192.168.10.201"), 4,
                                NcBinding(ip("10.1.1.51"))))


def chain_keys_present(sharded):
    """Whether each endpoint's desired state holds its staged entries."""
    out = {}
    for vni in (A, B):
        ctl = sharded.shard_for(vni).controller
        cid = sharded.cluster_of(vni)
        routes = ctl._routes.get(cid, {})
        vms = ctl._vms.get(cid, {})
        peer = B if vni == A else A
        out[vni] = (
            (peer, subnet_of(peer)) in routes
            and (vni, ip("192.168.10.200") if vni == A
                 else ip("192.168.10.201"), 4) in vms
        )
    return out


def save_artifacts(name, sharded):
    """Drop every shard's journal + replayed state where CI can upload."""
    art_dir = os.environ.get("SHARD_ARTIFACT_DIR")
    if not art_dir:
        return
    os.makedirs(art_dir, exist_ok=True)
    for sid in sorted(sharded.shards):
        journal = sharded.shards[sid].journal
        with open(os.path.join(art_dir, f"{name}-{sid}.journal"), "wb") as fh:
            fh.write(journal.dump())
        with open(os.path.join(art_dir, f"{name}-{sid}.state.json"), "w") as fh:
            json.dump(journal.materialize(), fh, indent=2, sort_keys=True)


def recover_and_audit(sharded, name):
    """Recover, assert atomicity, run the audit to repair any residue,
    and assert the rescan is clean. Returns the recovered region."""
    save_artifacts(name, sharded)
    recovered, _writes = ShardedController.recover_from(sharded)
    present = chain_keys_present(recovered)
    assert present[A] == present[B], f"partial commit after {name}: {present}"
    assert recovered.in_doubt() == {}
    # Route residue was withdrawn by recovery's sync; VM residue is only
    # reachable through the audit's two-way comparison.
    assert recovered.consistency_check() == {}
    driver = ShardedAuditDriver(recovered)
    driver.full_scan()
    rescan = driver.full_scan()
    assert rescan == {}, f"residue survived repair after {name}: {rescan}"
    return recovered


class TestCrashMatrix:
    def test_pre_prepare_crash_aborts_everything(self):
        # The coordinator dies right after journalling xtxn-begin: no
        # participant prepared, so recovery finds nothing in doubt.
        sharded, plan = armed_region(
            FaultSpec(FaultKind.CONTROLLER_CRASH, at_op="xtxn-begin",
                      max_fires=1))
        with pytest.raises(ControllerCrash, match="xtxn-begin"):
            attempt_chain(sharded)
        assert plan.injected(FaultKind.CONTROLLER_CRASH) == 1
        recovered = recover_and_audit(sharded, "crash-pre-prepare")
        assert chain_keys_present(recovered) == {A: False, B: False}
        assert recovered.counters["xtxn_resolved_abort"] == 0

    def test_crash_between_prepares_presumes_abort(self):
        # Death after the first participant (s00) prepared: its txn
        # record is in doubt, its gateways hold the batch. Presumed
        # abort; the VM residue on s00 is an extra-vm audit finding.
        sharded, _plan = armed_region(
            FaultSpec(FaultKind.CONTROLLER_CRASH, cluster="s00",
                      at_op="xtxn-prepare", max_fires=1))
        with pytest.raises(ControllerCrash, match="xtxn-prepare"):
            attempt_chain(sharded)
        assert list(sharded.in_doubt()) == ["s00"]

        save_artifacts("crash-between-prepares", sharded)
        recovered, _writes = ShardedController.recover_from(sharded)
        assert recovered.counters["xtxn_resolved_abort"] == 1
        assert chain_keys_present(recovered) == {A: False, B: False}
        driver = ShardedAuditDriver(recovered)
        findings = driver.full_scan()
        kinds = {f.kind for fs in findings.values() for f in fs}
        assert "extra-vm" in kinds, "prepare residue must surface in audit"
        assert driver.repairs_applied() >= 1
        assert driver.full_scan() == {}

    def test_pre_commit_marker_crash_aborts_both_shards(self):
        # Both participants prepared, the coordinator dies before the
        # xtxn-commit record: without the durable decision, recovery
        # presumes abort on every shard.
        sharded, _plan = armed_region(
            FaultSpec(FaultKind.CONTROLLER_CRASH, at_op="xtxn-decide",
                      max_fires=1))
        with pytest.raises(ControllerCrash, match="xtxn-decide"):
            attempt_chain(sharded)
        assert sorted(sharded.in_doubt()) == ["s00", "s02"]

        recovered, _writes = ShardedController.recover_from(sharded)
        assert recovered.counters["xtxn_resolved_abort"] == 2
        assert chain_keys_present(recovered) == {A: False, B: False}
        driver = ShardedAuditDriver(recovered)
        driver.full_scan()
        assert driver.full_scan() == {}

    def test_mid_commit_crash_resolves_as_committed(self):
        # The decision is durable; death before any participant marks its
        # prepare committed. Recovery finds the xtxn-commit record and
        # finishes the job on every shard.
        sharded, _plan = armed_region(
            FaultSpec(FaultKind.CONTROLLER_CRASH, at_op="xtxn-complete",
                      max_fires=1))
        with pytest.raises(ControllerCrash, match="xtxn-complete"):
            attempt_chain(sharded)

        recovered = recover_and_audit(sharded, "crash-mid-commit")
        assert recovered.counters["xtxn_resolved_commit"] == 2
        assert chain_keys_present(recovered) == {A: True, B: True}

    def test_mid_commit_crash_on_second_participant(self):
        # The first participant already journalled txn-commit and folded
        # its ops; the second is still in doubt. Recovery must converge
        # on committed — the one outcome both journals agree on.
        sharded, _plan = armed_region(
            FaultSpec(FaultKind.CONTROLLER_CRASH, cluster="s02",
                      at_op="xtxn-complete", max_fires=1))
        with pytest.raises(ControllerCrash, match="xtxn-complete"):
            attempt_chain(sharded)
        assert list(sharded.in_doubt()) == ["s02"]

        recovered = recover_and_audit(sharded, "crash-mid-commit-partial")
        assert recovered.counters["xtxn_resolved_commit"] == 1
        assert chain_keys_present(recovered) == {A: True, B: True}

    def test_double_crash_during_recovery_window_is_idempotent(self):
        # Crash mid-commit, recover, then recover the *recovered* region
        # again: resolution markers are already terminal, so the second
        # pass resolves nothing and changes nothing.
        sharded, _plan = armed_region(
            FaultSpec(FaultKind.CONTROLLER_CRASH, at_op="xtxn-complete",
                      max_fires=1))
        with pytest.raises(ControllerCrash):
            attempt_chain(sharded)
        once, _ = ShardedController.recover_from(sharded)
        intents = once.intent_snapshot()
        twice, _ = ShardedController.recover_from(once)
        assert twice.counters["xtxn_resolved_commit"] == 0
        assert twice.counters["xtxn_resolved_abort"] == 0
        assert twice.intent_snapshot() == intents

    def test_unrelated_shards_untouched_by_crash(self):
        # s01/s03 never participate: their journals and intent are
        # byte-identical before and after the crash + recovery.
        sharded, _plan = armed_region(
            FaultSpec(FaultKind.CONTROLLER_CRASH, at_op="xtxn-decide",
                      max_fires=1))
        before = {sid: sharded.shards[sid].journal.appends
                  for sid in ("s01", "s03")}
        intents = {sid: sharded.shards[sid].controller.intent_snapshot()
                   for sid in ("s01", "s03")}
        with pytest.raises(ControllerCrash):
            attempt_chain(sharded)
        recovered, _ = ShardedController.recover_from(sharded)
        for sid in ("s01", "s03"):
            assert sharded.shards[sid].journal.appends == before[sid]
            assert recovered.shards[sid].controller.intent_snapshot() == \
                intents[sid]
