"""Cross-shard transactions: atomic visibility, abort unwinding, and the
degenerate single-cluster fast path."""

import pytest

from tests.shard.helpers import (SHARD_VNIS, ip, make_sharded, onboard,
                                 stage_peer_chain, subnet_of)

from repro.core.controller import (RouteEntry, TransactionAborted, VmEntry)
from repro.net.addr import Prefix
from repro.shard import ShardError
from repro.tables.errors import TableError
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import RouteAction, Scope


def region_with_tenants():
    sharded = make_sharded()
    for vni in SHARD_VNIS:
        onboard(sharded, vni, subnet=str(subnet_of(vni)))
    return sharded


class TestCrossShardCommit:
    def test_peer_chain_commits_atomically_across_shards(self):
        sharded = region_with_tenants()
        a, b = SHARD_VNIS[0], SHARD_VNIS[2]
        with sharded.cross_transaction() as xtxn:
            stage_peer_chain(xtxn, a, b)
        assert sharded.counters["xtxns_committed"] == 1
        # Both sides hold the full chain and every gateway matches intent.
        for vni, peer in ((a, b), (b, a)):
            ctl = sharded.shard_for(vni).controller
            cid = sharded.cluster_of(vni)
            keys = {p for (v, p) in ctl._routes[cid] if v == vni}
            assert subnet_of(peer) in keys or subnet_of(vni) in keys
        assert sharded.consistency_check() == {}
        assert sharded.in_doubt() == {}

    def test_commit_is_journalled_on_every_participant(self):
        sharded = region_with_tenants()
        with sharded.cross_transaction() as xtxn:
            stage_peer_chain(xtxn, SHARD_VNIS[1], SHARD_VNIS[3])
        coord = sharded.shards["s01"].journal
        ops = [r.op for r in coord.records(after_seq=-1)]
        assert "xtxn-begin" in ops and "xtxn-commit" in ops
        part = sharded.shards["s03"].journal
        part_ops = [r.op for r in part.records(after_seq=-1)]
        assert "txn" in part_ops and "txn-commit" in part_ops

    def test_xtxn_markers_survive_replay(self):
        sharded = region_with_tenants()
        with sharded.cross_transaction() as xtxn:
            stage_peer_chain(xtxn, SHARD_VNIS[0], SHARD_VNIS[2])
        for sid in ("s00", "s02"):
            shard = sharded.shards[sid]
            intent = shard.controller.intent_snapshot()
            assert shard.journal.materialize() == intent

    def test_empty_cross_transaction_is_a_noop(self):
        sharded = region_with_tenants()
        appends = {sid: s.journal.appends for sid, s in sharded.shards.items()}
        with sharded.cross_transaction():
            pass
        assert {sid: s.journal.appends
                for sid, s in sharded.shards.items()} == appends

    def test_single_cluster_batch_uses_plain_transaction(self):
        sharded = region_with_tenants()
        vni = SHARD_VNIS[0]
        with sharded.cross_transaction() as xtxn:
            xtxn.install_route(RouteEntry(vni, Prefix.parse("10.99.0.0/16"),
                                          RouteAction(Scope.LOCAL)))
        ctl = sharded.shard_for(vni).controller
        assert ctl.counters["txns_committed"] == 1
        assert sharded.counters["xtxns_committed"] == 0  # fast path
        ops = [r.op for r in sharded.shards["s00"].journal.records(after_seq=-1)]
        assert "xtxn-begin" not in ops

    def test_raising_inside_block_discards_batch(self):
        sharded = region_with_tenants()
        appends = {sid: s.journal.appends for sid, s in sharded.shards.items()}
        with pytest.raises(RuntimeError):
            with sharded.cross_transaction() as xtxn:
                stage_peer_chain(xtxn, SHARD_VNIS[0], SHARD_VNIS[2])
                raise RuntimeError("caller changed its mind")
        assert {sid: s.journal.appends
                for sid, s in sharded.shards.items()} == appends

    def test_unplaced_participant_rejected_at_staging(self):
        sharded = region_with_tenants()
        with pytest.raises(ShardError, match="not placed"):
            with sharded.cross_transaction() as xtxn:
                xtxn.install_route(RouteEntry(424242, Prefix.parse("10.0.0.0/8"),
                                              RouteAction(Scope.LOCAL)))

    def test_vm_moves_ride_the_same_protocol(self):
        sharded = region_with_tenants()
        a, b = SHARD_VNIS[0], SHARD_VNIS[3]
        with sharded.cross_transaction() as xtxn:
            xtxn.remove_vm(a, ip("192.168.10.2"), 4)
            xtxn.install_vm(VmEntry(b, ip("192.168.10.9"), 4,
                                    NcBinding(ip("10.1.1.99"))))
        assert sharded.counters["xtxns_committed"] == 1
        assert sharded.consistency_check() == {}


class TestCrossShardAbort:
    def test_unknown_removal_aborts_before_any_journal_write(self):
        sharded = region_with_tenants()
        appends = {sid: s.journal.appends for sid, s in sharded.shards.items()}
        with pytest.raises(TableError, match="unknown entry"):
            with sharded.cross_transaction() as xtxn:
                stage_peer_chain(xtxn, SHARD_VNIS[0], SHARD_VNIS[2])
                xtxn.remove_route(SHARD_VNIS[2], Prefix.parse("1.2.3.0/24"))
        assert {sid: s.journal.appends
                for sid, s in sharded.shards.items()} == appends

    def test_member_failure_rolls_back_every_shard(self):
        sharded = region_with_tenants()
        a, b = SHARD_VNIS[0], SHARD_VNIS[2]
        # Poison the second participant's gateway so its prepare raises.
        cid_b = sharded.cluster_of(b)
        ctl_b = sharded.shard_for(b).controller
        victim = ctl_b.clusters[cid_b].members()[0]
        original = victim.gateway.install_route

        def failing(vni, prefix, action, replace=False):
            raise TableError("injected gateway agent failure")

        victim.gateway.install_route = failing
        intents_before = sharded.intent_snapshot()
        try:
            with pytest.raises(TransactionAborted):
                with sharded.cross_transaction() as xtxn:
                    stage_peer_chain(xtxn, a, b)
        finally:
            victim.gateway.install_route = original
        assert sharded.counters["xtxns_aborted"] == 1
        # No shard's intent moved; the first participant (which had fully
        # prepared) was unwound on every member.
        assert sharded.intent_snapshot() == intents_before
        assert sharded.consistency_check() == {}
        assert sharded.in_doubt() == {}
        # The journals carry the abort markers, so replay also sees the
        # batch as never-happened.
        ops_a = [r.op for r in sharded.shards["s00"].journal.records(after_seq=-1)]
        assert "txn-abort" in ops_a
        coord_ops = [r.op for r in sharded.shards["s00"].journal.records(after_seq=-1)]
        assert "xtxn-abort" in coord_ops
