"""ShardedController: single-shard operations route to the owning shard,
journals/snapshots stay per shard, recovery replays shards independently."""

import pytest

from tests.shard.helpers import (SHARD_VNIS, ip, make_sharded, onboard,
                                 tenant_payload)

from repro.core.controller import RouteEntry, VmEntry
from repro.net.addr import Prefix
from repro.shard import ShardedController, ShardError
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import RouteAction, Scope


class TestRoutingFacade:
    def test_tenants_land_on_their_owning_shard(self):
        sharded = make_sharded()
        for vni in SHARD_VNIS:
            onboard(sharded, vni)
        for vni, sid in zip(SHARD_VNIS, sharded.router.shard_ids()):
            assert sharded.router.shard_of(vni) == sid
            assert vni in sharded.shards[sid].controller.plan.assignments
            assert sharded.shards[sid].tenant_count() == 1

    def test_cluster_ids_are_shard_namespaced(self):
        sharded = make_sharded()
        cid0, _, _ = onboard(sharded, SHARD_VNIS[0])
        cid2, _, _ = onboard(sharded, SHARD_VNIS[2])
        assert cid0.startswith("s00")
        assert cid2.startswith("s02")
        assert cid0 != cid2

    def test_churn_touches_only_the_owning_shard(self):
        sharded = make_sharded()
        for vni in SHARD_VNIS:
            onboard(sharded, vni)
        before = {sid: s.journal.appends for sid, s in sharded.shards.items()}
        vni = SHARD_VNIS[1]
        sharded.install_route(RouteEntry(vni, Prefix.parse("10.42.0.0/16"),
                                         RouteAction(Scope.LOCAL)))
        sharded.install_vm(VmEntry(vni, ip("192.168.10.3"), 4,
                                   NcBinding(ip("10.1.1.12"))))
        sharded.remove_route(vni, Prefix.parse("10.42.0.0/16"))
        after = {sid: s.journal.appends for sid, s in sharded.shards.items()}
        assert after["s01"] == before["s01"] + 3
        for sid in ("s00", "s02", "s03"):
            assert after[sid] == before[sid]

    def test_unplaced_vni_rejected(self):
        sharded = make_sharded()
        with pytest.raises(ShardError, match="not placed"):
            sharded.cluster_of(123)

    def test_remove_tenant_routes_to_owner(self):
        sharded = make_sharded()
        for vni in SHARD_VNIS:
            onboard(sharded, vni)
        removed = sharded.remove_tenant(SHARD_VNIS[3])
        assert removed == 2  # one route + one VM
        assert sharded.shards["s03"].tenant_count() == 0
        assert sharded.shards["s00"].tenant_count() == 1

    def test_single_shard_transaction(self):
        sharded = make_sharded()
        onboard(sharded, SHARD_VNIS[0])
        with sharded.transaction(SHARD_VNIS[0]) as txn:
            txn.install_route(RouteEntry(SHARD_VNIS[0],
                                         Prefix.parse("10.7.0.0/16"),
                                         RouteAction(Scope.LOCAL)))
        ctl = sharded.shard_for(SHARD_VNIS[0]).controller
        assert ctl.counters["txns_committed"] == 1
        assert sharded.consistency_check() == {}


class TestPerShardDurability:
    def test_snapshot_compacts_only_one_shard(self):
        sharded = make_sharded(segment_bytes=256)
        for vni in SHARD_VNIS:
            onboard(sharded, vni)
        assert sharded.shards["s02"].journal.tail_records() > 0
        sharded.snapshot("s02")
        assert sharded.shards["s02"].journal.tail_records() == 0
        assert sharded.shards["s02"].journal.snapshot_bytes > 0
        # Other shards kept their tails: compaction cadence is per shard.
        assert sharded.shards["s00"].journal.tail_records() > 0
        assert sharded.shards["s00"].journal.snapshot_seq == -1

    def test_intent_snapshot_matches_each_journal(self):
        sharded = make_sharded()
        for vni in SHARD_VNIS:
            onboard(sharded, vni)
        intents = sharded.intent_snapshot()
        for sid, intent in intents.items():
            assert intent == sharded.shards[sid].journal.materialize()

    def test_recovery_replays_shards_independently(self):
        sharded = make_sharded(segment_bytes=256)
        for vni in SHARD_VNIS:
            onboard(sharded, vni)
        sharded.snapshot("s01")  # mixed snapshot/tail states across shards
        version_before = sharded.version
        intents_before = sharded.intent_snapshot()

        recovered, _writes = ShardedController.recover_from(sharded)
        assert recovered.version == version_before
        assert recovered.intent_snapshot() == intents_before
        assert recovered.consistency_check() == {}
        for shard in recovered.shards.values():
            assert shard.journal.telemetry()["last_replay_records"] >= 0

    def test_shard_status_reports_ranges_and_telemetry(self):
        sharded = make_sharded()
        onboard(sharded, SHARD_VNIS[0])
        rows = sharded.shard_status()
        assert [r["shard"] for r in rows] == ["s00", "s01", "s02", "s03"]
        assert rows[0]["vni_lo"] == 0
        assert rows[-1]["vni_hi"] == 1 << 24
        assert rows[0]["tenants"] == 1
        assert rows[0]["appends"] > 0
        for key in ("segments", "tail_bytes", "snapshot_bytes", "routes",
                    "vms", "clusters"):
            assert key in rows[0]

    def test_mismatched_shard_set_rejected(self):
        sharded = make_sharded(num_shards=2)
        with pytest.raises(ShardError):
            ShardedController(sharded.router,
                              {"s00": sharded.shards["s00"]})


class TestReconcileLoop:
    def test_one_shard_per_tick(self):
        from repro.sim.engine import Engine

        sharded = make_sharded()
        for vni in SHARD_VNIS:
            onboard(sharded, vni)
        engine = Engine()
        sharded.reconcile_loop(engine, interval=1.0, until=4.5)
        engine.run()
        # 4 ticks, round-robin: every shard reconciled exactly once.
        for shard in sharded.shards.values():
            assert shard.counters["reconcile_ticks"] == 1

    def test_divergence_repaired_within_one_region_pass(self):
        from repro.sim.engine import Engine

        sharded = make_sharded()
        for vni in SHARD_VNIS:
            onboard(sharded, vni)
        victim = sharded.shards["s02"].controller
        cid = victim.plan.assignments[SHARD_VNIS[2]]
        member = victim.clusters[cid].members()[0]
        member.gateway.remove_route(SHARD_VNIS[2],
                                    Prefix.parse("192.168.10.0/24"))
        engine = Engine()
        sharded.reconcile_loop(engine, interval=1.0, until=4.5)
        engine.run()
        assert victim.counters["repairs_applied"] >= 1
        assert sharded.consistency_check() == {}
