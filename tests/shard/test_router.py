"""ShardRouter: total, stable, canonical — the SplitPlan contract lifted
to the shard level."""

import pytest

from repro.shard import DEFAULT_VNI_SPACE, ShardError, ShardRouter


class TestShardRouter:
    def test_total_over_the_vni_space(self):
        router = ShardRouter(num_shards=4, vni_space=1 << 12)
        owners = [router.shard_of(v) for v in range(1 << 12)]
        assert set(owners) == set(router.shard_ids())

    def test_ranges_partition_the_space(self):
        router = ShardRouter(num_shards=7, vni_space=1000)
        ranges = router.ranges()
        assert ranges[0].lo == 0
        assert ranges[-1].hi == 1000
        for prev, nxt in zip(ranges, ranges[1:]):
            assert prev.hi == nxt.lo

    def test_shard_of_agrees_with_ranges(self):
        router = ShardRouter(num_shards=7, vni_space=1000)
        for r in router.ranges():
            assert router.shard_of(r.lo) == r.shard_id
            assert router.shard_of(r.hi - 1) == r.shard_id
            assert r.lo in r and r.hi not in r

    def test_out_of_space_vni_rejected(self):
        router = ShardRouter(num_shards=4)
        with pytest.raises(ShardError):
            router.shard_of(DEFAULT_VNI_SPACE)
        with pytest.raises(ShardError):
            router.shard_of(-1)

    def test_unknown_shard_rejected(self):
        with pytest.raises(ShardError):
            ShardRouter(num_shards=2).range_of("s99")

    def test_degenerate_configs_rejected(self):
        with pytest.raises(ShardError):
            ShardRouter(num_shards=0)
        with pytest.raises(ShardError):
            ShardRouter(num_shards=10, vni_space=5)

    def test_describe_is_byte_stable(self):
        a = ShardRouter(num_shards=16).describe()
        b = ShardRouter(num_shards=16).describe()
        assert a == b
        assert a != ShardRouter(num_shards=8).describe()

    def test_mapping_is_independent_of_history(self):
        # Stability: the owner is a pure function of the config, so two
        # controllers built from the same spec agree without talking.
        router = ShardRouter(num_shards=4)
        before = router.shard_of(12345)
        router.shard_of(9999999)
        assert router.shard_of(12345) == before
