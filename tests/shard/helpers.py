"""Shared builders for the sharded control-plane suite: a small region
(4 shards over the 24-bit VNI space) with two-member clusters."""

import ipaddress

from repro.cluster.cluster import GatewayCluster
from repro.core.controller import RouteEntry, VmEntry
from repro.core.splitting import ClusterCapacity, TenantProfile
from repro.core.xgw_h import XgwH
from repro.net.addr import Prefix
from repro.shard import ShardedController
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import RouteAction, Scope

#: One representative VNI per shard of a 4-shard region.
SHARD_VNIS = (100, (1 << 22) + 5, (1 << 23) + 9, (3 << 22) + 1)


def ip(text):
    return int(ipaddress.ip_address(text))


def make_sharded(num_shards=4, segment_bytes=16384):
    counter = [0]

    def factory(cluster_id):
        counter[0] += 1
        nodes = [(f"{cluster_id}-gw{i}", XgwH(gateway_ip=counter[0] * 10 + i))
                 for i in range(2)]
        return GatewayCluster(cluster_id, nodes)

    return ShardedController.build(
        num_shards,
        ClusterCapacity(routes=50, vms=500, traffic_bps=1e13),
        cluster_factory=factory,
        segment_bytes=segment_bytes,
    )


def tenant_payload(vni, subnet="192.168.10.0/24", vm="192.168.10.2",
                   nc="10.1.1.11"):
    routes = [RouteEntry(vni, Prefix.parse(subnet), RouteAction(Scope.LOCAL))]
    vms = [VmEntry(vni, ip(vm), 4, NcBinding(ip(nc)))]
    return TenantProfile(vni, len(routes), len(vms), 1e9), routes, vms


def onboard(sharded, vni, **kwargs):
    profile, routes, vms = tenant_payload(vni, **kwargs)
    cluster_id = sharded.add_tenant(profile, routes, vms)
    return cluster_id, routes, vms


def subnet_of(vni):
    """A deterministic, per-tenant /16 for peering payloads."""
    return Prefix.parse(f"10.{vni % 200}.0.0/16")


def stage_peer_chain(xtxn, a, b):
    """The full cross-shard peer chain between placed tenants *a* and
    *b*: each endpoint's cluster receives its own PEER hop plus the
    remote terminal entry (gateways resolve chains locally)."""
    sub_a, sub_b = subnet_of(a), subnet_of(b)
    xtxn.install_route(RouteEntry(a, sub_b, RouteAction(Scope.PEER,
                                                        next_hop_vni=b)))
    xtxn.install_route(RouteEntry(b, sub_b, RouteAction(Scope.LOCAL)), owner=a)
    xtxn.install_route(RouteEntry(b, sub_a, RouteAction(Scope.PEER,
                                                        next_hop_vni=a)))
    xtxn.install_route(RouteEntry(a, sub_a, RouteAction(Scope.LOCAL)), owner=b)
