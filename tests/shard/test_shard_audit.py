"""ShardedAuditDriver: per-shard budgets, O(shard) work per tick, and
detection latency bounded by one region cycle."""

from tests.shard.helpers import SHARD_VNIS, make_sharded, onboard

from repro.audit.scanner import AuditConfig
from repro.net.addr import Prefix
from repro.shard import ShardedAuditDriver
from repro.sim.engine import Engine


def audited_region(budget=4):
    sharded = make_sharded()
    for vni in SHARD_VNIS:
        onboard(sharded, vni)
    driver = ShardedAuditDriver(sharded, AuditConfig(seed=3, budget=budget))
    return sharded, driver


def break_shard(sharded, index):
    """Remove a tenant's route from one gateway of shard *index*."""
    vni = SHARD_VNIS[index]
    ctl = sharded.shard_for(vni).controller
    cid = ctl.plan.assignments[vni]
    member = ctl.clusters[cid].members()[0]
    member.gateway.remove_route(vni, Prefix.parse("192.168.10.0/24"))
    return cid


class TestBudgets:
    def test_tick_advances_one_shard_only(self):
        _sharded, driver = audited_region(budget=2)
        first = driver.current_shard
        ran = driver.tick()
        assert 0 < ran <= 2
        # Mid-cycle the cursor stays; it moves only on cycle completion.
        if driver.scanners[first].cycles_completed == 0:
            assert driver.current_shard == first

    def test_per_tick_work_is_bounded_by_the_budget(self):
        _sharded, driver = audited_region(budget=3)
        for _ in range(50):
            assert driver.tick() <= 3

    def test_region_sweep_visits_every_shard_round_robin(self):
        _sharded, driver = audited_region(budget=4)
        for _ in range(driver.cycle_length()):
            driver.tick()
        assert driver.counters["region_sweeps"] == 1
        for scanner in driver.scanners.values():
            assert scanner.cycles_completed == 1

    def test_cycle_length_is_the_sum_of_shard_cycles(self):
        _sharded, driver = audited_region(budget=1)
        expected = 0
        for scanner in driver.scanners.values():
            units = len(scanner._build_units())
            expected += max(1, -(-units // 1))
        assert driver.cycle_length() == expected


class TestDetectionAndRepair:
    def test_divergence_found_within_one_region_cycle(self):
        sharded, driver = audited_region(budget=4)
        break_shard(sharded, 2)
        for _ in range(driver.cycle_length()):
            driver.tick()
        assert driver.findings_by_kind().get("missing-route", 0) >= 1
        assert driver.repairs_applied() >= 1
        assert driver.full_scan() == {}

    def test_simultaneous_divergence_on_every_shard(self):
        sharded, driver = audited_region(budget=4)
        for index in range(4):
            break_shard(sharded, index)
        for _ in range(driver.cycle_length()):
            driver.tick()
        assert driver.repairs_applied() >= 4
        assert driver.full_scan() == {}
        assert sharded.consistency_check() == {}

    def test_full_scan_reports_per_shard(self):
        sharded, driver_no_repair = audited_region(budget=4)
        driver = ShardedAuditDriver(sharded, AuditConfig(seed=3),
                                    repair=False)
        break_shard(sharded, 1)
        findings = driver.full_scan()
        assert set(findings) == {"s01"}
        # Advisory driver never repaired, so the divergence persists.
        assert driver.full_scan() != {}
        del driver_no_repair

    def test_attach_drives_ticks_from_the_engine(self):
        sharded, driver = audited_region(budget=4)
        break_shard(sharded, 0)
        engine = Engine()
        driver.attach(engine, interval=1.0,
                      until=float(driver.cycle_length()) + 0.5)
        engine.run()
        assert driver.counters["audit_ticks"] >= driver.cycle_length()
        assert driver.full_scan() == {}
