"""Tests for the count-min sketch and space-saving tracker."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.offload.sketch import CountMinSketch, SpaceSaving


class TestCountMin:
    def test_never_underestimates(self):
        cms = CountMinSketch(width=32, depth=4, seed=1)
        truth = {}
        for i in range(500):
            key = f"flow-{i % 80}"
            cms.update(key, float(i % 7))
            truth[key] = truth.get(key, 0.0) + float(i % 7)
        for key, true in truth.items():
            assert cms.estimate(key) >= true

    def test_exact_without_collisions(self):
        cms = CountMinSketch(width=4096, depth=4, seed=0)
        cms.update("a", 10.0)
        cms.update("b", 20.0)
        assert cms.estimate("a") == 10.0
        assert cms.estimate("b") == 20.0
        assert cms.estimate("c") == 0.0

    def test_conservative_update_never_looser(self):
        """Same stream through plain and conservative sketches: the
        conservative estimates are <= the plain ones, key by key."""
        plain = CountMinSketch(width=16, depth=3, seed=5, conservative=False)
        cons = CountMinSketch(width=16, depth=3, seed=5, conservative=True)
        stream = [(f"k{i % 40}", float(1 + i % 5)) for i in range(400)]
        truth = {}
        for key, n in stream:
            plain.update(key, n)
            cons.update(key, n)
            truth[key] = truth.get(key, 0.0) + n
        for key, true in truth.items():
            assert true <= cons.estimate(key) <= plain.estimate(key)

    def test_documented_bounds(self):
        import math
        cms = CountMinSketch(width=100, depth=5)
        assert cms.epsilon == pytest.approx(math.e / 100)
        assert cms.delta == pytest.approx(math.exp(-5))
        cms.update("x", 50.0)
        assert cms.error_bound() == pytest.approx(cms.epsilon * 50.0)

    def test_reset_clears(self):
        cms = CountMinSketch(width=8, depth=2)
        cms.update("x", 5.0)
        cms.reset()
        assert cms.estimate("x") == 0.0
        assert cms.total == 0.0

    def test_seed_determinism(self):
        a = CountMinSketch(width=8, depth=2, seed=3)
        b = CountMinSketch(width=8, depth=2, seed=3)
        c = CountMinSketch(width=8, depth=2, seed=4)
        for cms in (a, b, c):
            for i in range(100):
                cms.update(f"k{i}", 1.0)
        assert [a.estimate(f"k{i}") for i in range(100)] == \
            [b.estimate(f"k{i}") for i in range(100)]
        # A different seed permutes collisions (not required, but with
        # 100 keys in 16 cells it would be astonishing otherwise).
        assert [a.estimate(f"k{i}") for i in range(100)] != \
            [c.estimate(f"k{i}") for i in range(100)]

    def test_footprint_scales_with_cells(self):
        small = CountMinSketch(width=64, depth=2).footprint()
        big = CountMinSketch(width=128, depth=4).footprint()
        assert big.sram_words == 4 * small.sram_words

    def test_validation(self):
        with pytest.raises(ValueError):
            CountMinSketch(width=0)
        with pytest.raises(ValueError):
            CountMinSketch(depth=0)
        with pytest.raises(ValueError):
            CountMinSketch().update("x", -1.0)

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        stream=st.lists(
            st.tuples(st.integers(min_value=0, max_value=60),
                      st.integers(min_value=0, max_value=100)),
            min_size=1, max_size=300),
    )
    def test_property_bounds_across_seeds(self, seed, stream):
        """Never under-estimate (always), over-count <= eps*N for the
        overwhelming majority of keys (the probabilistic guarantee;
        depth 4 puts the per-key failure odds at e^-4 ~ 1.8%, so allow a
        10% violation margin to keep the test deterministic-enough)."""
        cms = CountMinSketch(width=64, depth=4, seed=seed)
        truth = {}
        for key, count in stream:
            cms.update(key, float(count))
            truth[key] = truth.get(key, 0.0) + float(count)
        violations = 0
        for key, true in truth.items():
            est = cms.estimate(key)
            assert est >= true  # the unconditional guarantee
            if est - true > cms.error_bound() + 1e-9:
                violations += 1
        assert violations <= max(1, len(truth) // 10)


class TestSpaceSaving:
    def test_top_ordering(self):
        ss = SpaceSaving(capacity=8)
        for key, n in [("a", 5), ("b", 50), ("c", 20)]:
            ss.update(key, n)
        assert [k for k, _e, _err in ss.top(3)] == ["b", "c", "a"]

    def test_recycles_min_slot_with_error(self):
        ss = SpaceSaving(capacity=2)
        ss.update("a", 10)
        ss.update("b", 3)
        ss.update("c", 1)  # evicts b, inherits its count as error
        assert "b" not in ss
        (_key, est, err) = [t for t in ss.top(2) if t[0] == "c"][0]
        assert est == 4.0 and err == 3.0
        # The space-saving invariant: est - err <= true <= est.
        assert est - err <= 1 <= est

    def test_guaranteed_threshold(self):
        ss = SpaceSaving(capacity=4)
        for i in range(100):
            ss.update(f"k{i % 10}", 1.0)
        assert ss.guaranteed_threshold() == pytest.approx(25.0)
        # Keys above N/c are guaranteed present; none are here (each has
        # weight 10 < 25), but the heaviest tracked keys still cover the
        # stream's head.
        assert len(ss) == 4

    def test_heavy_keys_always_tracked(self):
        ss = SpaceSaving(capacity=10)
        for i in range(1000):
            ss.update("elephant" if i % 2 else f"mouse-{i}", 1.0)
        assert "elephant" in ss
        assert ss.estimate("elephant") >= 500

    def test_deterministic_eviction(self):
        def run():
            ss = SpaceSaving(capacity=3)
            for i in range(50):
                ss.update(f"k{i % 7}", 1.0)
            return ss.top(3)

        assert run() == run()

    def test_validation(self):
        with pytest.raises(ValueError):
            SpaceSaving(capacity=0)
        with pytest.raises(ValueError):
            SpaceSaving().update("x", -2.0)
