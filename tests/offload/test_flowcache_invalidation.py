"""Integration: controller-driven mutations invalidate the flow cache.

A hybrid cluster (one XGW-H, one XGW-x86) is managed by the real
controller. The x86 box serves traffic through its flow cache; then the
heavy-hitter machinery promotes the hot VIP via a controller
transaction, which installs the /32 steering route on *every* member —
the generation bump must make the x86 box's cached decision stale so the
very next packet re-resolves onto the steering route. A transactional
VM migration likewise must never yield a stale DELIVER_NC to the old NC.
"""

import ipaddress

from repro.cluster.cluster import GatewayCluster
from repro.cluster.ecmp import VniSteeredBalancer
from repro.core.controller import Controller, RouteEntry, VmEntry
from repro.core.splitting import ClusterCapacity, TableSplitter, TenantProfile
from repro.core.xgw_h import XgwH
from repro.dataplane.gateway_logic import ForwardAction
from repro.net.addr import Prefix
from repro.offload.detector import HeavyHitterDetector
from repro.offload.scheduler import ChipBudget, OffloadScheduler, VipKey
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import RouteAction, Scope
from repro.workloads.traffic import build_vxlan_packet
from repro.x86.gateway import XgwX86


def ip(text):
    return int(ipaddress.ip_address(text))


VNI = 1000
VM_IP = ip("192.168.10.2")
NC_A = ip("10.1.1.11")
NC_B = ip("10.2.2.22")


def make_hybrid_controller():
    """A controller whose clusters mix hardware and software members."""
    ctrl = Controller(
        TableSplitter(ClusterCapacity(routes=50, vms=500, traffic_bps=1e13)),
        VniSteeredBalancer(),
    )

    def factory(cluster_id):
        return GatewayCluster(cluster_id, [
            (f"{cluster_id}-hw0", XgwH(gateway_ip=0x0A0000FE)),
            (f"{cluster_id}-x86", XgwX86(gateway_ip=0x0A0000FD)),
        ])

    ctrl.set_cluster_factory(factory)
    return ctrl


def onboard(ctrl):
    routes = [RouteEntry(VNI, Prefix.parse("192.168.10.0/24"),
                         RouteAction(Scope.LOCAL))]
    vms = [VmEntry(VNI, VM_IP, 4, NcBinding(NC_A))]
    cluster_id = ctrl.add_tenant(TenantProfile(VNI, 1, 1, 1e9), routes, vms)
    return cluster_id


def x86_member(ctrl, cluster_id):
    (member,) = [m for m in ctrl.clusters[cluster_id].all_members()
                 if isinstance(m.gateway, XgwX86)]
    return member.gateway


def vip_packet():
    return build_vxlan_packet(vni=VNI, src_ip=ip("192.168.10.9"), dst_ip=VM_IP)


def test_offload_promotion_invalidates_cached_decisions():
    ctrl = make_hybrid_controller()
    cluster_id = onboard(ctrl)
    gw = x86_member(ctrl, cluster_id)

    # Warm the cache: second packet is a hit, delivered to NC_A.
    assert gw.forward(vip_packet()).nc_ip == NC_A
    hit = gw.forward(vip_packet())
    assert hit.nc_ip == NC_A
    assert gw.flow_cache.hits == 1

    # The real detector promotes the VIP after sustained load; the
    # scheduler turns that into a controller transaction on the cluster.
    vip = VipKey(VNI, VM_IP)
    detector = HeavyHitterDetector(theta_hi=100.0, theta_lo=40.0,
                                   promote_after=2, ewma_alpha=1.0)
    sched = OffloadScheduler(
        ctrl, cluster_id,
        ChipBudget(ctrl.clusters[cluster_id], sram_budget_words=8,
                   tcam_budget_slices=64),
        detector=detector,
    )
    gen_before = gw.tables.routing.generation
    sched.apply(detector.observe({vip: 500.0}), now=1.0)  # arming interval
    decisions = detector.observe({vip: 500.0})
    assert [d.kind for d in decisions] == ["promote"]
    sched.apply(decisions, now=2.0)
    assert sched.is_offloaded(vip)
    assert gw.tables.routing.generation > gen_before

    # The stale cached decision must not be served: the next forward
    # re-resolves and lands on the /32 steering route.
    stale_before = gw.flow_cache.stale
    gw.forward(vip_packet())
    assert gw.flow_cache.stale == stale_before + 1
    resolution = gw.tables.routing.resolve(VNI, VM_IP, 4)
    assert resolution.action.target == "offload"


def test_vm_migration_never_serves_stale_deliver_nc():
    ctrl = make_hybrid_controller()
    cluster_id = onboard(ctrl)
    gw = x86_member(ctrl, cluster_id)

    for _ in range(3):
        assert gw.forward(vip_packet()).nc_ip == NC_A
    assert gw.flow_cache.hits == 2

    # Live-migrate the VM to a new NC, transactionally across members.
    with ctrl.transaction(cluster_id, time=5.0) as txn:
        txn.remove_vm(VNI, VM_IP, 4)
        txn.install_vm(VmEntry(VNI, VM_IP, 4, NcBinding(NC_B)))
    assert ctrl.consistency_check(cluster_id) == []

    result = gw.forward(vip_packet())
    assert result.action is ForwardAction.DELIVER_NC
    assert result.nc_ip == NC_B  # never the pre-migration NC
    assert result.packet.ip.dst == NC_B
    # And the re-captured entry serves hits for the new binding.
    again = gw.forward(vip_packet())
    assert again.nc_ip == NC_B
    assert gw.flow_cache.hits >= 3
