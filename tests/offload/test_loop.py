"""End-to-end offload loop: overload on x86, relief via XGW-H."""

import pytest

from tests.faults.helpers import make_controller, onboard

from repro.offload import (
    ChipBudget,
    HeavyHitterDetector,
    IntervalSnapshot,
    OffloadLoop,
    OffloadScheduler,
    vip_of,
)
from repro.sim.engine import Engine
from repro.workloads.flows import heavy_hitter_flows
from repro.x86.cpu import DEFAULT_CORE_PPS
from repro.x86.gateway import XgwX86


def build_loop(seed=7, load_fraction=0.4, sram=64, duration=30.0):
    ctrl = make_controller()
    cluster_id, _routes, _vms = onboard(ctrl, vni=1000)
    budget = ChipBudget(ctrl.clusters[cluster_id], sram_budget_words=sram,
                        tcam_budget_slices=2 * sram)
    detector = HeavyHitterDetector(
        theta_hi=0.5 * DEFAULT_CORE_PPS, theta_lo=0.2 * DEFAULT_CORE_PPS,
        promote_after=2, demote_after=3, ewma_alpha=0.5, seed=seed)
    scheduler = OffloadScheduler(ctrl, cluster_id, budget, detector=detector)
    gateway = XgwX86(gateway_ip=0x0A000001)
    flows = heavy_hitter_flows(100, load_fraction * gateway.total_capacity_pps,
                               seed=4, alpha=1.4, vnis=[1000])
    engine = Engine()
    loop = OffloadLoop(engine, [gateway], scheduler, detector,
                       lambda _t: flows)
    loop.start(until=duration)
    engine.run(until=duration)
    return loop, scheduler


class TestOffloadRelief:
    def test_overload_is_relieved(self):
        loop, scheduler = build_loop()
        first, last = loop.snapshots[0], loop.snapshots[-1]
        # Before offload: saturated cores, heavy loss (Fig. 4 regime).
        assert first.x86_max_core_util == 1.0
        assert first.x86_loss > 0.1
        # After: elephants on the chip, x86 comfortably below capacity.
        assert last.x86_loss < 0.001
        assert last.x86_max_core_util < 0.9
        assert len(scheduler.offloaded) > 0
        assert last.offloaded_pps > first.offloaded_pps

    def test_no_flapping_at_steady_state(self):
        _loop, scheduler = build_loop()
        # Elephants promote once and stay: zero demotes in the log.
        assert scheduler.counters["demotions"] == 0
        assert scheduler.counters["promotions"] == len(scheduler.offloaded)

    def test_occupancy_within_capacity(self):
        _loop, scheduler = build_loop()
        occ = scheduler.budget.occupancy()
        assert 0.0 < occ["sram"] <= 1.0
        assert 0.0 < occ["tcam"] <= 1.0
        used, cap = scheduler.budget.used, scheduler.budget.capacity()
        assert used.sram_words <= cap.sram_words
        assert used.tcam_slices <= cap.tcam_slices

    def test_decision_log_byte_identical_across_runs(self):
        _l1, s1 = build_loop(seed=7)
        _l2, s2 = build_loop(seed=7)
        assert s1.decision_log_text() == s2.decision_log_text()
        assert s1.decision_log_text()  # non-empty

    def test_hw_side_keeps_feeding_the_detector(self):
        """Offloaded VIPs keep a live rate through the counter sweep, so
        they stay HOT instead of decaying toward demotion."""
        loop, scheduler = build_loop()
        for key in scheduler.offloaded:
            assert scheduler.detector.smoothed_rate(key) > \
                scheduler.detector.theta_lo

    def test_telemetry_series_cover_both_substrates(self):
        loop, scheduler = build_loop(duration=5.0)
        series = scheduler.series
        for name in ("x86-offered-pps", "x86-loss", "x86-max-core-util",
                     "offloaded-pps", "chip-sram-occupancy"):
            assert name in series
        # Per-core utilisation series (Fig. 4 style) exist.
        assert "gw0/core-0" in series

    def test_snapshot_loss_properties(self):
        snap = IntervalSnapshot(time=0.0, x86_offered_pps=1000.0,
                                x86_dropped_pps=10.0, x86_max_core_util=0.5,
                                offloaded_pps=1000.0, hw_dropped_pps=0.0)
        assert snap.x86_loss == pytest.approx(0.01)
        assert snap.total_loss == pytest.approx(0.005)
        empty = IntervalSnapshot(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        assert empty.x86_loss == 0.0 and empty.total_loss == 0.0

    def test_vip_of_groups_by_destination(self):
        loop, _sched = build_loop(duration=2.0)
        flows = loop.workload(0.0)
        keys = {vip_of(f) for f in flows}
        assert all(k.vni == 1000 for k in keys)

    def test_loop_validation(self):
        engine = Engine()
        with pytest.raises(ValueError):
            OffloadLoop(engine, [], None, None, lambda _t: [])
