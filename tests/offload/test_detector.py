"""Tests for EWMA smoothing and promote/demote hysteresis."""

import pytest

from repro.offload.detector import (
    Decision,
    FlowState,
    HeavyHitterDetector,
    sweep_counter_rates,
)
from repro.sim.engine import Engine
from repro.tables.counter import CounterTable


def detector(**kwargs):
    defaults = dict(theta_hi=100.0, theta_lo=40.0, promote_after=2,
                    demote_after=3, ewma_alpha=1.0)
    defaults.update(kwargs)
    return HeavyHitterDetector(**defaults)


class TestHysteresis:
    def test_promote_needs_consecutive_intervals(self):
        det = detector(promote_after=3)
        assert det.observe({"v": 500.0}) == []
        assert det.observe({"v": 500.0}) == []
        decisions = det.observe({"v": 500.0})
        assert [d.kind for d in decisions] == ["promote"]
        assert det.state_of("v") is FlowState.HOT

    def test_one_cold_interval_resets_promote_streak(self):
        det = detector(promote_after=2)
        det.observe({"v": 500.0})
        det.observe({"v": 10.0})  # streak broken
        assert det.observe({"v": 500.0}) == []
        assert [d.kind for d in det.observe({"v": 500.0})] == ["promote"]

    def test_demote_needs_consecutive_intervals(self):
        det = detector(promote_after=1, demote_after=2)
        det.observe({"v": 500.0})
        assert det.state_of("v") is FlowState.HOT
        assert det.observe({"v": 10.0}) == []
        decisions = det.observe({"v": 10.0})
        assert [d.kind for d in decisions] == ["demote"]
        assert det.state_of("v") is FlowState.COLD

    def test_band_between_thresholds_is_sticky(self):
        """Rates inside (theta_lo, theta_hi) change nothing either way."""
        det = detector(promote_after=1, demote_after=1)
        det.observe({"v": 500.0})
        for _ in range(5):
            assert det.observe({"v": 70.0}) == []  # between 40 and 100
        assert det.state_of("v") is FlowState.HOT

    def test_oscillation_around_theta_hi_migrates_at_most_once(self):
        """The acceptance scenario: a flow flapping around theta_hi
        promotes once and never comes back down (it never dips below
        theta_lo), so each direction sees at most one migration."""
        det = detector(promote_after=2, demote_after=2)
        kinds = []
        for i in range(40):
            rate = 120.0 if i % 2 == 0 else 85.0  # around theta_hi=100
            kinds += [d.kind for d in det.observe({"v": rate})]
        assert kinds.count("promote") <= 1
        assert kinds.count("demote") == 0

    def test_disappeared_key_decays_to_demote(self):
        det = detector(promote_after=1, demote_after=2)
        det.observe({"v": 500.0})
        det.observe({})  # key vanished: observed rate 0
        decisions = det.observe({})
        assert [d.kind for d in decisions] == ["demote"]

    def test_mark_demoted_restarts_hysteresis(self):
        det = detector(promote_after=2)
        det.observe({"v": 500.0})
        det.observe({"v": 500.0})
        assert det.state_of("v") is FlowState.HOT
        det.mark_demoted("v")
        assert det.state_of("v") is FlowState.COLD
        # Must re-earn the full promote streak.
        assert det.observe({"v": 500.0}) == []
        assert [d.kind for d in det.observe({"v": 500.0})] == ["promote"]


class TestSmoothing:
    def test_first_sample_seeds_ewma(self):
        det = detector(ewma_alpha=0.5)
        det.observe({"v": 200.0})
        assert det.smoothed_rate("v") == pytest.approx(200.0)

    def test_ewma_blends(self):
        det = detector(ewma_alpha=0.5, promote_after=99)
        det.observe({"v": 200.0})
        det.observe({"v": 100.0})
        assert det.smoothed_rate("v") == pytest.approx(150.0)

    def test_burst_does_not_trigger_with_small_alpha(self):
        """One bursty interval cannot promote when smoothing is slow."""
        det = detector(ewma_alpha=0.1, promote_after=1)
        det.observe({"v": 10.0})
        # Raw 500 is 5x theta_hi, but smoothed: 0.1*500 + 0.9*10 = 59.
        assert det.observe({"v": 500.0}) == []
        assert det.smoothed_rate("v") == pytest.approx(59.0)


class TestDecisionShape:
    def test_decisions_sorted_hot_first(self):
        det = detector(promote_after=1)
        decisions = det.observe({"small": 150.0, "big": 900.0})
        assert [d.key for d in decisions] == ["big", "small"]
        assert all(isinstance(d, Decision) for d in decisions)

    def test_rates_pass_through_the_sketch(self):
        det = detector(promote_after=1)
        # The decision rate is the sketch estimate (>= true rate).
        decisions = det.observe({"v": 500.0})
        assert decisions[0].rate_pps >= 500.0

    def test_idle_cold_tracks_are_dropped(self):
        det = detector()
        det.observe({f"k{i}": 1.0 for i in range(10)})
        det.observe({})
        det.observe({})
        assert det.hot_keys() == []
        assert len(det._tracks) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            HeavyHitterDetector(theta_hi=10.0, theta_lo=20.0)
        with pytest.raises(ValueError):
            HeavyHitterDetector(theta_hi=10.0, theta_lo=5.0, promote_after=0)
        with pytest.raises(ValueError):
            HeavyHitterDetector(theta_hi=10.0, theta_lo=5.0, ewma_alpha=0.0)
        with pytest.raises(ValueError):
            detector().observe({"v": -1.0})


class TestEngineIntegration:
    def test_attach_drives_observations(self):
        engine = Engine()
        det = detector(promote_after=2)
        sunk = []
        det.attach(engine, interval=1.0, source=lambda: {"v": 500.0},
                   sink=sunk.extend, until=5.0)
        engine.run(until=5.0)
        assert [d.kind for d in sunk] == ["promote"]
        assert det.interval_index == 5


class TestCounterSweep:
    def test_sweep_converts_and_clears(self):
        counters = CounterTable()
        counters.count_batch("a", 500, 64_000)
        counters.count_batch("b", 100)
        rates = sweep_counter_rates(counters, interval=0.5)
        assert rates == {"a": 1000.0, "b": 200.0}
        assert counters.read("a").packets == 0
        assert len(counters) == 0

    def test_sweep_validates_interval(self):
        with pytest.raises(ValueError):
            sweep_counter_rates(CounterTable(), 0.0)
