"""Tests for capacity-aware admission and transactional migrations."""

import pytest

from tests.faults.helpers import make_controller, onboard

from repro.cluster.cluster import GatewayCluster
from repro.core.controller import Controller
from repro.core.journal import ControllerCrash, Journal
from repro.core.splitting import ClusterCapacity, TableSplitter
from repro.cluster.ecmp import VniSteeredBalancer
from repro.core.xgw_h import XgwH
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.offload.detector import FlowState, HeavyHitterDetector
from repro.offload.scheduler import (
    ChipBudget,
    OffloadScheduler,
    VipKey,
    entry_footprint,
)
from repro.tables.geometry import MemoryFootprint


def build(sram=8, tcam=64, **detector_kwargs):
    ctrl = make_controller()
    cluster_id, _routes, _vms = onboard(ctrl, vni=1000)
    budget = ChipBudget(ctrl.clusters[cluster_id], sram_budget_words=sram,
                        tcam_budget_slices=tcam)
    detector = None
    if detector_kwargs:
        detector = HeavyHitterDetector(**detector_kwargs)
    sched = OffloadScheduler(ctrl, cluster_id, budget, detector=detector)
    return ctrl, cluster_id, sched


def vip(i=1):
    return VipKey(1000, 0x0A0000FF + i)


def steering_routes(cluster):
    """The offload steering routes visible on each member, as sets."""
    out = []
    for member in cluster.all_members():
        out.append({(v, p) for v, p, a in member.gateway.tables.routing.items()
                    if a.target == "offload"})
    return out


class TestChipBudget:
    def test_capacity_honours_explicit_budget(self):
        _ctrl, _cid, sched = build(sram=8, tcam=64)
        cap = sched.budget.capacity()
        assert cap.sram_words == 8 and cap.tcam_slices == 64

    def test_compiler_free_caps_without_budget(self):
        cluster = GatewayCluster("A", [("gw0", XgwH(1))])
        budget = ChipBudget(cluster, reserve_fraction=0.25)
        free = budget._compiler_free()
        cap = budget.capacity()
        assert cap.sram_words == int(free.sram_words * 0.75)
        assert cap.tcam_slices == int(free.tcam_slices * 0.75)

    def test_charge_and_release_roundtrip(self):
        _ctrl, _cid, sched = build()
        fp = entry_footprint()
        before = sched.budget.headroom()
        sched.budget.charge(fp)
        assert sched.budget.headroom().sram_words == before.sram_words - 1
        sched.budget.release(fp)
        assert sched.budget.headroom().sram_words == before.sram_words

    def test_charge_past_capacity_raises(self):
        _ctrl, _cid, sched = build(sram=1)
        sched.budget.charge(entry_footprint())
        with pytest.raises(ValueError):
            sched.budget.charge(entry_footprint())

    def test_validation(self):
        with pytest.raises(ValueError):
            ChipBudget(None, reserve_fraction=1.0)


class TestMigrations:
    def test_promote_installs_on_every_member(self):
        ctrl, cid, sched = build()
        assert sched.promote(vip(), 5000.0, now=1.0)
        assert sched.is_offloaded(vip())
        for routes in steering_routes(ctrl.clusters[cid]):
            assert (1000, vip().prefix) in routes
        assert ctrl.consistency_check(cid) == []

    def test_demote_withdraws_everywhere(self):
        ctrl, cid, sched = build()
        sched.promote(vip(), 5000.0, now=1.0)
        assert sched.demote(vip(), 10.0, now=2.0)
        for routes in steering_routes(ctrl.clusters[cid]):
            assert routes == set()
        assert not sched.is_offloaded(vip())
        assert sched.budget.used == MemoryFootprint.zero()

    def test_promote_idempotent(self):
        _ctrl, _cid, sched = build()
        sched.promote(vip(), 5000.0, now=1.0)
        assert sched.promote(vip(), 6000.0, now=2.0)
        assert sched.counters["promotions"] == 1

    def test_demote_unknown_is_noop(self):
        _ctrl, _cid, sched = build()
        assert sched.demote(vip(9), 0.0, now=1.0)
        assert sched.counters["demotions"] == 0


class TestCapacityAwareAdmission:
    def test_never_overcommits(self):
        """With room for 2 entries, a third hotter VIP evicts the
        coldest; the budget never exceeds capacity."""
        _ctrl, _cid, sched = build(sram=2)
        sched.promote(vip(1), 1000.0, now=1.0)
        sched.promote(vip(2), 2000.0, now=1.0)
        assert sched.promote(vip(3), 3000.0, now=2.0)
        assert sched.offloaded_keys() == [vip(2), vip(3)]
        assert sched.budget.used.sram_words <= sched.budget.capacity().sram_words

    def test_eviction_is_coldest_first(self):
        _ctrl, _cid, sched = build(sram=3)
        sched.promote(vip(1), 500.0, now=1.0)
        sched.promote(vip(2), 100.0, now=1.0)  # coldest
        sched.promote(vip(3), 900.0, now=1.0)
        sched.promote(vip(4), 800.0, now=2.0)
        assert vip(2) not in sched.offloaded
        assert vip(1) in sched.offloaded

    def test_denied_when_nothing_colder(self):
        _ctrl, _cid, sched = build(sram=1)
        sched.promote(vip(1), 9000.0, now=1.0)
        assert not sched.promote(vip(2), 50.0, now=2.0)
        assert sched.counters["promotions_denied"] == 1
        assert sched.offloaded_keys() == [vip(1)]
        assert any("deny-promote" in line and "no-headroom" in line
                   for line in sched.decision_log)

    def test_eviction_resets_detector_state(self):
        ctrl, cid, sched = build(sram=1, theta_hi=100.0, theta_lo=40.0,
                                 promote_after=1, ewma_alpha=1.0)
        det = sched.detector
        det.observe({vip(1): 500.0})
        sched.promote(vip(1), 500.0, now=1.0)
        det.observe({vip(2): 900.0})
        sched.promote(vip(2), 900.0, now=2.0)  # evicts vip(1)
        assert det.state_of(vip(1)) is FlowState.COLD


class TestCrashSafety:
    def arm(self, ctrl, *specs, seed=11):
        ctrl.journal = Journal()
        plan = FaultPlan(seed=seed, specs=list(specs))
        FaultInjector(plan).arm_controller(ctrl)
        return plan

    def test_controller_crash_mid_promote_leaves_zero_partial_state(self):
        ctrl, cid, sched = build()
        # The injector counts from arming: the promote txn is mutation 0.
        plan = self.arm(ctrl, FaultSpec(FaultKind.CONTROLLER_CRASH,
                                        at_mutations=(0,)))
        assert not sched.promote(vip(), 5000.0, now=1.0)
        assert plan.injected(FaultKind.CONTROLLER_CRASH) == 1
        # Zero partial state: nothing offloaded, no budget charged, no
        # steering route on any member (the crash hit before prepare).
        assert sched.offloaded == {}
        assert sched.budget.used == MemoryFootprint.zero()
        for routes in steering_routes(ctrl.clusters[cid]):
            assert routes == set()
        assert sched.counters["migrations_aborted"] == 1
        assert any("abort-promote" in line and "ControllerCrash" in line
                   for line in sched.decision_log)

    def test_recovery_after_crash_converges(self):
        """Recovery replays the journal; the uncommitted migration txn
        is discarded (all-or-nothing), the cluster converges with zero
        partial routes, and the migration can simply be retried."""
        ctrl, cid, sched = build()
        self.arm(ctrl, FaultSpec(FaultKind.CONTROLLER_CRASH, at_mutations=(0,)))
        assert not sched.promote(vip(), 5000.0, now=1.0)

        recovered = Controller(
            TableSplitter(ClusterCapacity(routes=50, vms=500, traffic_bps=1e13)),
            VniSteeredBalancer(),
            clusters=ctrl.clusters,
        )
        recovered.recover(ctrl.journal)
        assert recovered.consistency_check(cid) == []
        # The crashed txn never committed, so no member carries it.
        for routes in steering_routes(recovered.clusters[cid]):
            assert routes == set()
        # The detector will renominate next interval; the retried
        # migration goes through cleanly on the recovered controller.
        budget = ChipBudget(recovered.clusters[cid], sram_budget_words=8,
                            tcam_budget_slices=64)
        retry = OffloadScheduler(recovered, cid, budget)
        assert retry.promote(vip(), 5000.0, now=2.0)
        assert recovered.consistency_check(cid) == []

    def test_crash_mid_demote_keeps_entry_consistent(self):
        ctrl, cid, sched = build()
        sched.promote(vip(), 5000.0, now=1.0)
        # Arm after the promote: the demote txn is mutation 0.
        self.arm(ctrl, FaultSpec(FaultKind.CONTROLLER_CRASH, at_mutations=(0,)))
        assert not sched.demote(vip(), 10.0, now=2.0)
        # The entry stays offloaded and installed everywhere — no member
        # saw a partial withdraw.
        assert sched.is_offloaded(vip())
        for routes in steering_routes(ctrl.clusters[cid]):
            assert (1000, vip().prefix) in routes


class TestDecisionLog:
    def run_sequence(self):
        _ctrl, _cid, sched = build(sram=2)
        sched.promote(vip(1), 1000.0, now=1.0)
        sched.promote(vip(2), 2000.0, now=1.0)
        sched.promote(vip(3), 3000.0, now=2.0)
        sched.demote(vip(3), 20.0, now=3.0, reason="cold")
        return sched.decision_log_text()

    def test_byte_identical_across_runs(self):
        assert self.run_sequence() == self.run_sequence()

    def test_log_lines_are_canonical(self):
        text = self.run_sequence()
        for line in text.splitlines():
            assert line.startswith("t=")
            assert " sram=" in line and " tcam=" in line

    def test_telemetry_series_recorded(self):
        _ctrl, _cid, sched = build()
        sched.promote(vip(), 5000.0, now=1.0)
        sched.apply([], now=2.0)
        for name in ("offloaded-entries", "offloaded-pps",
                     "chip-sram-occupancy", "chip-tcam-occupancy"):
            assert name in sched.series
        assert sched.series["offloaded-entries"].value_at(2.0) == 1.0
