"""Tests for replaying exported pcaps through a gateway."""

import pytest

from repro.core.sailfish import RegionSpec, Sailfish
from repro.dataplane.gateway_logic import ForwardAction
from repro.workloads.pcap import export_sample, replay_pcap
from repro.workloads.traffic import RegionTrafficGenerator


class TestReplay:
    def test_roundtrip_through_region(self, tmp_path):
        """Export a sample, replay it, and get the same outcomes."""
        region = Sailfish.build(RegionSpec.small(), seed=5)
        generator = RegionTrafficGenerator(region.topology, seed=5,
                                           internet_share=0.0)
        samples = list(generator.packets(60))
        path = tmp_path / "traffic.pcap"
        export_sample(str(path), iter(samples))

        direct = [region.forward(s.packet).action for s in samples]

        replay_region = Sailfish.build(RegionSpec.small(), seed=5)
        replayed = []
        forwarded, skipped = replay_pcap(
            str(path), lambda p: replayed.append(replay_region.forward(p).action)
        )
        assert forwarded == 60 and skipped == 0
        assert replayed == direct
        assert all(a is not ForwardAction.DROP for a in replayed)

    def test_undecodable_frames_skipped(self, tmp_path):
        import struct

        path = tmp_path / "garbage.pcap"
        with open(path, "wb") as handle:
            handle.write(struct.pack("!IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 1))
            junk = b"\xff" * 20
            handle.write(struct.pack("!IIII", 0, 0, len(junk), len(junk)))
            handle.write(junk)
        forwarded, skipped = replay_pcap(str(path), lambda p: None)
        assert forwarded == 0 and skipped == 1
