"""Tests for the workload generators."""

import pytest

from repro.net.flow import FlowKey
from repro.telemetry.stats import top_n_share
from repro.workloads.datasets import (
    CPU_VS_PORT_TREND,
    growth_factors,
    moores_law_factor,
    series,
    years,
)
from repro.workloads.flows import (
    diurnal_multiplier,
    festival_series,
    heavy_hitter_flows,
    split_flows_over_gateways,
)
from repro.workloads.topology import BASE_VNI, generate_topology
from repro.workloads.traffic import RegionTrafficGenerator, inner_flow
from repro.workloads.updates import (
    UpdateKind,
    entry_count_series,
    generate_update_events,
    sudden_events,
    update_rate_per_day,
)


class TestTopology:
    def test_deterministic(self):
        a = generate_topology(10, 100, seed=3)
        b = generate_topology(10, 100, seed=3)
        assert a.vnis() == b.vnis()
        assert a.total_vms == b.total_vms

    def test_vni_numbering(self):
        topo = generate_topology(5, 50, seed=1)
        assert topo.vnis() == [BASE_VNI + i for i in range(5)]

    def test_zipf_vm_skew(self):
        topo = generate_topology(20, 2000, seed=1, vm_size_alpha=1.4)
        sizes = sorted((len(v.vms) for v in topo.vpcs.values()), reverse=True)
        # Top tenant clearly dominates.
        assert sizes[0] > 5 * sizes[-1]

    def test_vms_inside_subnets(self):
        topo = generate_topology(10, 200, seed=2)
        for vpc in topo.vpcs.values():
            for vm in vpc.vms:
                assert any(
                    s.version == vm.version and s.contains_ip(vm.ip)
                    for s in vpc.subnets
                )

    def test_route_entries_include_local_peer_and_snat(self):
        topo = generate_topology(10, 100, seed=3, peering_fraction=1.0)
        vni = topo.vnis()[0]
        entries = list(topo.route_entries(vni))
        scopes = {e[2].scope.value for e in entries}
        assert "local" in scopes and "service" in scopes
        assert any(s == "peer" for s in scopes)

    def test_peering_symmetric(self):
        topo = generate_topology(10, 100, seed=5, peering_fraction=1.0)
        for vni, vpc in topo.vpcs.items():
            for peer in vpc.peers:
                assert vni in topo.vpcs[peer].peers

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_topology(0, 10, seed=1)


class TestHeavyHitters:
    def test_total_preserved(self):
        flows = heavy_hitter_flows(100, 1e6, seed=1)
        assert sum(f.pps for f in flows) == pytest.approx(1e6)

    def test_top_flows_dominate(self):
        """Fig. 7: top-1/top-2 flows carry the bulk of an overload scene."""
        flows = heavy_hitter_flows(100, 1e6, seed=1, alpha=1.8)
        rates = [f.pps for f in flows]
        assert top_n_share(rates, 2) > 0.5

    def test_deterministic(self):
        a = heavy_hitter_flows(10, 1e3, seed=9)
        b = heavy_hitter_flows(10, 1e3, seed=9)
        assert [f.flow for f in a] == [f.flow for f in b]

    def test_vni_pool_respected(self):
        flows = heavy_hitter_flows(50, 1e3, seed=1, vnis=[7, 8])
        assert {f.vni for f in flows} <= {7, 8}

    def test_validation(self):
        with pytest.raises(ValueError):
            heavy_hitter_flows(0, 1e3, seed=1)

    def test_split_over_gateways_balances_aggregate(self):
        """Fig. 6: per-gateway load is balanced even with heavy flows."""
        from repro.telemetry.stats import jains_fairness

        flows = heavy_hitter_flows(10_000, 1e6, seed=2, alpha=0.6)
        buckets = split_flows_over_gateways(flows, 15)
        loads = [sum(f.pps for f in bucket) for bucket in buckets]
        assert jains_fairness(loads) > 0.9

    def test_split_keeps_flows_whole(self):
        flows = heavy_hitter_flows(50, 1e3, seed=2)
        buckets = split_flows_over_gateways(flows, 4)
        assert sum(len(b) for b in buckets) == 50


class TestFestivalSeries:
    def test_diurnal_range(self):
        values = [diurnal_multiplier(h) for h in range(24)]
        assert max(values) == pytest.approx(1.0, abs=0.01)
        assert min(values) >= 0.54

    def test_peak_at_21(self):
        assert diurnal_multiplier(21.0) == pytest.approx(1.0)

    def test_bad_hour(self):
        with pytest.raises(ValueError):
            diurnal_multiplier(24.0)

    def test_festival_boost(self):
        samples = festival_series(7, 24, 1e6, seed=1, festival_day=3,
                                  festival_boost=3.0, jitter=0.0)
        by_day = {}
        for t, pps in samples:
            by_day.setdefault(int(t), []).append(pps)
        assert max(by_day[3]) > 2.5 * max(by_day[0])

    def test_sample_count(self):
        assert len(festival_series(2, 10, 1.0, seed=1)) == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            festival_series(0, 10, 1.0, seed=1)


class TestTrafficGenerator:
    def test_eighty_twenty_popularity(self):
        topo = generate_topology(10, 400, seed=4)
        gen = RegionTrafficGenerator(topo, seed=4, hot_fraction=0.05, hot_share=0.95)
        hot_hits = sum(1 for _ in range(2000) if gen.is_hot(gen.sample_vm()))
        assert hot_hits / 2000 > 0.85

    def test_sample_packet_fields(self):
        topo = generate_topology(10, 100, seed=4)
        gen = RegionTrafficGenerator(topo, seed=4)
        sample = gen.sample_packet()
        assert sample.packet.is_vxlan
        assert sample.packet.vni == sample.src_vm.vni
        key = inner_flow(sample)
        assert isinstance(key, FlowKey)

    def test_internet_share(self):
        topo = generate_topology(10, 100, seed=4)
        gen = RegionTrafficGenerator(topo, seed=4, internet_share=1.0)
        sample = gen.sample_packet()
        assert sample.dst_vm is None and sample.route == "VM-Internet"

    def test_routes_labelled(self):
        topo = generate_topology(10, 200, seed=4, peering_fraction=1.0)
        gen = RegionTrafficGenerator(topo, seed=4, internet_share=0.0)
        routes = {gen.sample_packet().route for _ in range(300)}
        assert "VM-VM (same VPC)" in routes

    def test_validation(self):
        topo = generate_topology(2, 10, seed=1)
        with pytest.raises(ValueError):
            RegionTrafficGenerator(topo, seed=1, hot_fraction=0.0)


class TestUpdates:
    def test_deterministic(self):
        a = generate_update_events(30, seed=1)
        b = generate_update_events(30, seed=1)
        assert a == b

    def test_sorted_by_time(self):
        events = generate_update_events(30, seed=2)
        times = [e.time_days for e in events]
        assert times == sorted(times)

    def test_sudden_events_rare_but_large(self):
        """Fig. 23: regular updates are slow; sudden jumps are big."""
        events = generate_update_events(60, seed=3)
        sudden = sudden_events(events)
        regular = [e for e in events if e.kind is UpdateKind.REGULAR]
        assert len(sudden) < len(regular) / 10
        if sudden:
            mean_sudden = sum(e.delta_entries for e in sudden) / len(sudden)
            mean_regular = sum(abs(e.delta_entries) for e in regular) / len(regular)
            assert mean_sudden > 50 * mean_regular

    def test_entry_count_series_integrates(self):
        events = generate_update_events(10, seed=4)
        ts = entry_count_series(events, initial_entries=1000)
        assert ts.values[0] == 1000
        expected = 1000 + sum(e.delta_entries for e in events)
        assert ts.values[-1] == max(0, expected)

    def test_update_rate(self):
        events = generate_update_events(10, seed=5, regular_per_day=24.0)
        rate = update_rate_per_day(events, 10)
        assert 10 < rate < 50

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_update_events(0, seed=1)
        with pytest.raises(ValueError):
            update_rate_per_day([], 0)


class TestDatasets:
    def test_growth_factors_match_paper(self):
        """§2.3: port 40x, multi-core ~4x, single-core ~2.5x."""
        single, multi, port = growth_factors()
        assert port == pytest.approx(40.0)
        assert 3.5 <= multi <= 4.5
        assert 2.3 <= single <= 2.7

    def test_series_access(self):
        assert len(series("single")) == len(years()) == len(CPU_VS_PORT_TREND)
        with pytest.raises(ValueError):
            series("nonsense")

    def test_port_outpaces_moore(self):
        """Traffic growth beyond Moore's law; single-core below it."""
        single, _multi, port = growth_factors()
        moore = moores_law_factor(10)  # 2^5 = 32 over the decade
        assert port > moore > single

    def test_moore_validation(self):
        with pytest.raises(ValueError):
            moores_law_factor(-1)
