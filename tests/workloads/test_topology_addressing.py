"""Address-plan properties of generated topologies."""

import pytest

from repro.workloads.topology import generate_topology


class TestSubnetDisjointness:
    def test_subnets_unique_within_region(self):
        topo = generate_topology(30, 300, seed=9)
        seen = set()
        for vpc in topo.vpcs.values():
            for subnet in vpc.subnets:
                key = (subnet.version, subnet.network, subnet.prefix_len)
                assert key not in seen, f"duplicate subnet {subnet}"
                seen.add(key)

    def test_regions_with_bases_disjoint(self):
        a = generate_topology(20, 100, seed=1, subnet_base_index=0)
        b = generate_topology(20, 100, seed=1, subnet_base_index=4096)
        subnets_a = {
            (s.version, s.network) for v in a.vpcs.values() for s in v.subnets
        }
        subnets_b = {
            (s.version, s.network) for v in b.vpcs.values() for s in v.subnets
        }
        assert subnets_a.isdisjoint(subnets_b)

    def test_base_offset_preserves_structure(self):
        plain = generate_topology(10, 100, seed=2)
        offset = generate_topology(10, 100, seed=2, subnet_base_index=1024)
        assert plain.vnis() == offset.vnis()
        for vni in plain.vnis():
            assert len(plain.vpcs[vni].vms) == len(offset.vpcs[vni].vms)
            assert plain.vpcs[vni].peers == offset.vpcs[vni].peers


class TestDualStack:
    def test_ipv6_fraction_zero_all_v4(self):
        topo = generate_topology(20, 200, seed=3, ipv6_fraction=0.0)
        for vpc in topo.vpcs.values():
            assert all(s.version == 4 for s in vpc.subnets)
            assert all(vm.version == 4 for vm in vpc.vms)

    def test_ipv6_fraction_produces_v6_vms(self):
        topo = generate_topology(30, 600, seed=3, ipv6_fraction=0.6)
        versions = {vm.version for vpc in topo.vpcs.values() for vm in vpc.vms}
        assert versions == {4, 6}

    def test_v6_routes_have_v6_internet_exit(self):
        topo = generate_topology(10, 100, seed=4, ipv6_fraction=0.5)
        for vni in topo.vnis():
            entries = list(topo.route_entries(vni))
            v6_defaults = [
                (p, a) for _v, p, a in entries
                if p.version == 6 and p.prefix_len == 0
            ]
            assert len(v6_defaults) == 1
            assert v6_defaults[0][1].scope.value == "internet"

    def test_first_subnet_always_v4(self):
        """VPCs always keep at least one v4 subnet (every tenant needs a
        v4 presence for SNAT)."""
        topo = generate_topology(30, 100, seed=5, ipv6_fraction=0.9)
        for vpc in topo.vpcs.values():
            assert vpc.subnets[0].version == 4
