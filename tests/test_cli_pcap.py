"""Tests for the CLI and the pcap exporter."""

import io

import pytest

from repro.cli import main
from repro.net.packet import Packet
from repro.workloads.pcap import read_pcap, write_pcap
from repro.workloads.topology import generate_topology
from repro.workloads.traffic import RegionTrafficGenerator, build_vxlan_packet


class TestPcap:
    def test_roundtrip(self):
        packets = [build_vxlan_packet(7, 1, 2, payload=b"x" * i) for i in range(5)]
        buf = io.BytesIO()
        count = write_pcap(buf, [(i * 0.5, p) for i, p in enumerate(packets)])
        assert count == 5
        buf.seek(0)
        records = read_pcap(buf)
        assert len(records) == 5
        for i, ((ts, raw), original) in enumerate(zip(records, packets)):
            assert ts == pytest.approx(i * 0.5, abs=1e-6)
            assert raw == original.to_bytes()
            # Frames re-parse into equal packets.
            assert Packet.from_bytes(raw).to_bytes() == raw

    def test_snaplen_truncates(self):
        buf = io.BytesIO()
        write_pcap(buf, [(0.0, build_vxlan_packet(7, 1, 2, payload=b"y" * 200))],
                   snaplen=60)
        buf.seek(0)
        (_ts, raw), = read_pcap(buf)
        assert len(raw) == 60

    def test_read_rejects_garbage(self):
        with pytest.raises(ValueError):
            read_pcap(io.BytesIO(b"\x00" * 24))
        with pytest.raises(ValueError):
            read_pcap(io.BytesIO(b"\x00" * 3))

    def test_export_sample(self, tmp_path):
        from repro.workloads.pcap import export_sample

        topology = generate_topology(num_vpcs=4, total_vms=16, seed=1)
        generator = RegionTrafficGenerator(topology, seed=1)
        path = tmp_path / "out.pcap"
        count = export_sample(str(path), generator.packets(10))
        assert count == 10
        with open(path, "rb") as handle:
            assert len(read_pcap(handle)) == 10


class TestCli:
    def test_compression(self, capsys):
        assert main(["compression"]) == 0
        out = capsys.readouterr().out
        assert "a+b+c+d+e" in out and "Table 4" in out

    def test_compression_ipv6_flag(self, capsys):
        assert main(["compression", "--ipv6", "1.0"]) == 0
        assert "100% IPv6" in capsys.readouterr().out

    def test_region(self, capsys):
        assert main(["region", "--packets", "100", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "delivered" in out and "software share" in out

    def test_trace(self, capsys):
        assert main(["trace", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "balancer:region" in out and "outcome:" in out

    def test_economics(self, capsys):
        assert main(["economics"]) == 0
        out = capsys.readouterr().out
        assert "CapEx reduction" in out

    def test_export_pcap(self, tmp_path, capsys):
        path = tmp_path / "traffic.pcap"
        assert main(["export-pcap", str(path), "--packets", "12"]) == 0
        with open(path, "rb") as handle:
            assert len(read_pcap(handle)) == 12

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])
