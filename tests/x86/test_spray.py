"""Tests for the packet-spraying (pipeline model) alternative of §2.3."""

import pytest

from repro.net.flow import FlowKey
from repro.x86.gateway import XgwX86
from repro.x86.spray import PacketSprayModel, compare_models


def flow(i=0):
    return FlowKey(0x0A000000 + i, 0x0B000000, 6, 1000 + i, 80)


class TestSprayModel:
    def test_effective_capacity_taxed(self):
        model = PacketSprayModel(num_cores=10, core_pps=1000.0,
                                 transfer_penalty=0.3)
        assert model.effective_capacity_pps == pytest.approx(7000.0)

    def test_no_hotspots(self):
        """An elephant that would pin one RTC core is absorbed."""
        model = PacketSprayModel(num_cores=8, core_pps=1000.0,
                                 transfer_penalty=0.3)
        interval = model.serve([(flow(0), 5000.0)])
        assert interval.dropped_pps == 0.0
        assert interval.mean_utilization < 1.0

    def test_drops_only_past_taxed_capacity(self):
        model = PacketSprayModel(num_cores=8, core_pps=1000.0,
                                 transfer_penalty=0.25)
        interval = model.serve([(flow(0), 7000.0)])
        assert interval.dropped_pps == pytest.approx(1000.0)

    def test_reordering_grows_with_flow_rate(self):
        model = PacketSprayModel(num_cores=8, core_pps=1000.0)
        slow = model.reorder_probability(10.0)
        fast = model.reorder_probability(5000.0)
        assert 0.0 <= slow < fast <= 0.5

    def test_zero_rate_no_reorder(self):
        model = PacketSprayModel()
        assert model.reorder_probability(0.0) == 0.0

    def test_single_core_never_reorders(self):
        model = PacketSprayModel(num_cores=1, core_pps=1000.0)
        assert model.reorder_probability(900.0) == 0.0

    def test_reorder_probability_saturates_below_half(self):
        """flow_pps -> infinity: the overtake term saturates at 0.5 and
        the different-core factor keeps the product strictly below it."""
        model = PacketSprayModel(num_cores=8, core_pps=1000.0)
        cap = (model.num_cores - 1) / model.num_cores * 0.5
        previous = 0.0
        for pps in (1e3, 1e6, 1e9, 1e12):
            p = model.reorder_probability(pps)
            assert previous <= p < 0.5
            previous = p
        assert model.reorder_probability(1e15) == pytest.approx(cap, rel=1e-6)

    def test_negative_rate_treated_as_idle(self):
        assert PacketSprayModel().reorder_probability(-5.0) == 0.0

    def test_interval_reordering_weighted_by_share(self):
        model = PacketSprayModel(num_cores=8, core_pps=1000.0)
        elephants = model.serve([(flow(0), 4000.0)])
        mice = model.serve([(flow(i), 4.0) for i in range(1000)])
        assert elephants.reordered_fraction > mice.reordered_fraction

    def test_validation(self):
        with pytest.raises(ValueError):
            PacketSprayModel(num_cores=0)
        with pytest.raises(ValueError):
            PacketSprayModel(transfer_penalty=1.0)


class TestModelComparison:
    def test_the_2_3_tradeoff(self):
        """RTC drops on the hot core; spraying reorders and taxes capacity."""
        gateway = XgwX86(gateway_ip=1, num_cores=8, core_pps=1000.0)
        spray = PacketSprayModel(num_cores=8, core_pps=1000.0)
        # One elephant over a core's capacity + light mice.
        flows = [(flow(0), 2000.0)] + [(flow(i), 10.0) for i in range(1, 40)]
        result = compare_models(flows, gateway, spray)
        # Run-to-completion: hot core drops, but perfect ordering.
        assert result["rtc_loss"] > 0.0
        assert result["rtc_max_core_utilization"] == 1.0
        assert result["rtc_reordered"] == 0.0
        # Spraying: no loss, but reordering and a capacity tax.
        assert result["spray_loss"] == 0.0
        assert result["spray_reordered"] > 0.01
        assert result["spray_capacity_tax"] > 0.0

    def test_spray_loses_at_high_aggregate_load(self):
        """Near full load the transfer tax makes spraying drop packets
        that RTC would have carried (the paper's reason to keep RTC)."""
        gateway = XgwX86(gateway_ip=1, num_cores=8, core_pps=1000.0)
        spray = PacketSprayModel(num_cores=8, core_pps=1000.0,
                                 transfer_penalty=0.3)
        # Perfectly balanced mice at 80% of raw capacity.
        flows = [(flow(i), 8.0) for i in range(800)]
        result = compare_models(flows, gateway, spray)
        assert result["rtc_loss"] < result["spray_loss"] or \
            result["spray_loss"] > 0.0
