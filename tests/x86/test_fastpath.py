"""Tests for the XGW-x86 fast path: batched forwarding, cache telemetry
and the binary-search line-rate crossover."""

import ipaddress

import pytest

from repro.dataplane.gateway_logic import ForwardAction, GatewayTables
from repro.net.addr import Prefix
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import RouteAction, Scope
from repro.workloads.traffic import build_vxlan_packet
from repro.x86.gateway import XgwX86


def ip(text):
    return int(ipaddress.ip_address(text))


VNI = 100


def make_tables(hosts=8):
    t = GatewayTables()
    t.routing.insert(VNI, Prefix.parse("192.168.10.0/24"), RouteAction(Scope.LOCAL))
    for h in range(1, hosts + 1):
        t.vm_nc.insert(VNI, ip(f"192.168.10.{h}"), 4, NcBinding(ip(f"10.1.1.{h}")))
    return t


def burst(n=32, hosts=8):
    return [build_vxlan_packet(vni=VNI, src_ip=ip("192.168.10.100"),
                               dst_ip=ip(f"192.168.10.{1 + i % hosts}"))
            for i in range(n)]


class TestForwardBatch:
    def test_matches_per_packet_forwarding(self):
        batch_gw = XgwX86(gateway_ip=0x0A0000FD, tables=make_tables())
        loop_gw = XgwX86(gateway_ip=0x0A0000FD, tables=make_tables())
        packets = burst()
        batched = batch_gw.forward_batch(packets, now=1.0)
        looped = [loop_gw.forward(p, now=1.0) for p in packets]
        assert len(batched) == len(looped) == len(packets)
        for got, want in zip(batched, looped):
            assert got.action is want.action
            assert got.packet.to_bytes() == want.packet.to_bytes()
        assert batch_gw.counters.snapshot() == loop_gw.counters.snapshot()

    def test_uncached_gateway_still_batches(self):
        gw = XgwX86(gateway_ip=0x0A0000FD, tables=make_tables(), cache_entries=0)
        assert gw.flow_cache is None
        results = gw.forward_batch(burst(8))
        assert all(r.action is ForwardAction.DELIVER_NC for r in results)
        assert gw.counters["rx_packets"] == 8

    def test_empty_batch(self):
        gw = XgwX86(gateway_ip=0x0A0000FD, tables=make_tables())
        assert gw.forward_batch([]) == []
        assert gw.counters["rx_packets"] == 0


class TestCacheTelemetry:
    # The columnar path bypasses the flow cache entirely, so these
    # gateways pin the flow-cache batch loop with columnar=False.
    def test_counters_flow_into_counterset(self):
        gw = XgwX86(gateway_ip=0x0A0000FD, tables=make_tables(hosts=4),
                    columnar=False)
        gw.forward_batch(burst(12, hosts=4))
        snap = gw.publish_cache_counters()
        assert snap["flowcache_misses"] == 4
        assert snap["flowcache_hits"] == 8
        assert gw.counters["flowcache_hits"] == 8
        assert gw.counters["flowcache_misses"] == 4

    def test_publish_is_idempotent_on_deltas(self):
        gw = XgwX86(gateway_ip=0x0A0000FD, tables=make_tables(hosts=4),
                    columnar=False)
        gw.forward_batch(burst(12, hosts=4))
        gw.publish_cache_counters()
        gw.publish_cache_counters()  # no new traffic: no double counting
        assert gw.counters["flowcache_hits"] == 8
        gw.forward_batch(burst(4, hosts=4))
        gw.publish_cache_counters()
        assert gw.counters["flowcache_hits"] == 12

    def test_disabled_cache_publishes_nothing(self):
        gw = XgwX86(gateway_ip=0x0A0000FD, cache_entries=0)
        assert gw.publish_cache_counters() == {}


class TestBatchCounterConservation:
    """Regression for batch-path counter attribution: a mixed
    accept/drop burst must keep the CounterConservation identities
    (``rx_packets == Σ action_*``, ``Σ drop_* == action_drop``) on every
    batch path — columnar, flow-cache and uncached — with drop reasons
    now aggregated into one per-reason flush."""

    @staticmethod
    def mixed_burst():
        packets = burst(10, hosts=4)
        # no-vm: LOCAL route, host outside the installed bindings.
        packets.append(build_vxlan_packet(vni=VNI, src_ip=ip("192.168.10.100"),
                                          dst_ip=ip("192.168.10.200")))
        # no-route: VNI with no routing entries at all.
        packets.append(build_vxlan_packet(vni=VNI + 1, src_ip=ip("192.168.10.100"),
                                          dst_ip=ip("192.168.10.1")))
        return packets

    @staticmethod
    def assert_conserved(gw):
        counts = gw.counters.snapshot()
        actions = sum(v for k, v in counts.items() if k.startswith("action_"))
        drops = sum(v for k, v in counts.items() if k.startswith("drop_"))
        assert counts["rx_packets"] == actions
        assert drops == counts.get("action_drop", 0)

    @pytest.mark.parametrize("kwargs", [
        {},                                       # columnar path
        {"columnar": False},                      # flow-cache batch path
        {"columnar": False, "cache_entries": 0},  # uncached batch path
    ])
    def test_mixed_burst_conserves_counters(self, kwargs):
        gw = XgwX86(gateway_ip=0x0A0000FD, tables=make_tables(hosts=4), **kwargs)
        results = gw.forward_batch(self.mixed_burst() * 3)
        seen = {r.detail for r in results if r.action is ForwardAction.DROP}
        assert {"no-vm", "no-route"} <= seen
        assert any(r.action is ForwardAction.DELIVER_NC for r in results)
        self.assert_conserved(gw)
        assert gw.counters["drop_no_vm"] == 3
        assert gw.counters["drop_no_route"] == 3


class TestMinLineRatePacket:
    @staticmethod
    def linear_scan(gw):
        """The pre-optimisation reference implementation."""
        size = 64
        while gw.nic.max_pps(size) > gw.total_capacity_pps:
            size += 1
        return size

    @pytest.mark.parametrize("cores,core_pps,nic_bps", [
        (32, 1.8e9 / 32 * 0.444, 100e9),  # default-ish calibration
        (32, 25e6 / 32, 100e9),
        (8, 1e6, 10e9),
        (64, 3e6, 400e9),
        (4, 100e6, 1e9),                  # CPU never the bottleneck
    ])
    def test_binary_search_matches_linear_scan(self, cores, core_pps, nic_bps):
        gw = XgwX86(gateway_ip=1, num_cores=cores, core_pps=core_pps,
                    nic_bps=nic_bps)
        assert gw.min_line_rate_packet() == self.linear_scan(gw)

    def test_default_calibration_near_512(self):
        gw = XgwX86(gateway_ip=1)
        size = gw.min_line_rate_packet()
        # Paper: "line rate with packets larger than 512B".
        assert 256 <= size <= 1024
        assert gw.nic.max_pps(size) <= gw.total_capacity_pps
        assert gw.nic.max_pps(size - 1) > gw.total_capacity_pps
