"""Tests for the XGW-x86 simulator: NIC/RSS, cores, gateway box."""

import pytest

from repro.net.flow import FlowKey
from repro.x86.cpu import Core, CpuComplex, DEFAULT_CORE_PPS
from repro.x86.gateway import XgwX86
from repro.x86.nic import Nic


def flow(i=0):
    return FlowKey(0x0A000000 + i, 0x0B000000 + i, 6, 1000 + i, 80)


class TestNic:
    def test_queue_stable(self):
        nic = Nic(bandwidth_bps=100e9, num_queues=32)
        f = flow()
        assert nic.queue_for(f) == nic.queue_for(f)
        assert 0 <= nic.queue_for(f) < 32

    def test_max_pps(self):
        nic = Nic(bandwidth_bps=100e9, num_queues=1)
        # 100G at (500+20)B -> ~24 Mpps.
        assert nic.max_pps(500) == pytest.approx(100e9 / (8 * 520))

    def test_validation(self):
        with pytest.raises(ValueError):
            Nic(bandwidth_bps=0, num_queues=1)
        with pytest.raises(ValueError):
            Nic(bandwidth_bps=1, num_queues=0)
        with pytest.raises(ValueError):
            Nic(bandwidth_bps=1, num_queues=1).max_pps(0)


class TestCore:
    def test_underload(self):
        core = Core(0, capacity_pps=100.0)
        interval = core.serve([(flow(), 60.0)])
        assert interval.processed_pps == 60.0
        assert interval.dropped_pps == 0.0
        assert interval.utilization == pytest.approx(0.6)

    def test_overload_drops_excess(self):
        core = Core(0, capacity_pps=100.0)
        interval = core.serve([(flow(0), 80.0), (flow(1), 50.0)])
        assert interval.processed_pps == 100.0
        assert interval.dropped_pps == 30.0
        assert interval.utilization == 1.0

    def test_idle(self):
        interval = Core(0, capacity_pps=100.0).serve([])
        assert interval.utilization == 0.0

    def test_flow_share(self):
        interval = Core(0, capacity_pps=100.0).serve([(flow(0), 75.0), (flow(1), 25.0)])
        assert interval.flow_share[flow(0)] == pytest.approx(0.75)


class TestCpuComplex:
    def test_capacity(self):
        cpu = CpuComplex(num_cores=32)
        assert cpu.total_capacity_pps == pytest.approx(32 * DEFAULT_CORE_PPS)
        assert len(cpu) == 32

    def test_serve_queues_pinning(self):
        cpu = CpuComplex(num_cores=4, core_pps=100.0)
        results = cpu.serve_queues({0: [(flow(), 150.0)]})
        assert results[0].dropped_pps == 50.0
        assert all(r.offered_pps == 0 for r in results[1:])

    def test_validation(self):
        with pytest.raises(ValueError):
            CpuComplex(num_cores=0)


class TestXgwX86Model:
    def test_fig18_pps(self):
        """Fig. 18(b): 25 Mpps."""
        gw = XgwX86(gateway_ip=1)
        assert gw.total_capacity_pps == pytest.approx(25e6)

    def test_fig18_line_rate_boundary(self):
        """Line rate only for packets larger than ~512B."""
        gw = XgwX86(gateway_ip=1)
        assert 400 <= gw.min_line_rate_packet() <= 512

    def test_max_pps_min_of_nic_cpu(self):
        gw = XgwX86(gateway_ip=1)
        assert gw.max_pps(64) == pytest.approx(25e6)  # CPU-bound
        assert gw.max_pps(1500) == pytest.approx(gw.nic.max_pps(1500))  # NIC-bound

    def test_heavy_hitter_overloads_one_core(self):
        """The paper's core story: one elephant flow pins one core while
        the others idle, regardless of total headroom."""
        gw = XgwX86(gateway_ip=1, num_cores=8, core_pps=1000.0)
        elephant = [(flow(0), 5000.0)]
        mice = [(flow(i), 10.0) for i in range(1, 40)]
        report = gw.serve_interval(elephant + mice)
        utils = sorted(report.utilizations(), reverse=True)
        assert utils[0] == 1.0
        assert report.dropped_pps > 0
        # Aggregate capacity (8000 pps) exceeded offered (5390) yet we
        # still dropped: the signature of inter-core imbalance.
        assert report.offered_pps < gw.total_capacity_pps

    def test_balanced_mice_no_loss(self):
        gw = XgwX86(gateway_ip=1, num_cores=8, core_pps=1000.0)
        mice = [(flow(i), 20.0) for i in range(200)]
        report = gw.serve_interval(mice)
        assert report.dropped_pps == 0.0
        assert report.loss_rate == 0.0

    def test_loss_rate(self):
        gw = XgwX86(gateway_ip=1, num_cores=1, core_pps=100.0)
        report = gw.serve_interval([(flow(0), 200.0)])
        assert report.loss_rate == pytest.approx(0.5)
