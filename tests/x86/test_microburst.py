"""Tests for the micro-burst loss model and capped heavy-hitter flows."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.flow import FlowKey
from repro.workloads.flows import heavy_hitter_flows
from repro.x86.cpu import Core, microburst_loss_fraction
from repro.x86.gateway import XgwX86


class TestMicroburstLossFraction:
    def test_zero_at_idle(self):
        assert microburst_loss_fraction(0.0, 0.12) == 0.0

    def test_negligible_when_cool(self):
        assert microburst_loss_fraction(0.3, 0.12) < 1e-10

    def test_paper_band_when_hot(self):
        """A core around 70-80% mean loses ~1e-5..1e-3 to spikes — the
        region-level 1e-4 of Fig. 5 comes from a few such cores."""
        assert 1e-6 < microburst_loss_fraction(0.7, 0.12) < 1e-3
        assert 1e-4 < microburst_loss_fraction(0.8, 0.12) < 1e-2

    def test_sigma_zero_is_deterministic_clip(self):
        assert microburst_loss_fraction(0.9, 0.0) == 0.0
        assert microburst_loss_fraction(2.0, 0.0) == pytest.approx(0.5)

    def test_monotone_in_utilization(self):
        values = [microburst_loss_fraction(m, 0.12) for m in (0.5, 0.7, 0.9, 1.1)]
        assert values == sorted(values)

    def test_monotone_in_burstiness(self):
        assert microburst_loss_fraction(0.8, 0.05) < microburst_loss_fraction(0.8, 0.3)

    @given(st.floats(min_value=0.01, max_value=3.0),
           st.floats(min_value=0.0, max_value=1.0))
    def test_always_a_valid_fraction(self, mean, sigma):
        loss = microburst_loss_fraction(mean, sigma)
        assert 0.0 <= loss < 1.0

    def test_matches_monte_carlo(self):
        """Closed form vs simulation of the lognormal clip."""
        import random

        mean, sigma = 0.85, 0.2
        rng = random.Random(1)
        mu = math.log(mean) - sigma ** 2 / 2
        samples = [math.exp(rng.gauss(mu, sigma)) for _ in range(200_000)]
        mc = sum(max(0.0, s - 1.0) for s in samples) / sum(samples)
        assert microburst_loss_fraction(mean, sigma) == pytest.approx(mc, rel=0.1)


class TestCoreBurstiness:
    def test_burstiness_adds_loss_below_capacity(self):
        calm = Core(0, capacity_pps=1000.0, burstiness=0.0)
        bursty = Core(0, capacity_pps=1000.0, burstiness=0.2)
        flow = FlowKey(1, 2, 6, 3, 4)
        assert calm.serve([(flow, 900.0)]).dropped_pps == 0.0
        assert bursty.serve([(flow, 900.0)]).dropped_pps > 0.0

    def test_gateway_burstiness_plumbed(self):
        gw = XgwX86(gateway_ip=1, burstiness=0.15)
        assert all(core.burstiness == 0.15 for core in gw.cpu.cores)


class TestCappedFlows:
    def test_cap_respected(self):
        flows = heavy_hitter_flows(100, 1e6, seed=1, alpha=1.5, max_pps=20_000.0)
        assert max(f.pps for f in flows) <= 20_000.0 * 1.001

    def test_total_preserved_under_cap(self):
        flows = heavy_hitter_flows(100, 1e6, seed=1, alpha=1.5, max_pps=20_000.0)
        assert sum(f.pps for f in flows) == pytest.approx(1e6, rel=1e-6)

    def test_infeasible_cap_rejected(self):
        with pytest.raises(ValueError):
            heavy_hitter_flows(10, 1e6, seed=1, max_pps=1.0)

    def test_no_cap_unchanged(self):
        capped = heavy_hitter_flows(50, 1e3, seed=2, max_pps=None)
        plain = heavy_hitter_flows(50, 1e3, seed=2)
        assert [f.pps for f in capped] == [f.pps for f in plain]

    def test_cap_flattens_skew(self):
        from repro.telemetry.stats import top_n_share

        free = heavy_hitter_flows(100, 1e6, seed=3, alpha=1.5)
        capped = heavy_hitter_flows(100, 1e6, seed=3, alpha=1.5, max_pps=30_000.0)
        assert top_n_share([f.pps for f in capped], 2) < \
            top_n_share([f.pps for f in free], 2)
