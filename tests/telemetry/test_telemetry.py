"""Tests for counters, statistics and time series."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.telemetry.stats import (
    CounterSet,
    PercentileSketch,
    RunningStats,
    histogram,
    jains_fairness,
    loss_rate,
    top_n_share,
    weighted_mean,
)
from repro.telemetry.timeseries import SeriesBundle, TimeSeries


class TestCounterSet:
    def test_add_and_read(self):
        c = CounterSet()
        c.add("rx", 3)
        c.add("rx")
        assert c["rx"] == 4 and c["missing"] == 0

    def test_monotonic(self):
        with pytest.raises(ValueError):
            CounterSet().add("x", -1)

    def test_ratio(self):
        c = CounterSet()
        c.add("drops", 1)
        c.add("packets", 1000)
        assert c.ratio("drops", "packets") == 0.001
        assert c.ratio("drops", "absent") == 0.0

    def test_merge(self):
        a, b = CounterSet(), CounterSet()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 3)
        a.merge(b)
        assert a["x"] == 3 and a["y"] == 3

    def test_snapshot_is_copy(self):
        c = CounterSet()
        c.add("x")
        snap = c.snapshot()
        c.add("x")
        assert snap["x"] == 1


class TestRunningStats:
    def test_against_reference(self):
        rng = random.Random(3)
        values = [rng.gauss(10, 2) for _ in range(500)]
        stats = RunningStats()
        stats.observe_many(values)
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        assert math.isclose(stats.mean, mean, rel_tol=1e-9)
        assert math.isclose(stats.variance, var, rel_tol=1e-9)
        assert stats.minimum == min(values) and stats.maximum == max(values)

    def test_empty(self):
        stats = RunningStats()
        assert stats.mean == 0.0 and stats.variance == 0.0
        assert stats.coefficient_of_variation == 0.0

    def test_cv(self):
        stats = RunningStats()
        stats.observe_many([5.0, 5.0, 5.0])
        assert stats.coefficient_of_variation == 0.0


class TestPercentileSketch:
    def test_exact_under_capacity(self):
        sketch = PercentileSketch(capacity=100)
        for v in range(100):
            sketch.observe(float(v))
        assert sketch.percentile(0) == 0.0
        assert sketch.percentile(100) == 99.0
        assert abs(sketch.percentile(50) - 49.5) < 1e-9

    def test_single_value(self):
        sketch = PercentileSketch()
        sketch.observe(7.0)
        assert sketch.percentile(99) == 7.0

    def test_requires_samples(self):
        with pytest.raises(ValueError):
            PercentileSketch().percentile(50)

    def test_bad_q(self):
        sketch = PercentileSketch()
        sketch.observe(1.0)
        with pytest.raises(ValueError):
            sketch.percentile(101)

    def test_overflow_needs_rng(self):
        sketch = PercentileSketch(capacity=2)
        sketch.observe(1.0)
        sketch.observe(2.0)
        with pytest.raises(ValueError):
            sketch.observe(3.0)

    def test_reservoir_with_rng(self):
        sketch = PercentileSketch(capacity=100, rng=random.Random(1))
        for v in range(10_000):
            sketch.observe(float(v))
        # Median of uniform 0..9999 should be near 5000.
        assert 3000 < sketch.percentile(50) < 7000


class TestAggregates:
    def test_jains_perfect(self):
        assert jains_fairness([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_jains_worst(self):
        assert jains_fairness([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_jains_all_zero(self):
        assert jains_fairness([0, 0]) == 1.0

    def test_jains_empty(self):
        with pytest.raises(ValueError):
            jains_fairness([])

    def test_top_n_share(self):
        values = [50, 30, 10, 5, 5]
        assert top_n_share(values, 1) == 0.5
        assert top_n_share(values, 2) == 0.8
        assert top_n_share(values, 0) == 0.0
        assert top_n_share([], 3) == 0.0

    def test_histogram(self):
        counts = histogram([1, 2, 3, 10], [0, 5, 20])
        assert counts == [3, 1]
        with pytest.raises(ValueError):
            histogram([1], [5, 1])

    def test_loss_rate(self):
        assert loss_rate(1, 1000) == 0.001
        assert loss_rate(0, 0) == 0.0
        with pytest.raises(ValueError):
            loss_rate(2, 1)

    def test_weighted_mean(self):
        assert weighted_mean([(1.0, 1.0), (3.0, 1.0)]) == 2.0
        assert weighted_mean([(1.0, 3.0), (5.0, 1.0)]) == 2.0
        with pytest.raises(ValueError):
            weighted_mean([])


class TestTimeSeries:
    def test_record_and_read(self):
        ts = TimeSeries("x")
        ts.record(0.0, 1.0)
        ts.record(1.0, 2.0)
        assert list(ts.points()) == [(0.0, 1.0), (1.0, 2.0)]
        assert ts.maximum() == 2.0 and ts.mean() == 1.5

    def test_monotone_required(self):
        ts = TimeSeries()
        ts.record(5.0, 1.0)
        with pytest.raises(ValueError):
            ts.record(4.0, 1.0)

    def test_window(self):
        ts = TimeSeries()
        for t in range(10):
            ts.record(float(t), float(t))
        window = ts.window(2.0, 5.0)
        assert list(window.times) == [2.0, 3.0, 4.0]

    def test_value_at_step_interpolation(self):
        ts = TimeSeries()
        ts.record(0.0, 1.0)
        ts.record(10.0, 2.0)
        assert ts.value_at(5.0) == 1.0
        assert ts.value_at(10.0) == 2.0
        with pytest.raises(ValueError):
            ts.value_at(-1.0)

    def test_resample_max_catches_spikes(self):
        """Coarse monitoring must keep the in-bucket maximum (the paper's
        point about loss on instantaneous 100% CPU spikes)."""
        ts = TimeSeries()
        for i in range(100):
            ts.record(i * 0.01, 1.0 if i == 37 else 0.1)
        coarse = ts.resample_max(1.0)
        assert coarse.maximum() == 1.0
        assert len(coarse) == 1

    def test_resample_bad_bucket(self):
        with pytest.raises(ValueError):
            TimeSeries().resample_max(0.0)

    def test_empty_series_errors(self):
        with pytest.raises(ValueError):
            TimeSeries().maximum()


class TestSeriesBundle:
    def test_lazy_series(self):
        bundle = SeriesBundle()
        bundle.record("core-1", 0.0, 0.9)
        bundle.record("core-2", 0.0, 0.1)
        assert "core-1" in bundle
        assert bundle.names() == ["core-1", "core-2"]
        assert bundle["core-1"].values == (0.9,)

    def test_top_by_mean(self):
        bundle = SeriesBundle()
        for i in range(5):
            for t in range(3):
                bundle.record(f"core-{i}", float(t), float(i))
        top = bundle.top_by_mean(2)
        assert [s.name for s in top] == ["core-4", "core-3"]

    def test_top_by_mean_breaks_ties_by_name(self):
        """Equal means must order by name, not dict insertion order."""
        bundle = SeriesBundle()
        for name in ["core-3", "core-1", "core-2"]:  # scrambled insertion
            bundle.record(name, 0.0, 7.0)
        top = bundle.top_by_mean(3)
        assert [s.name for s in top] == ["core-1", "core-2", "core-3"]

    def test_top_by_mean_ranks_empty_series_last_deterministically(self):
        bundle = SeriesBundle()
        bundle.series("empty-b")  # created but never recorded
        bundle.series("empty-a")
        bundle.record("busy", 0.0, 1.0)
        top = bundle.top_by_mean(3)
        assert [s.name for s in top] == ["busy", "empty-a", "empty-b"]


class TestResampleMean:
    def test_means_per_bucket(self):
        ts = TimeSeries("pps")
        for i in range(4):
            ts.record(i * 0.5, float(i))  # buckets [0,1): 0,1  [1,2): 2,3
        assert list(ts.resample_mean(1.0).points()) == [(0.0, 0.5), (1.0, 2.5)]

    def test_single_bucket(self):
        ts = TimeSeries()
        for t, v in [(0.0, 1.0), (0.3, 2.0), (0.6, 3.0)]:
            ts.record(t, v)
        assert list(ts.resample_mean(10.0).points()) == [(0.0, 2.0)]

    def test_empty_series(self):
        assert len(TimeSeries().resample_mean(1.0)) == 0

    def test_bad_bucket(self):
        with pytest.raises(ValueError):
            TimeSeries().resample_mean(0.0)

    def test_mean_vs_max_on_spiky_data(self):
        """resample_max keeps the spike, resample_mean averages it out —
        the decision-input vs loss-diagnostic distinction."""
        ts = TimeSeries()
        for i in range(10):
            ts.record(i * 0.1, 1.0 if i == 5 else 0.0)
        assert ts.resample_max(1.0).maximum() == 1.0
        assert ts.resample_mean(1.0).maximum() == pytest.approx(0.1)
