"""Tests for VTrace-style path tracing."""

import pytest

from repro.core.sailfish import RegionSpec, Sailfish
from repro.dataplane.gateway_logic import ForwardAction
from repro.telemetry.trace import PathTrace, TraceHop
from repro.workloads.traffic import build_vxlan_packet


@pytest.fixture(scope="module")
def region():
    return Sailfish.build(RegionSpec.small(), seed=99)


def first_v4_vm(region):
    for vni in region.topology.vnis():
        for vm in region.topology.vpcs[vni].vms:
            if vm.version == 4:
                return vm
    pytest.skip("no v4 VMs in topology")


class TestPathTrace:
    def test_hop_formatting(self):
        hop = TraceHop("pipe", "gw0/pipeline1", "egress")
        assert "pipe:gw0/pipeline1" in str(hop)

    def test_drop_location(self):
        trace = PathTrace()
        trace.add("pipe", "gw0/pipeline0", "ingress")
        trace.outcome, trace.drop_reason = "drop", "no-route"
        assert trace.dropped
        assert trace.drop_location().node == "gw0/pipeline0"

    def test_no_drop_location_on_success(self):
        trace = PathTrace()
        trace.add("pipe", "x")
        trace.outcome = "deliver-nc"
        assert trace.drop_location() is None

    def test_describe(self):
        trace = PathTrace()
        trace.add("balancer", "region", "VNI 7 -> A")
        trace.outcome = "deliver-nc"
        text = trace.describe()
        assert "balancer:region" in text and "deliver-nc" in text


class TestRegionTracing:
    def test_delivered_packet_full_path(self, region):
        vm = first_v4_vm(region)
        peer = next(v for v in region.topology.vpcs[vm.vni].vms if v.version == 4)
        packet = build_vxlan_packet(vm.vni, vm.ip, peer.ip)
        result, trace = region.trace(packet)
        assert result.action is ForwardAction.DELIVER_NC
        assert not trace.dropped
        components = trace.components()
        assert components[0] == "balancer"
        assert components[1] == "cluster"
        # Folded path: four pipe hops.
        assert components.count("pipe") == 4

    def test_trace_matches_forward(self, region):
        """Tracing must not change the forwarding decision."""
        vm = first_v4_vm(region)
        packet = build_vxlan_packet(vm.vni, vm.ip, vm.ip)
        traced_result, _trace = region.trace(packet)
        plain_result = region.forward(packet)
        assert traced_result.action == plain_result.action

    def test_drop_localised_to_pipe(self, region):
        """The VTrace use case: find where a persistent loss happens."""
        vm = first_v4_vm(region)
        # Destination VM that does not exist -> no-vm at the VM-NC pipe.
        packet = build_vxlan_packet(vm.vni, vm.ip, vm.ip ^ 0xFE)
        result, trace = region.trace(packet)
        if result.action is not ForwardAction.DROP:
            pytest.skip("xor produced a real VM")
        assert trace.dropped
        location = trace.drop_location()
        assert location.component == "pipe"
        assert trace.drop_reason in ("no-vm", "no-route")

    def test_unassigned_vni_traced_at_balancer(self, region):
        packet = build_vxlan_packet(999_999, 1, 2)
        result, trace = region.trace(packet)
        assert result.action is ForwardAction.DROP
        assert trace.drop_location().component == "balancer"

    def test_snat_path_includes_x86_hop(self, region):
        vm = first_v4_vm(region)
        packet = build_vxlan_packet(vm.vni, vm.ip, 0x08080808)
        result, trace = region.trace(packet)
        assert result.action is ForwardAction.UPLINK
        assert "x86" in trace.components()

    def test_early_uplink_has_single_pipe(self, region):
        """IPv6 Internet traffic exits at the first ingress pipe."""
        v6 = None
        for vni in region.topology.vnis():
            for vm in region.topology.vpcs[vni].vms:
                if vm.version == 6:
                    v6 = vm
                    break
        if v6 is None:
            pytest.skip("no v6 VMs")
        packet = build_vxlan_packet(v6.vni, v6.ip, (0x2001 << 112) | 1, version=6)
        result, trace = region.trace(packet)
        assert result.action is ForwardAction.UPLINK
        assert trace.components().count("pipe") == 1
