"""Tests for the event engine and seeded randomness helpers."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.engine import Engine, SimulationError
from repro.sim.rand import (
    WeightedSampler,
    derive,
    make_rng,
    sample_without_replacement,
    shuffled,
    zipf_weights,
)


class TestEngine:
    def test_order(self):
        eng = Engine()
        hits = []
        eng.schedule(2.0, lambda: hits.append("b"))
        eng.schedule(1.0, lambda: hits.append("a"))
        eng.schedule(1.0, lambda: hits.append("a2"))
        eng.run()
        assert hits == ["a", "a2", "b"]

    def test_now_advances(self):
        eng = Engine()
        seen = []
        eng.schedule(5.0, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [5.0] and eng.now == 5.0

    def test_schedule_in_past_rejected(self):
        eng = Engine(start_time=10.0)
        with pytest.raises(SimulationError):
            eng.schedule(5.0, lambda: None)
        with pytest.raises(SimulationError):
            eng.schedule_in(-1.0, lambda: None)

    def test_run_until(self):
        eng = Engine()
        hits = []
        eng.schedule(1.0, lambda: hits.append(1))
        eng.schedule(10.0, lambda: hits.append(10))
        eng.run(until=5.0)
        assert hits == [1] and eng.now == 5.0 and eng.pending() == 1

    def test_run_until_advances_clock_when_idle(self):
        eng = Engine()
        eng.run(until=3.0)
        assert eng.now == 3.0

    def test_periodic(self):
        eng = Engine()
        ticks = []
        eng.schedule_every(1.0, lambda: ticks.append(eng.now), until=5.0)
        eng.run()
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_periodic_bad_interval(self):
        with pytest.raises(SimulationError):
            Engine().schedule_every(0.0, lambda: None)

    def test_events_scheduled_during_run(self):
        eng = Engine()
        hits = []

        def first():
            hits.append("first")
            eng.schedule_in(1.0, lambda: hits.append("second"))

        eng.schedule(1.0, first)
        eng.run()
        assert hits == ["first", "second"]

    def test_cancel_is_idempotent(self):
        eng = Engine()
        ticks = []
        task = eng.schedule_every(1.0, lambda: ticks.append(eng.now))
        task.cancel()
        task.cancel()  # double-cancel is a no-op, not an error
        assert task.cancelled
        eng.run()
        assert ticks == []

    def test_cancel_purges_queued_tick_for_quiescence(self):
        eng = Engine()
        task = eng.schedule_every(1.0, lambda: None)
        assert eng.pending() == 1
        task.cancel()
        # The queued tick is gone, so pending()==0 means truly idle.
        assert eng.pending() == 0

    def test_event_cancelling_its_own_series_stops_it(self):
        eng = Engine()
        holder = {}

        def tick():
            holder["task"].cancel()

        holder["task"] = eng.schedule_every(1.0, tick)
        eng.run()
        assert holder["task"].fires == 1
        assert eng.pending() == 0

    def test_cancel_does_not_disturb_other_events(self):
        eng = Engine()
        hits = []
        task = eng.schedule_every(1.0, lambda: hits.append("tick"))
        eng.schedule(2.5, lambda: hits.append("other"))
        task.cancel()
        eng.run()
        assert hits == ["other"]

    def test_step(self):
        eng = Engine()
        eng.schedule(1.0, lambda: None)
        assert eng.step() is True
        assert eng.step() is False
        assert eng.events_processed == 1


class TestRand:
    def test_make_rng_passthrough(self):
        rng = random.Random(1)
        assert make_rng(rng) is rng

    def test_make_rng_seeded(self):
        assert make_rng(5).random() == make_rng(5).random()

    def test_derive_independent_streams(self):
        assert derive(1, "a").random() == derive(1, "a").random()
        assert derive(1, "a").random() != derive(1, "b").random()
        assert derive(1, "a").random() != derive(2, "a").random()

    def test_zipf_weights_normalised_and_decreasing(self):
        weights = zipf_weights(100, 1.1)
        assert abs(sum(weights) - 1.0) < 1e-9
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_zipf_skew_increases_with_alpha(self):
        flat = zipf_weights(100, 0.5)
        steep = zipf_weights(100, 2.0)
        assert steep[0] > flat[0]

    def test_zipf_bad_n(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)

    def test_sampler_respects_weights(self):
        rng = random.Random(7)
        sampler = WeightedSampler([0.9, 0.1], rng)
        draws = sampler.sample_many(5000)
        share = draws.count(0) / len(draws)
        assert 0.85 < share < 0.95

    def test_sampler_single_item(self):
        sampler = WeightedSampler([1.0], random.Random(1))
        assert sampler.sample() == 0

    def test_sampler_bad_weights(self):
        with pytest.raises(ValueError):
            WeightedSampler([], random.Random(1))
        with pytest.raises(ValueError):
            WeightedSampler([0.0, 0.0], random.Random(1))

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1,
                    max_size=20))
    def test_sampler_indices_in_range(self, weights):
        sampler = WeightedSampler(weights, random.Random(3))
        for _ in range(50):
            assert 0 <= sampler.sample() < len(weights)

    def test_sample_without_replacement(self):
        rng = random.Random(1)
        out = sample_without_replacement(range(10), 5, rng)
        assert len(set(out)) == 5
        with pytest.raises(ValueError):
            sample_without_replacement([1], 2, rng)

    def test_shuffled_is_permutation(self):
        rng = random.Random(1)
        items = list(range(20))
        out = shuffled(items, rng)
        assert sorted(out) == items and items == list(range(20))
