"""Engine determinism: same seed + same fault plan ⇒ identical event
order and final telemetry counters — plus the PeriodicTask handle."""

from tests.faults.helpers import make_controller, onboard

from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.sim.engine import Engine, PeriodicTask


def scenario(seed):
    """A fault-laden run; returns (event trace, telemetry snapshots)."""
    plan = FaultPlan(seed=seed, specs=[
        FaultSpec(FaultKind.DROP_ROUTE_WRITE, probability=0.4),
        FaultSpec(FaultKind.CORRUPT_VM_WRITE, probability=0.3),
        FaultSpec(FaultKind.MEMBER_FLAP, node="*-gw0", at_time=2.5,
                  down_for=1.0),
    ])
    ctrl = make_controller()
    injector = FaultInjector(plan)
    injector.arm_controller(ctrl)
    trace = []
    engine = Engine()
    for i in range(6):
        vni = 100 + i
        engine.schedule(0.5 * i, lambda v=vni: (
            onboard(ctrl, vni=v, subnet=f"192.168.{v - 90}.0/24",
                    vm=f"192.168.{v - 90}.2"),
            trace.append(("onboard", engine.now, v)),
        ))
    injector.schedule(engine, ctrl.clusters)
    ctrl.reconcile_loop(engine, interval=1.0, until=8.0)
    engine.schedule_every(
        1.0,
        lambda: trace.append(("check", engine.now, plan.write_index)),
        until=8.0)
    engine.run()
    return {
        "trace": trace,
        "controller_counters": ctrl.counters.snapshot(),
        "fault_counters": plan.counters.snapshot(),
        "fault_log": [repr(f) for f in plan.log],
        "events_processed": engine.events_processed,
        "final_now": engine.now,
    }


class TestDeterminism:
    def test_same_seed_same_everything(self):
        assert scenario(42) == scenario(42)

    def test_different_seed_different_faults(self):
        a, b = scenario(42), scenario(43)
        # The probability draws differ, so the injected-fault stream must
        # differ (0.4/0.3 coins over ~24 writes collide with p ≈ 1e-9).
        assert a["fault_log"] != b["fault_log"]

    def test_faults_actually_fired_and_healed(self):
        result = scenario(42)
        assert result["fault_counters"]  # something was injected
        assert result["controller_counters"]["repairs_applied"] > 0


class TestPeriodicTask:
    def test_schedule_every_returns_handle(self):
        engine = Engine()
        task = engine.schedule_every(1.0, lambda: None, until=3.0)
        assert isinstance(task, PeriodicTask)
        engine.run()
        assert task.fires == 3

    def test_cancel_stops_future_ticks(self):
        engine = Engine()
        hits = []
        task = engine.schedule_every(1.0, lambda: hits.append(engine.now))
        engine.schedule(2.5, task.cancel)
        engine.run()
        assert hits == [1.0, 2.0]
        assert task.cancelled and task.fires == 2

    def test_cancel_inside_tick(self):
        engine = Engine()
        hits = []
        task = engine.schedule_every(1.0, lambda: (hits.append(engine.now),
                                                   task.cancel()))
        engine.run()
        assert hits == [1.0]
