"""The emergent (non-calibrated) results must hold across seeds, not
just at the one seed a bench happens to use."""

import pytest

from repro.core.sailfish import RegionSpec, Sailfish
from repro.telemetry.stats import top_n_share
from repro.workloads.flows import heavy_hitter_flows
from repro.workloads.traffic import RegionTrafficGenerator
from repro.x86.gateway import XgwX86

SEEDS = (11, 222, 3333)


class TestHeavyHitterStoryRobust:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_one_core_saturates_others_idle(self, seed):
        gw = XgwX86(gateway_ip=1)
        flows = heavy_hitter_flows(100, gw.total_capacity_pps * 0.4,
                                   seed=seed, alpha=1.4)
        report = gw.serve_interval([(f.flow, f.pps) for f in flows])
        utils = sorted(report.utilizations(), reverse=True)
        assert utils[0] == 1.0
        assert utils[len(utils) // 2] < 0.5

    @pytest.mark.parametrize("seed", SEEDS)
    def test_top2_flows_dominate_hot_core(self, seed):
        gw = XgwX86(gateway_ip=1)
        flows = heavy_hitter_flows(100, gw.total_capacity_pps * 0.5,
                                   seed=seed, alpha=1.5)
        report = gw.serve_interval([(f.flow, f.pps) for f in flows])
        hot = max(report.core_intervals, key=lambda ci: ci.offered_pps)
        assert top_n_share(list(hot.flow_share.values()), 2) > 0.5


class TestRegionStoryRobust:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_clean_forwarding_and_small_software_share(self, seed):
        region = Sailfish.build(RegionSpec.small(), seed=seed)
        generator = RegionTrafficGenerator(region.topology, seed=seed,
                                           internet_share=0.01)
        report = region.forward_sample(packets=400, generator=generator)
        assert report.dropped == 0
        assert report.software_ratio < 0.05

    @pytest.mark.parametrize("seed", SEEDS)
    def test_pipe_balance(self, seed):
        # Balance needs scale: in a 64-VM region the 80/20 hot set is a
        # handful of VMs whose IP parities dominate (the paper's balance
        # comes from region-scale aggregation), so test at medium size.
        region = Sailfish.build(RegionSpec.medium(), seed=seed)
        generator = RegionTrafficGenerator(region.topology, seed=seed,
                                           internet_share=0.0)
        for sample in generator.packets(600):
            region.forward(sample.packet)
        pipe1 = pipe3 = 0
        for cluster in region.controller.clusters.values():
            for member in cluster.active_members():
                share = member.gateway.egress_pipe_share()
                pipe1 += share.get(1, 0)
                pipe3 += share.get(3, 0)
        total = pipe1 + pipe3
        assert total > 0
        assert 0.35 < pipe1 / total < 0.65

    @pytest.mark.parametrize("seed", SEEDS)
    def test_consistency_and_probes(self, seed):
        region = Sailfish.build(RegionSpec.small(), seed=seed)
        for cluster_id in region.controller.clusters:
            assert region.controller.consistency_check(cluster_id) == []
            assert region.controller.probe(cluster_id, limit=4).ok
