"""The paper's headline claims, asserted as a single checklist.

Each test cites the claim (abstract / section) and checks our
reproduction preserves its *shape* — who wins and by roughly what
factor — per EXPERIMENTS.md.
"""

import pytest

from repro.core.compression import CompressionPlan
from repro.core.occupancy import ALL_STEPS, OccupancyModel
from repro.core.sailfish import HW_RESIDUAL_DROP_RATE, RegionSpec, Sailfish
from repro.core.xgw_h import XgwH
from repro.tofino.chip import Chip
from repro.workloads.datasets import growth_factors
from repro.x86.gateway import FORWARDING_LATENCY_US, XgwX86


class TestAbstractClaims:
    def test_latency_reduced_95_percent(self):
        """"Sailfish reduces latency by 95% (2us)"."""
        hw = Chip(folded=True).forwarding_latency_us()
        sw = FORWARDING_LATENCY_US
        assert hw == pytest.approx(2.2, abs=0.3)
        assert 1 - hw / sw >= 0.93

    def test_throughput_20x_bps(self):
        """"improves throughput by more than 20x in bps (3.2Tbps)"."""
        hw = XgwH(gateway_ip=1)
        sw = XgwX86(gateway_ip=2)
        assert hw.throughput_bps() == pytest.approx(3.2e12)
        assert hw.throughput_bps() / sw.nic.bandwidth_bps > 20

    def test_packet_rate_71x_pps(self):
        """"71x in pps (1.8Gpps) with packet length < 256B"."""
        hw = Chip(folded=True).rate_at(192).packet_rate_pps
        sw = XgwX86(gateway_ip=1).total_capacity_pps
        assert hw == pytest.approx(1.8e9, rel=0.1)
        assert 60 <= hw / sw <= 85

    def test_sram_tcam_reductions(self):
        """"decreases SRAM by 38% and TCAM by 96% (IPv4); 85%/98% (IPv6)"."""
        model = OccupancyModel.paper_scale()
        s4, t4 = model.reduction_vs_naive(0.0)
        s6, t6 = model.reduction_vs_naive(1.0)
        assert (round(s4, 2), round(t4, 2)) == (0.38, 0.96)
        assert (round(s6, 2), round(t6, 2)) == (0.85, 0.98)

    def test_hardware_cost_reduction(self):
        """§4.2: "from hundreds of XGW-x86s to ten XGW-Hs ... and four
        XGW-x86s" — >90% hardware acquisition cost cut at equal unit
        price."""
        region_traffic_bps = 15e12  # §2.3's example region
        water_level = 0.5
        backup = 2  # 1:1 backup
        x86_boxes = backup * region_traffic_bps / (100e9 * water_level)
        xgwh_boxes = backup * region_traffic_bps / (3.2e12 * water_level)
        # Equal unit price -> cost ratio is the box ratio.
        assert x86_boxes >= 600 - 1
        assert xgwh_boxes <= 20
        assert 1 - xgwh_boxes / x86_boxes > 0.9


class TestMotivationClaims:
    def test_single_core_lags_port_speed(self):
        """§2.3/Fig. 8: ports 40x vs single-core 2.5x over 2010-2020."""
        single, multi, port = growth_factors()
        assert port / single > 15
        assert multi < port

    def test_x86_loss_vs_sailfish_loss_six_orders(self):
        """Fig. 5 vs Fig. 19: ~1e-4..1e-5 vs 1e-10..1e-11."""
        region = Sailfish.build(RegionSpec.small(), seed=5)
        hw_loss = region.expected_hw_loss(region.hardware_capacity_pps() * 0.5)
        # Software loss from a genuine overload scene: heavy hitters on a
        # 32-core box near its average utilization target.
        from repro.workloads.flows import heavy_hitter_flows

        x86 = XgwX86(gateway_ip=1)
        flows = heavy_hitter_flows(100, x86.total_capacity_pps * 0.5, seed=5,
                                   alpha=1.6)
        report = x86.serve_interval([(f.flow, f.pps) for f in flows])
        sw_loss = report.loss_rate
        assert sw_loss > 1e-5
        assert hw_loss <= 1e-9
        assert sw_loss / hw_loss > 1e4


class TestDesignClaims:
    def test_tables_fit_only_with_full_compression(self):
        """§3.3/Table 2: naive placement does not fit; §4.4/Table 3: the
        optimized one does with room to spare."""
        model = OccupancyModel.paper_scale()
        assert not model.total(set()).fits()
        final = model.total(set(ALL_STEPS))
        assert final.fits()
        assert final.sram < 0.5 and final.tcam < 0.5

    def test_every_step_contributes(self):
        """Ablation: removing any single step materially worsens memory.

        Folding/splitting/compression/ALPM show up directly in occupancy;
        pooling's contribution is *provisioned* memory under a shifting
        v4/v6 mix (its stated purpose in §4.4).
        """
        from repro.core.occupancy import Step

        model = OccupancyModel.paper_scale()
        full = CompressionPlan.full().apply(model).final
        for step in (Step.FOLDING, Step.SPLIT, Step.COMPRESSION, Step.ALPM):
            ablated = CompressionPlan.full().without(step).apply(model).final
            worse = (
                ablated.sram > full.sram * 1.2
                or ablated.tcam > full.tcam * 1.2
            )
            assert worse, f"step {step} appears redundant"
        # Pooling: dedicated per-family tables must provision both peaks.
        pooled = model.provisioned_occupancy(set(ALL_STEPS))
        dedicated = model.provisioned_occupancy(set(ALL_STEPS) - {Step.POOLING})
        assert dedicated.sram > pooled.sram * 1.3
        assert dedicated.tcam > pooled.tcam * 1.3

    def test_folding_trades_throughput_for_memory(self):
        """§4.4: half throughput, double latency, double memory."""
        folded, normal = Chip(folded=True), Chip(folded=False)
        assert folded.max_throughput_bps() == normal.max_throughput_bps() / 2
        assert folded.forwarding_latency_ns() > 1.9 * normal.forwarding_latency_ns()
        # Memory doubling is visible in the occupancy model.
        model = OccupancyModel.paper_scale()
        from repro.core.occupancy import Step
        assert model.total({Step.FOLDING}).tcam == pytest.approx(
            model.total(set()).tcam / 2)

    def test_residual_floor_matches_fig19_band(self):
        assert 1e-11 <= HW_RESIDUAL_DROP_RATE <= 1e-10
