"""A month in the life of a region: the full control loop on the event
engine — tenant arrivals, table churn, a mid-month failover, periodic
consistency checks — ending with a healthy, probed fleet."""

import pytest

from repro.cluster.cluster import GatewayCluster
from repro.cluster.ecmp import VniSteeredBalancer
from repro.cluster.failover import DisasterRecovery
from repro.core.controller import Controller, RouteEntry, VmEntry
from repro.core.management import ClusterManager
from repro.core.splitting import ClusterCapacity, TableSplitter, TenantProfile
from repro.core.xgw_h import XgwH
from repro.net.addr import Prefix
from repro.sim.engine import Engine
from repro.sim.rand import derive
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import RouteAction, Scope

DAYS = 30


def build_world():
    balancer = VniSteeredBalancer()
    splitter = TableSplitter(ClusterCapacity(routes=120, vms=2000, traffic_bps=1e15))
    controller = Controller(splitter, balancer)
    counter = [0]

    def factory(cluster_id):
        counter[0] += 1
        nodes = [(f"{cluster_id}-gw{i}", XgwH(gateway_ip=counter[0] * 10 + i))
                 for i in range(2)]
        backup = GatewayCluster(
            f"{cluster_id}-backup",
            [(f"{cluster_id}-bk{i}", XgwH(gateway_ip=counter[0] * 100 + i))
             for i in range(2)],
        )
        return GatewayCluster(cluster_id, nodes, backup=backup)

    controller.set_cluster_factory(factory)
    engine = Engine()
    manager = ClusterManager(controller, engine, safe_water_level=0.8,
                             reopen_water_level=0.5, check_interval=1.0)
    recovery = DisasterRecovery(balancer, controller.clusters,
                                cold_standby=[XgwH(gateway_ip=9999)])
    return engine, controller, manager, recovery


def tenant_payload(vni, rng, subnets=3):
    routes, vms = [], []
    base = (10 << 24) | (vni << 12)
    for s in range(subnets):
        prefix = Prefix.of(base + (s << 8), 24, 4)
        routes.append(RouteEntry(vni, prefix, RouteAction(Scope.LOCAL)))
        for h in range(2):
            vms.append(VmEntry(vni, prefix.network + 2 + h, 4,
                               NcBinding((10 << 24) | rng.randrange(1, 255))))
    profile = TenantProfile(vni, routes=len(routes), vms=len(vms),
                            traffic_bps=1e9)
    return profile, routes, vms


class TestMonthLifecycle:
    def test_month_of_operations(self):
        engine, controller, manager, recovery = build_world()
        rng = derive(2026, "lifecycle")
        manager.start(until=float(DAYS))

        consistency_findings = []

        def daily_consistency_check():
            for cluster_id in list(controller.clusters):
                consistency_findings.extend(controller.consistency_check(cluster_id))

        engine.schedule_every(1.0, daily_consistency_check, until=float(DAYS))

        # Tenant arrivals: two per day for the first three weeks.
        arrivals = []
        for day in range(21):
            for k in range(2):
                vni = 100 + day * 2 + k
                arrivals.append((day + 0.2 + 0.3 * k, vni))
        for at, vni in arrivals:
            profile, routes, vms = tenant_payload(vni, rng)
            engine.schedule(
                at, lambda p=profile, r=routes, v=vms: manager.admit_tenant(p, r, v)
            )

        # Mid-month: a node failure in whichever cluster exists by then.
        def node_failure():
            cluster_id = sorted(controller.clusters)[0]
            victim = controller.clusters[cluster_id].members()[0].name
            recovery.fail_node(cluster_id, victim, time=engine.now)

        engine.schedule(15.5, node_failure)

        # Day 20: a full cluster failover on the first cluster.
        engine.schedule(
            20.5, lambda: recovery.fail_over_cluster(
                sorted(controller.clusters)[0], time=engine.now)
        )

        engine.run()

        # The fleet grew as tenants arrived.
        assert len(controller.clusters) >= 2
        assert len(manager.actions("placed")) == len(arrivals)
        # Consistency never silently diverged (controller-driven installs).
        assert consistency_findings == []
        # Failover events were logged.
        levels = {e.level for e in recovery.events}
        assert levels == {"node", "cluster"}
        # Every cluster still answers probes on its serving side.
        for cluster_id in sorted(controller.clusters):
            serving = recovery.serving_cluster(cluster_id)
            probe_gateway = serving.members()[0].gateway
            assert probe_gateway.route_count() > 0
            report = controller.probe(cluster_id, limit=4)
            assert report.sent > 0
        # Water-level history was recorded for every cluster.
        for cluster_id in controller.clusters:
            assert cluster_id in manager.water_levels

    def test_lifecycle_deterministic(self):
        def run():
            engine, controller, manager, _recovery = build_world()
            rng = derive(7, "det")
            manager.start(until=5.0)
            for day in range(5):
                profile, routes, vms = tenant_payload(200 + day, rng)
                engine.schedule(day + 0.5,
                                lambda p=profile, r=routes, v=vms:
                                manager.admit_tenant(p, r, v))
            engine.run()
            return sorted(controller.clusters), [
                (e.time, e.action, e.subject) for e in manager.events
            ]

        assert run() == run()
