"""Robustness: the region must classify arbitrary traffic, never crash.

Every packet — valid, stray, malformed-but-parseable — must come back
with a ForwardAction; hostile input must never raise out of the data
path (a gateway that crashes on a weird packet is a region outage).
"""

from hypothesis import given, settings, strategies as st

from repro.core.sailfish import RegionSpec, Sailfish
from repro.dataplane.gateway_logic import ForwardAction
from repro.net.headers import HeaderError
from repro.net.packet import Packet
from repro.workloads.traffic import build_vxlan_packet

_REGION = Sailfish.build(RegionSpec.small(), seed=123)
_KNOWN_VNIS = _REGION.topology.vnis()


class TestRegionFuzz:
    @settings(max_examples=150, deadline=None)
    @given(
        vni=st.one_of(st.sampled_from(_KNOWN_VNIS),
                      st.integers(min_value=0, max_value=(1 << 24) - 1)),
        src=st.integers(min_value=0, max_value=(1 << 32) - 1),
        dst=st.integers(min_value=0, max_value=(1 << 32) - 1),
        sport=st.integers(min_value=0, max_value=65535),
        dport=st.integers(min_value=0, max_value=65535),
    )
    def test_any_v4_vxlan_packet_classified(self, vni, src, dst, sport, dport):
        packet = build_vxlan_packet(vni, src, dst, src_port=sport, dst_port=dport)
        result = _REGION.forward(packet)
        assert isinstance(result.action, ForwardAction)
        if result.action is ForwardAction.DROP:
            assert result.detail  # drops always carry a reason

    @settings(max_examples=100, deadline=None)
    @given(
        vni=st.sampled_from(_KNOWN_VNIS),
        src=st.integers(min_value=0, max_value=(1 << 128) - 1),
        dst=st.integers(min_value=0, max_value=(1 << 128) - 1),
    )
    def test_any_v6_vxlan_packet_classified(self, vni, src, dst):
        packet = build_vxlan_packet(vni, src, dst, version=6)
        result = _REGION.forward(packet)
        assert isinstance(result.action, ForwardAction)

    @settings(max_examples=150, deadline=None)
    @given(raw=st.binary(min_size=0, max_size=200))
    def test_arbitrary_bytes_never_crash_region(self, raw):
        try:
            packet = Packet.from_bytes(raw)
        except HeaderError:
            return
        result = _REGION.forward(packet)
        assert isinstance(result.action, ForwardAction)

    @settings(max_examples=60, deadline=None)
    @given(
        vni=st.sampled_from(_KNOWN_VNIS),
        dst=st.integers(min_value=0, max_value=(1 << 32) - 1),
    )
    def test_trace_never_crashes_and_matches_forward(self, vni, dst):
        packet = build_vxlan_packet(vni, 0x0A000001, dst)
        traced_result, trace = _REGION.trace(packet)
        assert isinstance(traced_result.action, ForwardAction)
        assert trace.outcome
