"""End-to-end integration: the whole region under realistic scenarios."""

import pytest

from repro.cluster.health import Signal
from repro.core.sailfish import RegionSpec, Sailfish
from repro.dataplane.gateway_logic import ForwardAction
from repro.workloads.traffic import RegionTrafficGenerator, build_vxlan_packet


@pytest.fixture(scope="module")
def region():
    return Sailfish.build(RegionSpec.medium(), seed=42)


class TestMediumRegion:
    def test_scale(self, region):
        assert region.topology.total_vms >= 1000
        assert len(region.controller.clusters) >= 1

    def test_bulk_forwarding_clean(self, region):
        report = region.forward_sample(packets=2000, seed=1)
        assert report.dropped == 0
        assert report.delivered > 0

    def test_delivered_packets_reach_correct_nc(self, region):
        """Every delivered packet's outer dst must be the NC that hosts
        the destination VM."""
        generator = RegionTrafficGenerator(region.topology, seed=5, internet_share=0.0)
        vm_index = {
            (vm.vni, vm.ip): vm
            for vpc in region.topology.vpcs.values()
            for vm in vpc.vms
        }
        checked = 0
        for sample in generator.packets(500):
            result = region.forward(sample.packet)
            if result.action is ForwardAction.DELIVER_NC and sample.dst_vm is not None:
                expected = vm_index[(sample.dst_vm.vni, sample.dst_vm.ip)]
                assert result.packet.ip.dst == expected.nc_ip
                checked += 1
        assert checked > 300

    def test_wire_format_survives_region(self, region):
        """Serialise at every hop: what the region forwards is valid wire
        format end to end."""
        from repro.net.packet import Packet

        generator = RegionTrafficGenerator(region.topology, seed=6, internet_share=0.0)
        for sample in generator.packets(50):
            wire = sample.packet.to_bytes()
            reparsed = Packet.from_bytes(wire)
            result = region.forward(reparsed)
            if result.action is not ForwardAction.DROP:
                assert Packet.from_bytes(result.packet.to_bytes()).to_bytes() == \
                    result.packet.to_bytes()


class TestFailureScenarios:
    def test_node_failure_keeps_traffic_flowing(self):
        region = Sailfish.build(RegionSpec.small(), seed=9)
        cluster_id = sorted(region.controller.clusters)[0]
        cluster = region.controller.clusters[cluster_id]
        victim = cluster.members()[0].name
        region.recovery.fail_node(cluster_id, victim)
        report = region.forward_sample(packets=200, seed=2)
        assert report.dropped == 0

    def test_cluster_failover_keeps_traffic_flowing(self):
        region = Sailfish.build(RegionSpec.small(), seed=10)
        cluster_id = sorted(region.controller.clusters)[0]
        region.recovery.fail_over_cluster(cluster_id)
        report = region.forward_sample(packets=200, seed=3)
        # The backup cluster was configured identically by the controller.
        assert report.dropped == 0

    def test_loss_alert_triggers_failover(self):
        region = Sailfish.build(RegionSpec.small(), seed=11)
        cluster_id = sorted(region.controller.clusters)[0]
        main = region.controller.clusters[cluster_id]
        region.monitor.observe(cluster_id, Signal.PACKET_LOSS, 1e-3, time=1.0)
        assert region.recovery.serving_cluster(cluster_id) is main.backup

    def test_gateway_corruption_found_and_repaired_then_forwards(self):
        region = Sailfish.build(RegionSpec.small(), seed=12)
        cluster_id = sorted(region.controller.clusters)[0]
        cluster = region.controller.clusters[cluster_id]
        gw = cluster.members()[0].gateway
        # Corrupt: wipe a random route from one node only.
        vni, prefix, _ = next(iter(gw.tables.routing.items()))
        gw.remove_route(vni, prefix)
        assert region.controller.consistency_check(cluster_id)
        region.controller.repair(cluster_id)
        assert region.controller.consistency_check(cluster_id) == []
        assert region.controller.probe(cluster_id, limit=4).ok


class TestIpv6Traffic:
    def test_v6_vm_delivery(self):
        region = Sailfish.build(RegionSpec.small(), seed=21)
        v6_vms = [
            vm for vpc in region.topology.vpcs.values() for vm in vpc.vms
            if vm.version == 6
        ]
        if not v6_vms:
            pytest.skip("seed produced no v6 VMs")
        vm = v6_vms[0]
        peer = v6_vms[0]
        packet = build_vxlan_packet(vm.vni, peer.ip ^ 1, vm.ip, version=6)
        result = region.forward(packet)
        assert result.action is ForwardAction.DELIVER_NC
        assert result.packet.ip.dst == vm.nc_ip


class TestDeterminism:
    def test_same_seed_same_region(self):
        a = Sailfish.build(RegionSpec.small(), seed=33)
        b = Sailfish.build(RegionSpec.small(), seed=33)
        ra = a.forward_sample(packets=100, seed=1)
        rb = b.forward_sample(packets=100, seed=1)
        assert (ra.delivered, ra.uplinked, ra.dropped) == (
            rb.delivered, rb.uplinked, rb.dropped)
        assert ra.software_packets == rb.software_packets

    def test_different_seed_different_topology(self):
        a = Sailfish.build(RegionSpec.small(), seed=1)
        b = Sailfish.build(RegionSpec.small(), seed=2)
        vms_a = {vm.ip for vpc in a.topology.vpcs.values() for vm in vpc.vms}
        vms_b = {vm.ip for vpc in b.topology.vpcs.values() for vm in vpc.vms}
        assert vms_a != vms_b
