"""Property test: the pipeline-split hardware program and the one-pass
software program are the same function, over randomly generated tables
and packets."""

import ipaddress

from hypothesis import given, settings, strategies as st

from repro.core.xgw_h import XgwH
from repro.dataplane.gateway_logic import ForwardAction, GatewayTables, forward
from repro.net.addr import Prefix
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import RouteAction, Scope
from repro.workloads.traffic import build_vxlan_packet

GATEWAY_IP = 0x0AFFFF01


@st.composite
def gateway_setup(draw):
    """Random routing + VM-NC contents over a small VNI/address space."""
    vnis = draw(st.lists(st.integers(min_value=1, max_value=6), min_size=1,
                         max_size=4, unique=True))
    routes = []
    vms = []
    for vni in vnis:
        subnet_count = draw(st.integers(min_value=1, max_value=3))
        for s in range(subnet_count):
            net = (10 << 24) | (vni << 16) | (s << 10)
            prefix = Prefix.of(net, 22, 4)
            routes.append((vni, prefix, RouteAction(Scope.LOCAL)))
            for host in draw(st.lists(st.integers(min_value=2, max_value=40),
                                      max_size=4, unique=True)):
                vm_ip = prefix.network + host
                vms.append((vni, vm_ip, NcBinding((10 << 24) | host)))
        # Optional peer route to another listed VNI.
        if len(vnis) > 1 and draw(st.booleans()):
            peer = draw(st.sampled_from([v for v in vnis if v != vni]))
            peer_net = (10 << 24) | (peer << 16)
            routes.append((vni, Prefix.of(peer_net, 22, 4),
                           RouteAction(Scope.PEER, next_hop_vni=peer)))
        if draw(st.booleans()):
            routes.append((vni, Prefix.parse("0.0.0.0/0"),
                           RouteAction(Scope.SERVICE, target="snat")))
    return routes, vms, vnis


@st.composite
def probe_packets(draw, vnis):
    vni = draw(st.sampled_from(vnis + [99]))  # sometimes an unknown VNI
    if draw(st.booleans()):
        # In-space destination (maybe a VM, maybe a miss in a subnet).
        target_vni = draw(st.sampled_from(vnis))
        subnet = draw(st.integers(min_value=0, max_value=3))
        host = draw(st.integers(min_value=0, max_value=60))
        dst = (10 << 24) | (target_vni << 16) | (subnet << 10) | host
    else:
        dst = draw(st.integers(min_value=0, max_value=(1 << 32) - 1))
    src = draw(st.integers(min_value=1, max_value=(1 << 32) - 1))
    return build_vxlan_packet(vni, src, dst)


class TestEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_hw_equals_sw(self, data):
        routes, vms, vnis = data.draw(gateway_setup())
        hw = XgwH(gateway_ip=GATEWAY_IP)
        sw_tables = GatewayTables()
        seen_routes = set()
        for vni, prefix, action in routes:
            if (vni, prefix) in seen_routes:
                continue
            seen_routes.add((vni, prefix))
            hw.install_route(vni, prefix, action, replace=True)
            sw_tables.routing.insert(vni, prefix, action, replace=True)
        for vni, vm_ip, binding in vms:
            hw.install_vm(vni, vm_ip, 4, binding, replace=True)
            sw_tables.vm_nc.insert(vni, vm_ip, 4, binding, replace=True)

        for _ in range(10):
            packet = data.draw(probe_packets(vnis))
            hw_result = hw.forward(packet)
            sw_result = forward(sw_tables, packet, GATEWAY_IP)
            assert hw_result.action == sw_result.action, packet.inner.five_tuple()
            if hw_result.action is ForwardAction.DELIVER_NC:
                assert hw_result.packet.ip.dst == sw_result.packet.ip.dst
                assert hw_result.packet.vni == sw_result.packet.vni
                assert hw_result.packet.to_bytes() == sw_result.packet.to_bytes()
            if hw_result.action is ForwardAction.DROP:
                assert hw_result.detail == sw_result.detail
