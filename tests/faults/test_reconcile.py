"""The engine-driven reconciliation loop: convergence, targeted repair,
retry/backoff on failed installs, and the probe readmission gate."""

import pytest

from tests.faults.helpers import make_controller, onboard

from repro.dataplane.gateway_logic import ForwardAction, ForwardResult
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.sim.engine import Engine


def armed(*specs, seed=11):
    plan = FaultPlan(seed=seed, specs=list(specs))
    ctrl = make_controller()
    FaultInjector(plan).arm_controller(ctrl)
    return ctrl, plan


class TestConvergence:
    def test_converges_to_zero_inconsistencies_within_one_interval(self):
        ctrl, plan = armed(
            FaultSpec(FaultKind.DROP_ROUTE_WRITE, node="*-gw1", max_fires=1),
            FaultSpec(FaultKind.CORRUPT_VM_WRITE, node="*-bk0", max_fires=1),
        )
        cluster_id, _routes, _vms = onboard(ctrl)
        assert len(ctrl.consistency_check(cluster_id)) == 2
        engine = Engine()
        ctrl.reconcile_loop(engine, interval=1.0, until=5.0)
        engine.run()
        assert ctrl.consistency_check(cluster_id) == []
        assert ctrl.counters["inconsistencies_found"] == 2
        assert ctrl.counters["repairs_applied"] == 2
        assert ctrl.counters["repair_cycles"] == 1
        assert ctrl.counters["reconcile_ticks"] == 5

    def test_repairs_touch_only_divergent_keys(self):
        ctrl, plan = armed(
            FaultSpec(FaultKind.DROP_VM_WRITE, node="*-gw0", max_fires=1))
        cluster_id, _routes, _vms = onboard(ctrl)
        writes_after_onboard = plan.write_index
        engine = Engine()
        ctrl.reconcile_loop(engine, interval=1.0, until=3.0)
        engine.run()
        assert ctrl.consistency_check(cluster_id) == []
        # Exactly one write repaired exactly one divergent entry; the
        # seven healthy (member, entry) pairs were never re-pushed.
        assert plan.write_index == writes_after_onboard + 1

    def test_loop_heals_faults_injected_while_running(self):
        ctrl, plan = armed(
            FaultSpec(FaultKind.DROP_ROUTE_WRITE, node="*-gw0", max_fires=1))
        cluster_id, _routes, _vms = onboard(ctrl, vni=100)
        engine = Engine()
        ctrl.reconcile_loop(engine, interval=1.0, until=10.0)
        # A second tenant onboards mid-run; its writes are clean (the
        # spec is exhausted) but the first tenant's damage is healed.
        engine.schedule(
            4.5, lambda: onboard(ctrl, vni=101, subnet="192.168.11.0/24",
                                 vm="192.168.11.2"))
        engine.run()
        assert ctrl.consistency_check(cluster_id) == []
        assert ctrl.counters["repair_cycles"] == 1

    def test_loop_handle_cancels(self):
        ctrl, _plan = armed()
        onboard(ctrl)
        engine = Engine()
        task = ctrl.reconcile_loop(engine, interval=1.0, until=100.0)
        engine.schedule(3.5, task.cancel)
        engine.run()
        assert ctrl.counters["reconcile_ticks"] == 3


class TestRetryBackoff:
    def test_failed_install_retries_until_it_succeeds(self):
        # Arm *after* onboarding so only repair writes see the fault:
        # the first two repair attempts fail, the third lands.
        ctrl = make_controller()
        cluster_id, routes, _vms = onboard(ctrl)
        plan = FaultPlan(seed=1, specs=[
            FaultSpec(FaultKind.FAIL_ROUTE_WRITE, max_fires=2)])
        FaultInjector(plan).arm_controller(ctrl)
        gw = ctrl.clusters[cluster_id].members()[0].gateway
        gw.wrapped.remove_route(100, routes[0].prefix)
        engine = Engine()
        ctrl.reconcile_loop(engine, interval=1.0, backoff=0.1, until=3.0)
        engine.run()
        assert ctrl.consistency_check(cluster_id) == []
        assert plan.injected(FaultKind.FAIL_ROUTE_WRITE) == 2
        assert ctrl.counters["repair_retries"] == 2
        assert ctrl.counters["repairs_applied"] == 1
        assert ctrl.counters["retries_exhausted"] == 0

    def test_retries_exhausted_is_counted(self):
        ctrl = make_controller()
        cluster_id, routes, _vms = onboard(ctrl)
        plan = FaultPlan(seed=1, specs=[
            FaultSpec(FaultKind.FAIL_ROUTE_WRITE)])  # always fails
        FaultInjector(plan).arm_controller(ctrl)
        gw = ctrl.clusters[cluster_id].members()[0].gateway
        gw.wrapped.remove_route(100, routes[0].prefix)
        engine = Engine()
        ctrl.reconcile_loop(engine, interval=1.0, max_retries=2, backoff=0.1,
                            until=1.0)
        engine.run()
        # initial push + 2 retries all failed; exhaustion recorded.
        assert ctrl.counters["retries_exhausted"] == 1
        assert ctrl.counters["repairs_applied"] == 0
        assert len(ctrl.consistency_check(cluster_id)) == 1
        assert not ctrl.is_admitted(cluster_id)


class TestProbeGate:
    def test_quarantine_blocks_readmission_while_divergent(self):
        ctrl = make_controller()
        cluster_id, routes, _vms = onboard(ctrl)
        plan = FaultPlan(seed=1, specs=[
            FaultSpec(FaultKind.FAIL_ROUTE_WRITE, max_fires=3)])
        FaultInjector(plan).arm_controller(ctrl)
        gw = ctrl.clusters[cluster_id].members()[1].gateway
        gw.wrapped.remove_route(100, routes[0].prefix)
        assert ctrl.is_admitted(cluster_id)  # not yet checked
        engine = Engine()
        ctrl.reconcile_loop(engine, interval=1.0, max_retries=1, backoff=0.1,
                            until=4.0)
        admissions = []
        for t in (1.5, 2.5, 3.5):
            engine.schedule(t, lambda: admissions.append(
                (round(engine.now, 1), ctrl.is_admitted(cluster_id))))
        engine.run()
        # tick 1: push + 1 retry fail (fires 1, 2) -> still divergent, gated.
        # tick 2: push fails (fire 3), retry succeeds -> consistent, but
        #         readmission waits for the *next* gate evaluation.
        # tick 3: consistent, probe passes -> readmitted.
        assert admissions == [(1.5, False), (2.5, False), (3.5, True)]
        assert ctrl.counters["readmissions"] == 1
        assert ctrl.consistency_check(cluster_id) == []

    def test_probe_failure_keeps_cluster_quarantined(self, controller):
        # A dataplane-level fault the table comparison cannot see: one
        # member blackholes traffic while its tables agree with desired
        # state. Only the probe gate catches it, so the cluster must
        # stay out of service.
        cluster_id, _routes, _vms = onboard(controller)
        member = controller.clusters[cluster_id].members()[0]
        member.gateway.forward = lambda packet, now=None: ForwardResult(
            ForwardAction.DROP, packet, detail="injected-blackhole")
        controller.quarantined.add(cluster_id)
        engine = Engine()
        controller.reconcile_loop(engine, interval=1.0, until=3.0)
        engine.run()
        assert controller.consistency_check(cluster_id) == []
        assert not controller.is_admitted(cluster_id)
        assert controller.counters["probes_failed"] == 3
        assert controller.counters["readmissions"] == 0

    def test_clean_cluster_readmits_through_probe(self, controller):
        cluster_id, _routes, _vms = onboard(controller)
        controller.quarantined.add(cluster_id)
        engine = Engine()
        controller.reconcile_loop(engine, interval=1.0, until=1.0)
        engine.run()
        assert controller.is_admitted(cluster_id)
        assert controller.counters["readmissions"] == 1
