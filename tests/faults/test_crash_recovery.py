"""Controller crash between journal append and cluster push, then
recovery by replay: the rebuilt intent is the pre-crash intent and a
full sync leaves ``consistency_check() == []``."""

import json
import os

import pytest

from tests.faults.helpers import make_controller, onboard, tenant_payload

from repro.core.controller import Controller
from repro.core.journal import ControllerCrash, Journal
from repro.core.splitting import ClusterCapacity, TableSplitter
from repro.cluster.ecmp import VniSteeredBalancer
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec


def journaled_controller(*specs, seed=11):
    ctrl = make_controller()
    ctrl.journal = Journal()
    plan = FaultPlan(seed=seed, specs=list(specs))
    FaultInjector(plan).arm_controller(ctrl)
    return ctrl, plan


def recover_into_new_controller(crashed):
    """Stand up a fresh controller over the survivors' clusters (the
    gateways kept their tables; only the controller process died)."""
    ctrl = Controller(
        TableSplitter(ClusterCapacity(routes=50, vms=500, traffic_bps=1e13)),
        VniSteeredBalancer(),
        clusters=crashed.clusters,
    )
    writes = ctrl.recover(crashed.journal)
    return ctrl, writes


def save_artifacts(name, journal):
    """Drop the journal + replayed state where CI can upload them."""
    art_dir = os.environ.get("JOURNAL_ARTIFACT_DIR")
    if not art_dir:
        return
    os.makedirs(art_dir, exist_ok=True)
    with open(os.path.join(art_dir, f"{name}.journal"), "wb") as fh:
        fh.write(journal.dump())
    with open(os.path.join(art_dir, f"{name}.state.json"), "w") as fh:
        json.dump(journal.materialize(), fh, indent=2, sort_keys=True)


class TestCrashRecovery:
    def test_crash_mid_onboard_recovers_to_consistent_cluster(self):
        # Mutation 2 is the onboard's install-vm: the VM is journalled
        # but dies before reaching any gateway.
        ctrl, plan = journaled_controller(
            FaultSpec(FaultKind.CONTROLLER_CRASH, at_mutations=(2,)))
        with pytest.raises(ControllerCrash, match="install-vm"):
            onboard(ctrl)
        assert plan.injected(FaultKind.CONTROLLER_CRASH) == 1
        save_artifacts("crash-mid-onboard", ctrl.journal)

        recovered, writes = recover_into_new_controller(ctrl)
        cluster_id = recovered.plan.assignments[100]
        # The journalled VM was pushed to all 4 gateways during recovery.
        assert writes == 4
        assert recovered.consistency_check(cluster_id) == []
        assert recovered.probe(cluster_id).ok
        assert recovered.counters["recoveries"] == 1

    def test_crash_on_add_tenant_recovers_placement(self):
        ctrl, _plan = journaled_controller(
            FaultSpec(FaultKind.CONTROLLER_CRASH, at_mutations=(0,)))
        with pytest.raises(ControllerCrash, match="add-tenant"):
            onboard(ctrl)

        recovered, _writes = recover_into_new_controller(ctrl)
        # The tenant's placement survived even though no entry did.
        cluster_id = recovered.plan.assignments[100]
        assert recovered.balancer.cluster_for_vni(100) == cluster_id
        assert recovered.consistency_check(cluster_id) == []
        # The recovered controller keeps serving mutations.
        _profile, routes, _vms = tenant_payload(100)
        recovered.install_route(cluster_id, routes[0])
        assert recovered.consistency_check(cluster_id) == []

    def test_recovered_intent_matches_pre_crash_journal(self):
        ctrl, _plan = journaled_controller(
            FaultSpec(FaultKind.CONTROLLER_CRASH, at_mutations=(4,)))
        cluster_id, _routes, _vms = onboard(ctrl, vni=100)
        with pytest.raises(ControllerCrash):
            onboard(ctrl, vni=101, subnet="192.168.11.0/24", vm="192.168.11.2")

        recovered, _writes = recover_into_new_controller(ctrl)
        # The rebuilt desired state is exactly what the journal holds.
        assert recovered._intent_state() == ctrl.journal.materialize()
        assert recovered.consistency_check(cluster_id) == []

    def test_recovery_replays_snapshot_plus_tail(self):
        # Mutations: add-tenant 0, install-route 1, install-vm 2 (the
        # onboard), then post-snapshot install-route 3 and install-vm 4.
        ctrl, _plan = journaled_controller(
            FaultSpec(FaultKind.CONTROLLER_CRASH, at_mutations=(4,)))
        cluster_id, _routes, _vms = onboard(ctrl, vni=100)
        ctrl.snapshot()
        assert ctrl.journal.snapshot_seq == 2
        _profile, routes, vms = tenant_payload(101, subnet="192.168.11.0/24",
                                               vm="192.168.11.2")
        ctrl.install_route(cluster_id, routes[0])
        with pytest.raises(ControllerCrash):
            ctrl.install_vm(cluster_id, vms[0])
        save_artifacts("crash-after-snapshot", ctrl.journal)

        recovered, writes = recover_into_new_controller(ctrl)
        # Only the post-snapshot VM was missing from the gateways.
        assert writes == 4
        assert recovered.consistency_check(cluster_id) == []

    def test_same_seed_same_ops_byte_identical_journal(self):
        def run():
            ctrl, _plan = journaled_controller(
                FaultSpec(FaultKind.CONTROLLER_CRASH, at_mutations=(2,)),
                seed=23)
            with pytest.raises(ControllerCrash):
                onboard(ctrl)
            return ctrl.journal.dump()

        assert run() == run()

    def test_clean_run_journal_replays_without_faults(self):
        ctrl, plan = journaled_controller()
        cluster_id, _routes, _vms = onboard(ctrl)
        assert plan.injected(FaultKind.CONTROLLER_CRASH) == 0
        recovered, writes = recover_into_new_controller(ctrl)
        # Gateways already match the journal: recovery writes nothing.
        assert writes == 0
        assert recovered.consistency_check(cluster_id) == []
