"""Shared builders for the fault-injection suite: a two-member cluster
with a two-member hot backup, driven by the real controller."""

import ipaddress

from repro.cluster.cluster import GatewayCluster
from repro.cluster.ecmp import VniSteeredBalancer
from repro.core.controller import Controller, RouteEntry, VmEntry
from repro.core.splitting import ClusterCapacity, TableSplitter, TenantProfile
from repro.core.xgw_h import XgwH
from repro.net.addr import Prefix
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import RouteAction, Scope


def ip(text):
    return int(ipaddress.ip_address(text))


def make_controller():
    balancer = VniSteeredBalancer()
    splitter = TableSplitter(ClusterCapacity(routes=50, vms=500, traffic_bps=1e13))
    ctrl = Controller(splitter, balancer)
    counter = [0]

    def factory(cluster_id):
        counter[0] += 1
        nodes = [(f"{cluster_id}-gw{i}", XgwH(gateway_ip=counter[0] * 10 + i))
                 for i in range(2)]
        backup = GatewayCluster(
            f"{cluster_id}-backup",
            [(f"{cluster_id}-bk{i}", XgwH(gateway_ip=counter[0] * 100 + i))
             for i in range(2)],
        )
        return GatewayCluster(cluster_id, nodes, backup=backup)

    ctrl.set_cluster_factory(factory)
    return ctrl


def tenant_payload(vni, subnet="192.168.10.0/24", vm="192.168.10.2", nc="10.1.1.11"):
    routes = [RouteEntry(vni, Prefix.parse(subnet), RouteAction(Scope.LOCAL))]
    vms = [VmEntry(vni, ip(vm), 4, NcBinding(ip(nc)))]
    return TenantProfile(vni, len(routes), len(vms), 1e9), routes, vms


def onboard(controller, vni=100, **kwargs):
    profile, routes, vms = tenant_payload(vni, **kwargs)
    cluster_id = controller.add_tenant(profile, routes, vms)
    return cluster_id, routes, vms
