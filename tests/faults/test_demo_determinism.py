"""The ISSUE's acceptance demo, end to end:

inject route-write corruption on one member → ``consistency_check``
reports it → the reconcile loop repairs *only* the divergent key →
probe passes → counters reflect exactly one repair cycle — and the
whole run, repeated with the same seed, is bit-identical.
"""

from tests.faults.helpers import make_controller, onboard

from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.net.addr import Prefix
from repro.sim.engine import Engine

SEED = 2021


def run_demo(seed):
    """One full fault → detect → repair → probe cycle; returns every
    observable artifact of the run for bit-exact comparison."""
    plan = FaultPlan(seed=seed, specs=[
        FaultSpec(FaultKind.CORRUPT_ROUTE_WRITE, node="*-gw1", max_fires=1),
    ])
    ctrl = make_controller()
    FaultInjector(plan).arm_controller(ctrl)
    cluster_id, routes, _vms = onboard(ctrl)

    findings = ctrl.consistency_check(cluster_id)
    writes_after_onboard = plan.write_index

    engine = Engine()
    tick_trace = []
    engine.schedule_every(
        1.0, lambda: tick_trace.append(
            (engine.now, ctrl.is_admitted(cluster_id),
             len(ctrl.consistency_check(cluster_id)))),
        until=4.0)
    ctrl.reconcile_loop(engine, interval=1.0, until=4.0)
    engine.run()

    probe = ctrl.probe(cluster_id)
    return {
        "cluster_id": cluster_id,
        "findings": [(f.node, f.kind, repr(f.key), f.detail) for f in findings],
        "repair_writes": plan.write_index - writes_after_onboard,
        "counters": ctrl.counters.snapshot(),
        "fault_counters": plan.counters.snapshot(),
        "fault_log": [repr(f) for f in plan.log],
        "tick_trace": tick_trace,
        "probe": (probe.sent, probe.passed, tuple(probe.failures)),
        "events_processed": engine.events_processed,
        "final_now": engine.now,
    }


class TestDemo:
    def test_corruption_detected_repaired_probed(self):
        result = run_demo(SEED)
        cluster_id = result["cluster_id"]
        # Exactly one corrupted route, on exactly the targeted member.
        assert result["findings"] == [(
            f"{cluster_id}-gw1", "corrupt-route",
            repr((100, Prefix.parse("192.168.10.0/24"))),
            f"(100, {Prefix.parse('192.168.10.0/24')!r})",
        )]
        # The repair re-pushed only the one divergent key.
        assert result["repair_writes"] == 1
        # Counters reflect exactly one repair cycle.
        counters = result["counters"]
        assert counters["inconsistencies_found"] == 1
        assert counters["repair_cycles"] == 1
        assert counters["repairs_applied"] == 1
        assert counters.get("probes_failed", 0) == 0
        assert counters.get("retries_exhausted", 0) == 0
        assert counters["readmissions"] == 1
        # Probe passes on every member afterwards.
        sent, passed, failures = result["probe"]
        assert sent == passed == 4 and failures == ()

    def test_quarantine_lifted_after_first_cycle(self):
        result = run_demo(SEED)
        # The observer tick at t=n fires before the reconcile tick at
        # t=n (scheduled first): at t=1 the cluster is still divergent
        # and admitted (never checked); from t=2 on it is clean and
        # readmitted.
        assert result["tick_trace"] == [
            (1.0, True, 1), (2.0, True, 0), (3.0, True, 0), (4.0, True, 0),
        ]

    def test_same_seed_is_bit_identical(self):
        assert run_demo(SEED) == run_demo(SEED)

    def test_fault_log_is_exact(self):
        result = run_demo(SEED)
        assert result["fault_counters"] == {"injected.corrupt-route-write": 1}
        assert len(result["fault_log"]) == 1
        assert "corrupt-route-write" in result["fault_log"][0]
