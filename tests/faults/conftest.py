import pytest

from tests.faults.helpers import make_controller


@pytest.fixture
def controller():
    return make_controller()
