"""Two-phase transactional table updates: a mid-batch member fault must
never leave a partially-applied batch on any member, hot backup included."""

import ipaddress

import pytest

from tests.faults.helpers import make_controller, onboard

from repro.core.controller import RouteEntry, TransactionAborted, VmEntry
from repro.core.journal import ControllerCrash, Journal
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.net.addr import Prefix
from repro.tables.errors import TableError
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import RouteAction, Scope


def batch_routes(n, vni=100):
    return [RouteEntry(vni, Prefix.parse(f"10.{i}.0.0/16"), RouteAction(Scope.LOCAL))
            for i in range(n)]


def arm_after_onboard(*specs, seed=5):
    """Onboard cleanly, then arm — so write/mutation indices start at 0
    for the transaction under test."""
    ctrl = make_controller()
    ctrl.journal = Journal()
    cluster_id, routes, vms = onboard(ctrl)
    plan = FaultPlan(seed=seed, specs=list(specs))
    FaultInjector(plan).arm_controller(ctrl)
    return ctrl, plan, cluster_id, routes, vms


def installed_prefixes(gw, vni=100):
    return {p for v, p, _a in gw.tables.routing.items() if v == vni}


class TestCommit:
    def test_batch_commits_on_every_member_and_backup(self):
        ctrl, _plan, cluster_id, _routes, _vms = arm_after_onboard()
        batch = batch_routes(10)
        with ctrl.transaction(cluster_id) as txn:
            for route in batch:
                txn.install_route(route)
            txn.install_vm(VmEntry(100, int(ipaddress.ip_address("192.168.10.3")),
                                   4, NcBinding(int(ipaddress.ip_address("10.1.1.12")))))
        for member in ctrl.clusters[cluster_id].all_members():
            assert {r.prefix for r in batch} <= installed_prefixes(member.gateway)
        assert ctrl.route_count(cluster_id) == 11
        assert ctrl.consistency_check(cluster_id) == []
        assert ctrl.counters["txns_committed"] == 1
        ops = [r.op for r in ctrl.journal.records(after_seq=-1)]
        assert ops[-2:] == ["txn", "txn-commit"]

    def test_committed_batch_survives_replay(self):
        ctrl, _plan, cluster_id, _routes, _vms = arm_after_onboard()
        with ctrl.transaction(cluster_id) as txn:
            for route in batch_routes(3):
                txn.install_route(route)
        state = ctrl.journal.materialize()
        assert len(state["routes"][cluster_id]) == 1 + 3

    def test_raise_inside_block_discards_batch_untouched(self):
        ctrl, _plan, cluster_id, _routes, _vms = arm_after_onboard()
        appends_before = ctrl.journal.appends
        with pytest.raises(RuntimeError, match="caller bug"):
            with ctrl.transaction(cluster_id) as txn:
                txn.install_route(batch_routes(1)[0])
                raise RuntimeError("caller bug")
        assert ctrl.journal.appends == appends_before
        assert ctrl.route_count(cluster_id) == 1

    def test_empty_transaction_is_a_noop(self):
        ctrl, _plan, cluster_id, _routes, _vms = arm_after_onboard()
        appends_before = ctrl.journal.appends
        with ctrl.transaction(cluster_id):
            pass
        assert ctrl.journal.appends == appends_before


class TestAbort:
    def test_member_fault_mid_100_entry_batch_leaves_no_partial_state(self):
        # 100-route batch prepares member by member (gw0: writes 0-99,
        # gw1: 100-199, then the backups); write 150 dies on gw1 with 50
        # entries already prepared there and 100 on gw0.
        ctrl, plan, cluster_id, onboarded_routes, _vms = arm_after_onboard(
            FaultSpec(FaultKind.FAIL_ROUTE_WRITE, at_writes=(150,)))
        batch = batch_routes(100)
        with pytest.raises(TransactionAborted):
            with ctrl.transaction(cluster_id) as txn:
                for route in batch:
                    txn.install_route(route)
        assert plan.injected(FaultKind.FAIL_ROUTE_WRITE) == 1
        # Zero partially-applied entries anywhere — members and backups
        # hold exactly the pre-transaction table.
        for member in ctrl.clusters[cluster_id].all_members():
            assert installed_prefixes(member.gateway) == \
                {onboarded_routes[0].prefix}
        assert ctrl.route_count(cluster_id) == 1
        assert ctrl.consistency_check(cluster_id) == []
        assert ctrl.counters["txns_aborted"] == 1
        assert ctrl.counters["txn_rollback_failures"] == 0

    def test_abort_restores_overwritten_entry(self):
        ctrl, _plan, cluster_id, routes, _vms = arm_after_onboard(
            FaultSpec(FaultKind.FAIL_VM_WRITE, at_writes=(1,)))
        overwrite = RouteEntry(100, routes[0].prefix,
                               RouteAction(Scope.SERVICE, target="svc"))
        with pytest.raises(TransactionAborted):
            with ctrl.transaction(cluster_id) as txn:
                txn.install_route(overwrite)
                txn.install_vm(VmEntry(100, 1, 4, NcBinding(2)))
        # gw0 had the LOCAL route replaced by SERVICE, then rolled back.
        gw = ctrl.clusters[cluster_id].members()[0].gateway
        actions = {a.scope for v, _p, a in gw.tables.routing.items() if v == 100}
        assert actions == {Scope.LOCAL}
        assert ctrl.consistency_check(cluster_id) == []

    def test_aborted_batch_never_replays(self):
        ctrl, _plan, cluster_id, _routes, _vms = arm_after_onboard(
            FaultSpec(FaultKind.FAIL_ROUTE_WRITE, at_writes=(0,)))
        with pytest.raises(TransactionAborted):
            with ctrl.transaction(cluster_id) as txn:
                txn.install_route(batch_routes(1)[0])
        ops = [r.op for r in ctrl.journal.records(after_seq=-1)]
        assert ops[-2:] == ["txn", "txn-abort"]
        assert len(ctrl.journal.materialize()["routes"][cluster_id]) == 1

    def test_removing_unknown_entry_rejected_before_any_write(self):
        ctrl, plan, cluster_id, _routes, _vms = arm_after_onboard()
        appends_before = ctrl.journal.appends
        with pytest.raises(TableError, match="unknown entry"):
            with ctrl.transaction(cluster_id) as txn:
                txn.remove_route(100, Prefix.parse("203.0.113.0/24"))
        assert ctrl.journal.appends == appends_before
        assert plan.write_index == 0

    def test_batch_with_removes_rolls_back_removes_too(self):
        ctrl, _plan, cluster_id, routes, vms = arm_after_onboard(
            FaultSpec(FaultKind.FAIL_ROUTE_WRITE, at_writes=(2,)))
        # Ops per member: remove-vm (write 0), remove-route (1),
        # install-route (2, dies on gw0) — both removes must come back.
        with pytest.raises(TransactionAborted):
            with ctrl.transaction(cluster_id) as txn:
                txn.remove_vm(100, vms[0].vm_ip, 4)
                txn.remove_route(100, routes[0].prefix)
                txn.install_route(batch_routes(1)[0])
        assert ctrl.consistency_check(cluster_id) == []
        assert ctrl.probe(cluster_id).ok
        gw = ctrl.clusters[cluster_id].members()[0].gateway
        assert gw.split_vm_nc.lookup(100, vms[0].vm_ip, 4) == vms[0].binding


class TestFailingUndo:
    def test_undo_failure_reports_original_cause_and_leaves_repairable_residue(self):
        # gw0 prepares writes 0-2; gw1's first write (3) fails — the
        # original cause. Rollback then runs gw0's undos as writes 4-6,
        # and write 4 (removing batch[2]) fails too: one undo is lost.
        ctrl, plan, cluster_id, onboarded_routes, _vms = arm_after_onboard(
            FaultSpec(FaultKind.FAIL_ROUTE_WRITE, at_writes=(3, 4)))
        pre_txn = {m.name: installed_prefixes(m.gateway)
                   for m in ctrl.clusters[cluster_id].all_members()}
        batch = batch_routes(3)
        with pytest.raises(TransactionAborted) as excinfo:
            with ctrl.transaction(cluster_id) as txn:
                for route in batch:
                    txn.install_route(route)
        # The abort names the *prepare* failure, not the undo failure.
        cause = excinfo.value.__cause__
        assert isinstance(cause, TableError)
        assert "gw1" in str(cause) and "10.0.0.0/16" in str(cause)
        assert plan.injected(FaultKind.FAIL_ROUTE_WRITE) == 2
        assert ctrl.counters["txn_rollback_failures"] == 1
        # Desired state never changed; gw0 kept the entry whose undo
        # failed — visible residue, not silent corruption.
        assert ctrl.route_count(cluster_id) == 1
        gw0 = ctrl.clusters[cluster_id].members()[0].gateway
        assert batch[2].prefix in installed_prefixes(gw0)
        findings = ctrl.consistency_check(cluster_id)
        assert [f.kind for f in findings] == ["extra-route"]
        # Targeted repair restores the pre-transaction fabric exactly.
        applied, failed = ctrl.targeted_repair(cluster_id, findings)
        assert applied == 1 and failed == []
        assert {m.name: installed_prefixes(m.gateway)
                for m in ctrl.clusters[cluster_id].all_members()} == pre_txn
        assert ctrl.consistency_check(cluster_id) == []


class TestSideEffects:
    def test_failing_side_effect_unwinds_members_and_prior_effects(self):
        ctrl, _plan, cluster_id, onboarded_routes, _vms = arm_after_onboard()
        journal = []

        def effect(tag):
            journal.append(tag)

        def failing():
            raise TableError("side effect refused")

        with pytest.raises(TransactionAborted, match="side effect refused"):
            with ctrl.transaction(cluster_id) as txn:
                txn.install_route(batch_routes(1)[0])
                txn.stage_side_effect("first", lambda: effect("apply-1"),
                                      lambda: effect("undo-1"))
                txn.stage_side_effect("second", failing,
                                      lambda: effect("undo-2"))
        # The first effect applied, then unwound; the failing one never
        # needed (and never got) an undo.
        assert journal == ["apply-1", "undo-1"]
        # Every member rolled the route batch back too.
        for member in ctrl.clusters[cluster_id].all_members():
            assert installed_prefixes(member.gateway) == \
                {onboarded_routes[0].prefix}
        assert ctrl.counters["txns_aborted"] == 1

    def test_side_effect_only_transaction_is_not_journalled(self):
        ctrl, plan, cluster_id, _routes, _vms = arm_after_onboard()
        appends_before = ctrl.journal.appends
        ran = []
        with ctrl.transaction(cluster_id) as txn:
            txn.stage_side_effect("only", lambda: ran.append("apply"),
                                  lambda: ran.append("undo"))
        assert ran == ["apply"]
        # Non-journalled by design: a crash-recovered controller simply
        # never ran the effect, so nothing replays it.
        assert ctrl.journal.appends == appends_before
        assert plan.write_index == 0


class TestCrashDuringTransaction:
    def test_crash_between_txn_append_and_push_aborts_on_replay(self):
        ctrl, plan, cluster_id, _routes, _vms = arm_after_onboard(
            FaultSpec(FaultKind.CONTROLLER_CRASH, at_mutations=(0,)))
        with pytest.raises(ControllerCrash, match="txn"):
            with ctrl.transaction(cluster_id) as txn:
                for route in batch_routes(5):
                    txn.install_route(route)
        assert plan.injected(FaultKind.CONTROLLER_CRASH) == 1
        # No member ever saw the batch, and replay skips the unterminated
        # txn record — the journal and the gateways agree.
        assert plan.write_index == 0
        assert len(ctrl.journal.materialize()["routes"][cluster_id]) == 1
        assert ctrl.consistency_check(cluster_id) == []
