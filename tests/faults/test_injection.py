"""Every fault kind fires at least once and leaves exactly the damage
the §6.1 machinery is supposed to detect."""

import pytest

from tests.faults.helpers import make_controller, onboard, tenant_payload

from repro.cluster.health import HealthMonitor, Signal
from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    FaultyGateway,
)
from repro.sim.engine import Engine
from repro.tables.errors import TableError


def armed_controller(*specs, seed=7):
    plan = FaultPlan(seed=seed, specs=list(specs))
    injector = FaultInjector(plan)
    ctrl = make_controller()
    injector.arm_controller(ctrl)
    return ctrl, plan, injector


class TestWriteFaults:
    def test_drop_route_write_on_one_member(self):
        ctrl, plan, _ = armed_controller(
            FaultSpec(FaultKind.DROP_ROUTE_WRITE, node="*-gw1", max_fires=1))
        cluster_id, _routes, _vms = onboard(ctrl)
        findings = ctrl.consistency_check(cluster_id)
        assert [(f.node, f.kind) for f in findings] == [
            (f"{cluster_id}-gw1", "missing-route")
        ]
        assert plan.injected(FaultKind.DROP_ROUTE_WRITE) == 1

    def test_corrupt_route_write_detected_as_corrupt(self):
        ctrl, plan, _ = armed_controller(
            FaultSpec(FaultKind.CORRUPT_ROUTE_WRITE, node="*-gw0", max_fires=1))
        cluster_id, routes, _vms = onboard(ctrl)
        findings = ctrl.consistency_check(cluster_id)
        assert [(f.node, f.kind) for f in findings] == [
            (f"{cluster_id}-gw0", "corrupt-route")
        ]
        assert findings[0].key == (100, routes[0].prefix)
        assert plan.injected(FaultKind.CORRUPT_ROUTE_WRITE) == 1

    def test_drop_vm_write(self):
        ctrl, plan, _ = armed_controller(
            FaultSpec(FaultKind.DROP_VM_WRITE, node="*-gw0", max_fires=1))
        cluster_id, _routes, vms = onboard(ctrl)
        findings = ctrl.consistency_check(cluster_id)
        assert [(f.node, f.kind) for f in findings] == [
            (f"{cluster_id}-gw0", "missing-vm")
        ]
        assert findings[0].key == (100, vms[0].vm_ip, 4)
        assert plan.injected(FaultKind.DROP_VM_WRITE) == 1

    def test_corrupt_vm_write_fails_probe(self):
        ctrl, plan, _ = armed_controller(
            FaultSpec(FaultKind.CORRUPT_VM_WRITE, node="*-gw1", max_fires=1))
        cluster_id, _routes, _vms = onboard(ctrl)
        findings = ctrl.consistency_check(cluster_id)
        assert [(f.node, f.kind) for f in findings] == [
            (f"{cluster_id}-gw1", "corrupt-vm")
        ]
        report = ctrl.probe(cluster_id)
        # The mis-pointed NC answers the probe with the wrong rewrite.
        assert len(report.failures) == 1
        assert report.failures[0].startswith(f"{cluster_id}-gw1:")
        assert plan.injected(FaultKind.CORRUPT_VM_WRITE) == 1

    def test_fail_route_write_raises_table_error(self):
        ctrl, plan, _ = armed_controller(
            FaultSpec(FaultKind.FAIL_ROUTE_WRITE, max_fires=1))
        with pytest.raises(TableError, match="injected fail-route-write"):
            onboard(ctrl)
        assert plan.injected(FaultKind.FAIL_ROUTE_WRITE) == 1

    def test_fail_vm_write_raises_table_error(self):
        ctrl, plan, _ = armed_controller(
            FaultSpec(FaultKind.FAIL_VM_WRITE, max_fires=1))
        with pytest.raises(TableError, match="injected fail-vm-write"):
            onboard(ctrl)
        assert plan.injected(FaultKind.FAIL_VM_WRITE) == 1

    def test_partial_onboard_stops_replication_mid_tenant(self):
        # The first 4 writes (the route, fanned out to 2 members + 2
        # backups) land; every later write of the onboard is lost.
        ctrl, plan, _ = armed_controller(
            FaultSpec(FaultKind.PARTIAL_ONBOARD, after_onboard_writes=4))
        cluster_id, _routes, _vms = onboard(ctrl)
        findings = ctrl.consistency_check(cluster_id)
        assert {f.kind for f in findings} == {"missing-vm"}
        assert len(findings) == 4  # all members + backups miss the VM
        assert plan.injected(FaultKind.PARTIAL_ONBOARD) == 4
        # Writes outside an onboard window are untouched.
        profile, routes, vms = tenant_payload(101, subnet="192.168.11.0/24",
                                              vm="192.168.11.2")
        ctrl.install_route(cluster_id, routes[0])
        assert len(ctrl.consistency_check(cluster_id)) == 4

    def test_stale_backup_diverges_only_backup_members(self):
        ctrl, plan, _ = armed_controller(FaultSpec(FaultKind.STALE_BACKUP))
        cluster_id, _routes, _vms = onboard(ctrl)
        findings = ctrl.consistency_check(cluster_id)
        assert len(findings) == 4  # 2 backup members × (route + vm)
        assert {f.node for f in findings} == {
            f"{cluster_id}-bk0", f"{cluster_id}-bk1"
        }
        assert plan.injected(FaultKind.STALE_BACKUP) == 4

    def test_probability_faults_are_seeded(self):
        def run(seed):
            ctrl, plan, _ = armed_controller(
                FaultSpec(FaultKind.DROP_ROUTE_WRITE, probability=0.5),
                seed=seed)
            onboard(ctrl)
            return [f.write_index for f in plan.log]

        assert run(3) == run(3)


class TestRemoveFaults:
    """Delete-path interception: removes advance the same global write
    index as installs and can be dropped or failed like any write."""

    def test_dropped_route_remove_leaves_extra_route(self):
        # The onboard is 8 clean writes; write 8 is the remove on gw0.
        ctrl, plan, _ = armed_controller(
            FaultSpec(FaultKind.DROP_ROUTE_WRITE, at_writes=(8,)))
        cluster_id, routes, _vms = onboard(ctrl)
        ctrl.remove_route(cluster_id, 100, routes[0].prefix)
        findings = ctrl.consistency_check(cluster_id)
        assert [(f.node, f.kind) for f in findings] == [
            (f"{cluster_id}-gw0", "extra-route")
        ]
        assert plan.injected(FaultKind.DROP_ROUTE_WRITE) == 1

    def test_reconcile_repairs_surviving_route(self):
        ctrl, _plan, _ = armed_controller(
            FaultSpec(FaultKind.DROP_ROUTE_WRITE, at_writes=(8,)))
        cluster_id, routes, _vms = onboard(ctrl)
        ctrl.remove_route(cluster_id, 100, routes[0].prefix)
        engine = Engine()
        ctrl.reconcile_loop(engine, interval=1.0, until=3.0)
        engine.run()
        assert ctrl.consistency_check(cluster_id) == []
        gw = ctrl.clusters[cluster_id].members()[0].gateway
        assert gw.route_count() == 0

    def test_failed_route_remove_raises(self):
        ctrl, plan, _ = armed_controller(
            FaultSpec(FaultKind.FAIL_ROUTE_WRITE, at_writes=(8,)))
        cluster_id, routes, _vms = onboard(ctrl)
        with pytest.raises(TableError, match="injected fail-route-write"):
            ctrl.remove_route(cluster_id, 100, routes[0].prefix)
        assert plan.injected(FaultKind.FAIL_ROUTE_WRITE) == 1

    def test_failed_vm_remove_raises(self):
        ctrl, plan, _ = armed_controller(
            FaultSpec(FaultKind.FAIL_VM_WRITE, at_writes=(8,)))
        cluster_id, _routes, vms = onboard(ctrl)
        with pytest.raises(TableError, match="injected fail-vm-write"):
            ctrl.remove_vm(cluster_id, 100, vms[0].vm_ip, 4)
        assert plan.injected(FaultKind.FAIL_VM_WRITE) == 1

    def test_dropped_vm_remove_is_a_known_blind_spot(self):
        # Extra VM bindings cannot be enumerated from the digest-compressed
        # table, so a surviving binding is invisible to consistency_check —
        # the documented one-way VM comparison.
        ctrl, plan, _ = armed_controller(
            FaultSpec(FaultKind.DROP_VM_WRITE, at_writes=(8,)))
        cluster_id, _routes, vms = onboard(ctrl)
        ctrl.remove_vm(cluster_id, 100, vms[0].vm_ip, 4)
        gw = ctrl.clusters[cluster_id].members()[0].gateway
        assert gw.split_vm_nc.lookup(100, vms[0].vm_ip, 4) is not None
        assert ctrl.consistency_check(cluster_id) == []
        assert plan.injected(FaultKind.DROP_VM_WRITE) == 1


class TestScheduledFaults:
    def test_member_crash_goes_through_health(self):
        ctrl, plan, injector = armed_controller(
            FaultSpec(FaultKind.MEMBER_CRASH, node="*-gw0", at_time=5.0))
        cluster_id, _routes, _vms = onboard(ctrl)
        monitor = HealthMonitor()
        monitor.set_level(Signal.NODE_DOWN, threshold=1.0)
        engine = Engine()
        assert injector.schedule(engine, ctrl.clusters, monitor=monitor) == 1
        engine.run()
        member = ctrl.clusters[cluster_id].member(f"{cluster_id}-gw0")
        assert member.state.value == "offline"
        assert len(monitor.alerts_for(f"{cluster_id}/{cluster_id}-gw0")) == 1
        assert plan.injected(FaultKind.MEMBER_CRASH) == 1

    def test_member_flap_returns_after_downtime(self):
        ctrl, plan, injector = armed_controller(
            FaultSpec(FaultKind.MEMBER_FLAP, node="*-gw1", at_time=2.0,
                      down_for=3.0))
        cluster_id, _routes, _vms = onboard(ctrl)
        engine = Engine()
        injector.schedule(engine, ctrl.clusters)
        engine.run(until=4.0)
        member = ctrl.clusters[cluster_id].member(f"{cluster_id}-gw1")
        assert member.state.value == "offline"
        engine.run()
        assert member.state.value == "active"
        details = [f.detail for f in plan.log
                   if f.kind is FaultKind.MEMBER_FLAP]
        assert details == ["offline", "online"]


class TestArming:
    def test_proxy_delegates_reads(self, controller):
        plan = FaultPlan(seed=1)
        FaultInjector(plan).arm_controller(controller)
        cluster_id, _routes, vms = onboard(controller)
        gw = controller.clusters[cluster_id].members()[0].gateway
        assert isinstance(gw, FaultyGateway)
        assert gw.route_count() == 1 and gw.vm_count() == 1
        assert gw.split_vm_nc.lookup(100, vms[0].vm_ip, 4) is not None
        assert gw.wrapped.route_count() == 1

    def test_arming_twice_does_not_double_wrap(self, controller):
        injector = FaultInjector(FaultPlan(seed=1))
        cluster_id, _routes, _vms = onboard(controller)
        cluster = controller.clusters[cluster_id]
        injector.arm_cluster(cluster)
        injector.arm_cluster(cluster)
        gw = cluster.members()[0].gateway
        assert isinstance(gw, FaultyGateway)
        assert not isinstance(gw.wrapped, FaultyGateway)

    def test_clean_plan_is_transparent(self):
        ctrl, plan, _ = armed_controller()  # no specs
        cluster_id, _routes, _vms = onboard(ctrl)
        assert ctrl.consistency_check(cluster_id) == []
        assert ctrl.probe(cluster_id).ok
        assert plan.log == [] and plan.write_index == 8
