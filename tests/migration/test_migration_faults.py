"""Migration under injected faults: every phase either completes or
rolls back to the source binding, and a controller crash mid-commit
leaves residue the audit detects and the repair bridge clears."""

from tests.migration.helpers import (
    NEW_NC,
    OLD_NC,
    VM_IP,
    VNI,
    drive,
    make_controller,
    onboard,
)

from repro.audit import AuditScanner, RepairBridge
from repro.cluster.cluster import NodeState
from repro.cluster.ecmp import VniSteeredBalancer
from repro.core.controller import Controller
from repro.core.splitting import ClusterCapacity, TableSplitter
from repro.dataplane.gateway_logic import DropReason, ForwardAction
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.migration import EndpointMigrator, MigrationStatus
from repro.sim.engine import Engine
from repro.tables.vm_nc import NcBinding


def armed_setup(*specs, seed=7, x86=False, buffer_capacity=256):
    ctrl = make_controller(x86=x86)
    cluster_id, _vms = onboard(ctrl)
    plan = FaultPlan(seed=seed, specs=list(specs))
    injector = FaultInjector(plan)
    injector.arm_controller(ctrl)
    engine = Engine()
    migrator = EndpointMigrator(ctrl, cluster_id, engine,
                                blackout_budget=1.0, copy_time=0.5,
                                buffer_capacity=buffer_capacity)
    injector.arm_migrator(migrator)
    return ctrl, cluster_id, engine, migrator, plan, injector


def recover_into_new_controller(crashed):
    """Stand up a fresh controller over the survivors' clusters (only
    the controller process died; the gateways kept their state)."""
    ctrl = Controller(
        TableSplitter(ClusterCapacity(routes=50, vms=500, traffic_bps=1e13)),
        VniSteeredBalancer(),
        clusters=crashed.clusters,
    )
    ctrl.recover(crashed.journal)
    return ctrl


def residue_findings(findings):
    return [f for f in findings if f.invariant == "migration-residue"]


class TestControllerCrashMidCommit:
    def run_crash(self):
        ctrl, cluster_id, engine, migrator, plan, _inj = armed_setup(
            FaultSpec(FaultKind.CONTROLLER_CRASH, at_mutations=(0,)))
        log = drive(engine, ctrl, cluster_id, until=1.4)
        mid = migrator.migrate_vm(VNI, VM_IP, 4, NcBinding(NEW_NC),
                                  start=1.0)
        engine.run()
        return ctrl, cluster_id, migrator, migrator.records[mid], plan, log

    def test_crash_leaves_detectable_residue(self):
        ctrl, cluster_id, _migrator, record, plan, _log = self.run_crash()
        assert plan.injected(FaultKind.CONTROLLER_CRASH) == 1
        assert record.status == MigrationStatus.CRASHED
        # No member saw the flip; the freeze/shadow state is stranded.
        for member in ctrl.clusters[cluster_id].members():
            assert member.gateway.split_vm_nc.lookup(VNI, VM_IP, 4).nc_ip \
                == OLD_NC
            assert member.gateway.migration.active()
        recovered = recover_into_new_controller(ctrl)
        assert recovered.active_migrations == set()  # not journalled
        findings = AuditScanner(recovered).full_scan()
        residue = residue_findings(findings)
        kinds = sorted(f.kind for f in residue)
        # One orphaned freeze and one shadow binding per member.
        assert kinds == ["orphaned-freeze", "orphaned-freeze",
                         "shadow-binding", "shadow-binding"]
        assert all(record.migration_id in f.detail for f in residue)

    def test_repair_clears_residue_with_zero_connection_loss(self):
        ctrl, cluster_id, _migrator, record, _plan, log = self.run_crash()
        buffered = [r for _t, r in log if r.action is ForwardAction.BUFFERED]
        assert buffered  # packets really were stranded in the freeze
        recovered = recover_into_new_controller(ctrl)
        scanner = AuditScanner(recovered)
        bridge = RepairBridge(recovered).attach(scanner)
        scanner.full_scan()  # detect + repair via the cycle hook
        assert bridge.counters["residue_cleared"] == 2  # one per member
        assert bridge.counters["residue_replayed"] == len(buffered)
        # One audit cycle later: zero residue, nothing frozen anywhere.
        assert residue_findings(scanner.full_scan()) == []
        for member in recovered.clusters[cluster_id].members():
            assert not member.gateway.migration.active()
        # The endpoint still forwards on the source binding.
        engine = Engine()
        post = drive(engine, recovered, cluster_id, until=0.3)
        engine.run()
        assert post and all(r.action is ForwardAction.DELIVER_NC
                            and r.nc_ip == OLD_NC for _t, r in post)
        assert record.status == MigrationStatus.CRASHED


class TestMemberCrashDuringFreeze:
    def test_replay_moves_to_a_surviving_member(self):
        ctrl, cluster_id, engine, migrator, plan, injector = armed_setup(
            FaultSpec(FaultKind.MEMBER_CRASH, node="*gw0", at_time=1.3))
        injector.schedule(engine, ctrl.clusters)
        log = drive(engine, ctrl, cluster_id, until=1.25)
        mid = migrator.migrate_vm(VNI, VM_IP, 4, NcBinding(NEW_NC),
                                  start=1.0)
        engine.run()
        record = migrator.records[mid]
        assert plan.injected(FaultKind.MEMBER_CRASH) == 1
        assert ctrl.clusters[cluster_id].member(f"{cluster_id}-gw0").state \
            is NodeState.OFFLINE
        # The packets gw0 buffered replayed through the surviving member
        # against the committed tables: zero loss.
        assert record.status == MigrationStatus.COMMITTED
        buffered = sum(1 for _t, r in log
                       if r.action is ForwardAction.BUFFERED)
        assert buffered > 0
        assert record.replayed == buffered and record.replay_lost == 0
        survivor = ctrl.clusters[cluster_id].member(f"{cluster_id}-gw1")
        assert survivor.gateway.split_vm_nc.lookup(VNI, VM_IP, 4).nc_ip \
            == NEW_NC


class TestBufferOverflow:
    def test_overflow_rolls_back_to_source_binding(self):
        ctrl, cluster_id, engine, migrator, _plan, _inj = armed_setup(
            buffer_capacity=2, x86=True)
        log = drive(engine, ctrl, cluster_id, until=3.0, interval=0.05)
        mid = migrator.migrate_vm(VNI, VM_IP, 4, NcBinding(NEW_NC),
                                  start=1.0)
        engine.run()
        record = migrator.records[mid]
        assert record.status == MigrationStatus.ROLLED_BACK
        assert record.reason == "buffer-overflow"
        overflow = [r for _t, r in log
                    if r.detail == DropReason.MIGRATION_BUFFER_OVERFLOW.value]
        assert overflow and all(r.action is ForwardAction.DROP
                                for r in overflow)
        # The two parked packets came back out; the binding never moved.
        assert record.replayed == 2 and record.replay_lost == 0
        after = [r for t, r in log if t >= 1.6]
        assert after and all(r.action is ForwardAction.DELIVER_NC
                             and r.nc_ip == OLD_NC for r in after)

    def test_per_reason_drop_counters_conserve(self):
        ctrl, cluster_id, engine, migrator, _plan, _inj = armed_setup(
            buffer_capacity=2, x86=True)
        drive(engine, ctrl, cluster_id, until=3.0, interval=0.05)
        migrator.migrate_vm(VNI, VM_IP, 4, NcBinding(NEW_NC), start=1.0)
        engine.run()
        gw = ctrl.clusters[cluster_id].members()[0].gateway
        assert gw.counters[DropReason.MIGRATION_BUFFER_OVERFLOW.counter] > 0
        assert gw.counters["action_buffered"] == 2
        # The audit's counter-conservation identity still holds with
        # buffered and migration-dropped packets in the mix.
        findings = AuditScanner(ctrl).full_scan()
        assert [f for f in findings
                if f.invariant == "counter-conservation"] == []


class TestMigrationStalls:
    def test_commit_stall_past_deadline_rolls_back(self):
        ctrl, cluster_id, engine, migrator, plan, _inj = armed_setup(
            FaultSpec(FaultKind.MIGRATION_STALL, at_phase="commit",
                      stall_for=2.0))
        log = drive(engine, ctrl, cluster_id, until=5.0)
        mid = migrator.migrate_vm(VNI, VM_IP, 4, NcBinding(NEW_NC),
                                  start=1.0)
        engine.run()
        record = migrator.records[mid]
        assert plan.injected(FaultKind.MIGRATION_STALL) == 1
        assert record.status == MigrationStatus.ROLLED_BACK
        assert record.reason == "blackout-budget-exceeded"
        # Arrivals past the deadline were dropped under the blackout
        # reason while the stall hung the commit.
        blackout = [r for _t, r in log
                    if r.detail == DropReason.MIGRATION_BLACKOUT.value]
        assert blackout
        # After the rollback the source binding serves again.
        after = [r for t, r in log if t >= 3.6]
        assert after and all(r.nc_ip == OLD_NC for r in after)
        assert "stalled" in [e.phase for e in migrator.events]

    def test_precopy_stall_shifts_the_window_and_commits(self):
        ctrl, cluster_id, engine, migrator, plan, _inj = armed_setup(
            FaultSpec(FaultKind.MIGRATION_STALL, at_phase="pre-copy",
                      stall_for=0.7))
        log = drive(engine, ctrl, cluster_id, until=4.0)
        mid = migrator.migrate_vm(VNI, VM_IP, 4, NcBinding(NEW_NC),
                                  start=1.0)
        engine.run()
        record = migrator.records[mid]
        assert plan.injected(FaultKind.MIGRATION_STALL) == 1
        assert record.status == MigrationStatus.COMMITTED
        # Nothing was frozen during the stall: the window simply shifted.
        assert record.started_at == 1.7
        stalled_span = [r for t, r in log if 1.0 <= t < 1.7]
        assert all(r.action is ForwardAction.DELIVER_NC
                   for r in stalled_span)
        assert record.replay_lost == 0
        after = [r for t, r in log if t >= 2.3]
        assert after and all(r.nc_ip == NEW_NC for r in after)
