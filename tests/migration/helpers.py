"""Shared builders for the live-migration suite: a journaled two-member
cluster (XGW-H by default, XGW-x86 with SNAT on demand) carrying one
LOCAL-subnet tenant, plus a traffic driver that records every forward
outcome with its timestamp."""

import ipaddress

from repro.cluster.cluster import GatewayCluster
from repro.cluster.ecmp import VniSteeredBalancer
from repro.core.controller import (
    Controller,
    RouteEntry,
    VmEntry,
    build_probe_packet,
)
from repro.core.journal import Journal
from repro.core.splitting import ClusterCapacity, TableSplitter, TenantProfile
from repro.core.xgw_h import XgwH
from repro.net.addr import Prefix
from repro.tables.snat import SnatTable
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import RouteAction, Scope
from repro.x86.gateway import XgwX86


def ip(text):
    return int(ipaddress.ip_address(text))


VNI = 100
VM_IP = ip("192.168.10.2")
NEW_VM_IP = ip("192.168.10.3")
OLD_NC = ip("10.1.1.11")
NEW_NC = ip("10.1.1.99")
PUBLIC_IP = ip("203.0.113.1")


def make_controller(x86=False, snat=False, members=2):
    ctrl = Controller(
        TableSplitter(ClusterCapacity(routes=50, vms=500, traffic_bps=1e13)),
        VniSteeredBalancer(),
        journal=Journal(),
    )

    def factory(cluster_id):
        nodes = []
        for i in range(members):
            if x86:
                table = SnatTable(public_ips=[PUBLIC_IP]) if snat else None
                gw = XgwX86(gateway_ip=0x0AC00000 + i, snat=table)
            else:
                gw = XgwH(gateway_ip=0x0AC00000 + i)
            nodes.append((f"{cluster_id}-gw{i}", gw))
        return GatewayCluster(cluster_id, nodes)

    ctrl.set_cluster_factory(factory)
    return ctrl


def onboard(ctrl, vni=VNI, subnet="192.168.10.0/24", vm_ip=VM_IP,
            nc_ip=OLD_NC):
    routes = [RouteEntry(vni, Prefix.parse(subnet), RouteAction(Scope.LOCAL))]
    vms = [VmEntry(vni, vm_ip, 4, NcBinding(nc_ip))]
    cluster_id = ctrl.add_tenant(
        TenantProfile(vni, len(routes), len(vms), 1e9), routes, vms)
    return cluster_id, vms


def drive(engine, ctrl, cluster_id, vni=VNI, vm_ip=VM_IP, interval=0.1,
          until=3.0, member_index=0):
    """Forward one probe towards *vm_ip* every *interval* through one
    member; returns the growing ``(time, ForwardResult)`` log."""
    packet = build_probe_packet(vni, vm_ip)
    log = []

    def tick():
        member = ctrl.clusters[cluster_id].members()[member_index]
        log.append((engine.now, member.gateway.forward(packet, engine.now)))

    engine.schedule_every(interval, tick, until=until)
    return log
