"""The gateway-side freeze machinery: the bounded MigrationBuffer and
the per-gateway MigrationState intercept."""

from tests.migration.helpers import VM_IP, VNI

from repro.core.controller import build_probe_packet
from repro.dataplane.gateway_logic import DropReason, ForwardAction
from repro.dataplane.migration import (
    BufferedPacket,
    MigrationBuffer,
    MigrationState,
    ensure_migration_state,
)
from repro.faults import FaultPlan, FaultyGateway

KEY = (VNI, VM_IP, 4)
PACKET = build_probe_packet(VNI, VM_IP)


def parked(migration_id, n):
    return [BufferedPacket(migration_id, KEY, PACKET, float(i))
            for i in range(n)]


class TestMigrationBuffer:
    def test_drain_is_fifo_and_per_migration(self):
        buf = MigrationBuffer(capacity=8)
        items = parked("a", 3) + parked("b", 2)
        for item in items:
            assert buf.push(item)
        drained = buf.drain("a")
        assert drained == items[:3]  # FIFO, only migration "a"
        assert len(buf) == 2 and buf.drain("b") == items[3:]
        assert buf.drain("a") == []

    def test_capacity_bound_counts_overflow(self):
        buf = MigrationBuffer(capacity=2)
        a, b, c = parked("a", 3)
        assert buf.push(a) and buf.push(b)
        assert buf.full
        assert not buf.push(c)
        assert buf.overflowed == 1 and buf.buffered == 2
        # The rejected packet is not silently queued.
        assert buf.drain("a") == [a, b]

    def test_capacity_is_shared_across_migrations(self):
        buf = MigrationBuffer(capacity=1)
        assert buf.push(parked("a", 1)[0])
        assert not buf.push(parked("b", 1)[0])
        assert buf.overflowed == 1


class TestIntercept:
    def test_unfrozen_endpoint_passes_through(self):
        state = MigrationState()
        assert state.intercept(PACKET, now=0.0) is None
        state.freeze((VNI, VM_IP + 1, 4), "m1", now=0.0, deadline=1.0)
        assert state.intercept(PACKET, now=0.5) is None  # other endpoint

    def test_frozen_endpoint_buffers(self):
        state = MigrationState()
        state.freeze(KEY, "m1", now=0.0, deadline=1.0)
        result = state.intercept(PACKET, now=0.5)
        assert result.action is ForwardAction.BUFFERED
        assert result.detail == "migration-freeze"
        assert [p.packet for p in state.drain("m1")] == [PACKET]

    def test_past_deadline_drops_under_blackout(self):
        state = MigrationState()
        state.freeze(KEY, "m1", now=0.0, deadline=1.0)
        result = state.intercept(PACKET, now=1.5)
        assert result.action is ForwardAction.DROP
        assert result.detail == DropReason.MIGRATION_BLACKOUT.value
        assert len(state.buffer) == 0

    def test_full_buffer_drops_under_overflow(self):
        state = MigrationState(capacity=1)
        state.freeze(KEY, "m1", now=0.0, deadline=9.0)
        assert state.intercept(PACKET, now=0.1).action is ForwardAction.BUFFERED
        result = state.intercept(PACKET, now=0.2)
        assert result.action is ForwardAction.DROP
        assert result.detail == DropReason.MIGRATION_BUFFER_OVERFLOW.value
        assert state.buffer.overflowed == 1

    def test_non_vxlan_never_intercepted(self):
        state = MigrationState()
        state.freeze(KEY, "m1", now=0.0, deadline=1.0)
        assert state.intercept(PACKET.decap(), now=0.5) is None

    def test_abort_tears_down_everything(self):
        state = MigrationState()
        state.freeze(KEY, "m1", now=0.0, deadline=1.0)
        state.install_shadow(KEY, "m1", 0x0A010163)
        state.intercept(PACKET, now=0.5)
        assert state.active()
        drained = state.abort("m1")
        assert [p.packet for p in drained] == [PACKET]
        assert not state.active()
        assert state.intercept(PACKET, now=0.6) is None


class TestEnsureMigrationState:
    def test_idempotent_per_gateway(self):
        class Gw:
            pass

        gw = Gw()
        state = ensure_migration_state(gw, capacity=4)
        assert ensure_migration_state(gw) is state
        assert gw.migration is state
        assert state.buffer.capacity == 4

    def test_unwraps_fault_proxy_to_inner_gateway(self):
        class Gw:
            pass

        inner = Gw()
        proxy = FaultyGateway(inner, FaultPlan(seed=1), "c0", "gw0")
        state = ensure_migration_state(proxy)
        assert inner.migration is state
        # The proxy delegates the attribute, so both views agree.
        assert proxy.migration is state
