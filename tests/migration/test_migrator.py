"""The migration protocol's happy paths: hitless single-VM moves, batch
NC drains, SNAT connection preservation, and the byte-stable event log."""

from dataclasses import replace

import pytest

from tests.migration.helpers import (
    NEW_NC,
    NEW_VM_IP,
    OLD_NC,
    PUBLIC_IP,
    VM_IP,
    VNI,
    drive,
    ip,
    make_controller,
    onboard,
)

from repro.core.controller import VmEntry
from repro.dataplane.gateway_logic import ForwardAction
from repro.migration import EndpointMigrator, MigrationStatus
from repro.net.headers import UDP
from repro.sim.engine import Engine
from repro.tables.vm_nc import NcBinding
from repro.workloads.traffic import build_vxlan_packet


def run_clean_migration(start=1.0, until=3.0, interval=0.1):
    ctrl = make_controller()
    cluster_id, _vms = onboard(ctrl)
    engine = Engine()
    log = drive(engine, ctrl, cluster_id, until=until, interval=interval)
    migrator = EndpointMigrator(ctrl, cluster_id, engine,
                                blackout_budget=1.0, copy_time=0.5)
    mid = migrator.migrate_vm(VNI, VM_IP, 4, NcBinding(NEW_NC), start=start)
    engine.run()
    return ctrl, migrator, migrator.records[mid], log


class TestCleanMigration:
    def test_phases_and_zero_loss(self):
        ctrl, migrator, record, log = run_clean_migration()
        assert record.status == MigrationStatus.COMMITTED
        assert record.replay_lost == 0
        # Before the freeze: delivered on the source binding.
        before = [r for t, r in log if t < 1.0]
        assert before and all(r.action is ForwardAction.DELIVER_NC
                              and r.nc_ip == OLD_NC for r in before)
        # Inside the freeze window: parked, never dropped.
        during = [r for t, r in log if 1.0 <= t < 1.5]
        assert during and all(r.action is ForwardAction.BUFFERED
                              for r in during)
        # After commit: delivered on the destination binding.
        after = [r for t, r in log if t >= 1.5]
        assert after and all(r.action is ForwardAction.DELIVER_NC
                             and r.nc_ip == NEW_NC for r in after)
        # Every parked packet was replayed, none lost.
        assert record.replayed == len(during)
        assert migrator.summary() == {MigrationStatus.COMMITTED: 1}
        assert ctrl.active_migrations == set()
        assert ctrl.consistency_check(next(iter(ctrl.clusters))) == []

    def test_added_latency_bounded_by_blackout_budget(self):
        _ctrl, migrator, record, _log = run_clean_migration()
        assert record.replay_latencies
        assert record.added_p99_latency <= migrator.blackout_budget
        assert max(record.replay_latencies) <= migrator.blackout_budget

    def test_no_residue_on_any_member(self):
        ctrl, _migrator, _record, _log = run_clean_migration()
        for cluster in ctrl.clusters.values():
            for member in cluster.all_members():
                state = member.gateway.migration
                assert state is not None and not state.active()
                assert len(state.buffer) == 0

    def test_event_log_is_byte_identical_across_runs(self):
        _ctrl, first, _r, _l = run_clean_migration()
        _ctrl, second, _r, _l = run_clean_migration()
        dump = first.dump_events()
        assert dump == second.dump_events()
        phases = [line.split(b"|")[2] for line in dump.splitlines()]
        assert phases == [b"pre-copy", b"freeze", b"commit", b"replay",
                          b"committed"]


class TestDrainNc:
    def test_drains_every_vm_on_the_nc_staggered(self):
        ctrl = make_controller()
        cluster_id, _vms = onboard(ctrl)
        other_vm = ip("192.168.10.7")
        ctrl.install_vm(cluster_id, VmEntry(VNI, other_vm, 4,
                                            NcBinding(OLD_NC)))
        bystander = ip("192.168.10.8")
        ctrl.install_vm(cluster_id, VmEntry(VNI, bystander, 4,
                                            NcBinding(ip("10.1.1.12"))))
        engine = Engine()
        migrator = EndpointMigrator(ctrl, cluster_id, engine,
                                    blackout_budget=1.0, copy_time=0.5)
        ids = migrator.drain_nc(OLD_NC, NEW_NC)
        assert len(ids) == 2
        engine.run()
        assert migrator.summary() == {MigrationStatus.COMMITTED: 2}
        # Both endpoints left the drained NC; the bystander stayed put.
        bindings = {e.vm_ip: e.binding.nc_ip
                    for e in ctrl.vm_entries(cluster_id)}
        assert bindings[VM_IP] == NEW_NC and bindings[other_vm] == NEW_NC
        assert bindings[bystander] == ip("10.1.1.12")
        # Staggered: freeze windows never overlap.
        windows = sorted((r.started_at, r.deadline)
                         for r in migrator.records.values())
        assert windows[0][1] <= windows[1][0]

    def test_drain_of_empty_nc_is_a_noop(self):
        ctrl = make_controller()
        cluster_id, _vms = onboard(ctrl)
        engine = Engine()
        migrator = EndpointMigrator(ctrl, cluster_id, engine)
        assert migrator.drain_nc(ip("10.9.9.9"), NEW_NC) == []


class TestSnatPreservation:
    def request_packet(self, src=VM_IP, sport=5555):
        return build_vxlan_packet(vni=VNI, src_ip=src,
                                  dst_ip=ip("93.184.216.34"),
                                  src_port=sport, dst_port=80,
                                  payload=b"GET /")

    def response_to(self, out):
        return replace(
            out,
            ip=type(out.ip)(src=out.ip.dst, dst=out.ip.src,
                            proto=out.ip.proto),
            l4=UDP(src_port=out.l4.dst_port, dst_port=out.l4.src_port),
            payload=b"200 OK",
        )

    def test_readdressing_move_preserves_public_tuples(self):
        ctrl = make_controller(x86=True, snat=True)
        cluster_id, _vms = onboard(ctrl)
        engine = Engine()
        services = [m.gateway.snat_service
                    for m in ctrl.clusters[cluster_id].members()]
        # Establish a session on every member before the move.
        outs = [svc.handle_request(self.request_packet(), now=0.0).packet
                for svc in services]
        assert all(out.ip.src == PUBLIC_IP for out in outs)
        migrator = EndpointMigrator(ctrl, cluster_id, engine,
                                    blackout_budget=1.0, copy_time=0.5)
        mid = migrator.migrate_vm(VNI, VM_IP, 4, NcBinding(NEW_NC),
                                  new_vm_ip=NEW_VM_IP)
        engine.run()
        assert migrator.records[mid].status == MigrationStatus.COMMITTED
        for svc, out in zip(services, outs):
            # The public tuple survived the re-key: the Internet's
            # response still reverse-translates...
            result = svc.handle_response(self.response_to(out), now=2.0)
            assert result.action is ForwardAction.DELIVER_NC
            # ...and lands on the endpoint's new address and host.
            assert result.nc_ip == NEW_NC
            assert result.packet.inner.ip.dst == NEW_VM_IP
            assert result.packet.inner.l4.dst_port == 5555
        entries = {(e.vm_ip, e.binding.nc_ip)
                   for e in ctrl.vm_entries(cluster_id)}
        assert (NEW_VM_IP, NEW_NC) in entries
        assert all(vm != VM_IP for vm, _nc in entries)

    def test_same_ip_move_needs_no_rewrite(self):
        ctrl = make_controller(x86=True, snat=True)
        cluster_id, _vms = onboard(ctrl)
        engine = Engine()
        svc = ctrl.clusters[cluster_id].members()[0].gateway.snat_service
        out = svc.handle_request(self.request_packet(), now=0.0).packet
        migrator = EndpointMigrator(ctrl, cluster_id, engine)
        migrator.migrate_vm(VNI, VM_IP, 4, NcBinding(NEW_NC))
        engine.run()
        result = svc.handle_response(self.response_to(out), now=2.0)
        # The response path resolves vm_nc live, so the session follows
        # the binding without any rewrite.
        assert result.action is ForwardAction.DELIVER_NC
        assert result.nc_ip == NEW_NC
        assert result.packet.inner.ip.dst == VM_IP


class TestFlowCacheCoherence:
    def test_cached_fast_path_follows_the_commit(self):
        ctrl = make_controller(x86=True)
        cluster_id, _vms = onboard(ctrl)
        engine = Engine()
        gw = ctrl.clusters[cluster_id].members()[0].gateway
        log = drive(engine, ctrl, cluster_id, until=3.0)
        migrator = EndpointMigrator(ctrl, cluster_id, engine,
                                    blackout_budget=1.0, copy_time=0.5)
        migrator.migrate_vm(VNI, VM_IP, 4, NcBinding(NEW_NC), start=1.0)
        engine.run()
        # The fast path was warm before the move (hits on the old NC)...
        assert gw.flow_cache is not None and gw.flow_cache.hits > 0
        # ...and no post-commit packet was served the stale decision.
        after = [r for t, r in log if t >= 1.5]
        assert after and all(r.nc_ip == NEW_NC for r in after)


class TestValidation:
    def test_unknown_vm_rejected(self):
        ctrl = make_controller()
        cluster_id, _vms = onboard(ctrl)
        migrator = EndpointMigrator(ctrl, cluster_id, Engine())
        with pytest.raises(ValueError, match="not in"):
            migrator.migrate_vm(VNI, ip("192.168.10.250"), 4,
                                NcBinding(NEW_NC))

    def test_copy_time_beyond_budget_rejected(self):
        ctrl = make_controller()
        cluster_id, _vms = onboard(ctrl)
        with pytest.raises(ValueError, match="blackout budget"):
            EndpointMigrator(ctrl, cluster_id, Engine(),
                             blackout_budget=0.5, copy_time=1.0)
