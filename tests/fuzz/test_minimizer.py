"""Delta-debugging minimizer: shrinks, preserves signatures, respects budget."""

from repro.fuzz import ConfigGenerator, GatewayConfig, minimize, run_case

BAD_OP = ("pressure", "too-big", 2.0, 0.0, 0, False, None)


def padded_bad_config() -> GatewayConfig:
    """An injected known-bad op buried in ~30 benign generated ops."""
    benign = ConfigGenerator(42).generate(3)
    ops = [op for op in benign.ops if op[0] != "pressure"][:30]
    assert len(ops) >= 20
    ops.insert(len(ops) // 2, BAD_OP)
    return benign.with_ops(ops)


class TestShrinking:
    def test_injected_bad_config_shrinks_to_single_op(self):
        cfg = padded_bad_config()
        target = run_case(cfg).signature
        assert target == ("rejected", "plan-capacity:sram")
        result = minimize(cfg)
        assert len(result.config.ops) <= 5  # acceptance bound
        assert result.config.ops == (BAD_OP,)  # and in fact minimal
        assert run_case(result.config).signature == target

    def test_minimization_is_deterministic(self):
        cfg = padded_bad_config()
        a = minimize(cfg)
        b = minimize(cfg)
        assert a.config == b.config
        assert a.tests_run == b.tests_run

    def test_result_bookkeeping(self):
        cfg = padded_bad_config()
        result = minimize(cfg)
        assert result.original_ops == len(cfg.ops)
        assert result.removed == result.original_ops - len(result.config.ops)
        assert not result.exhausted_budget


class TestPredicate:
    def test_custom_predicate(self):
        cfg = ConfigGenerator(42).generate(3)
        assert sum(1 for op in cfg.ops if op[0] == "vm") >= 2
        result = minimize(
            cfg,
            interesting=lambda c: sum(1 for op in c.ops if op[0] == "vm") >= 2,
        )
        assert len(result.config.ops) == 2
        assert all(op[0] == "vm" for op in result.config.ops)

    def test_budget_caps_predicate_calls(self):
        cfg = padded_bad_config()
        result = minimize(cfg, budget=5)
        assert result.tests_run <= 5
        assert result.exhausted_budget
        # Whatever was reached still reproduces the signature.
        assert run_case(result.config).signature == result.signature
