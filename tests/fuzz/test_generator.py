"""The generator: determinism, variety, JSON round-trips, buildability."""

import json

import pytest

from repro.fuzz import ConfigGenerator, config_from_json, config_to_json
from repro.fuzz.generator import GatewayConfig
from repro.tables.vxlan_routing import Scope


class TestDeterminism:
    def test_same_seed_same_configs(self):
        a = [ConfigGenerator(5).generate(i) for i in range(10)]
        b = [ConfigGenerator(5).generate(i) for i in range(10)]
        assert a == b

    def test_index_independence(self):
        """generate(i) does not depend on earlier generate() calls."""
        fresh = ConfigGenerator(5).generate(7)
        generator = ConfigGenerator(5)
        for i in range(7):
            generator.generate(i)
        assert generator.generate(7) == fresh

    def test_different_seeds_differ(self):
        assert ConfigGenerator(1).generate(0) != ConfigGenerator(2).generate(0)


class TestVariety:
    """Across a modest sample the generator exercises the whole grammar."""

    @pytest.fixture(scope="class")
    def sample(self):
        generator = ConfigGenerator(99)
        return [generator.generate(i) for i in range(60)]

    def test_all_op_kinds_appear(self, sample):
        kinds = {op[0] for cfg in sample for op in cfg.ops}
        assert kinds == {"route", "vm", "acl", "pressure"}

    def test_all_scopes_appear(self, sample):
        scopes = {op[5] for cfg in sample for op in cfg.ops if op[0] == "route"}
        assert scopes == {s.value for s in Scope}

    def test_both_families_appear(self, sample):
        versions = {op[4] for cfg in sample for op in cfg.ops if op[0] == "route"}
        assert versions == {4, 6}

    def test_layout_knobs_vary(self, sample):
        assert {cfg.entry_pipeline for cfg in sample} == {0, 2}
        assert {cfg.alpm_routing for cfg in sample} == {True, False}
        assert {cfg.split_routing for cfg in sample} == {True, False}
        assert {cfg.pool_vm_nc for cfg in sample} == {True, False}

    def test_adversarial_pressure_shapes(self, sample):
        ops = [op for cfg in sample for op in cfg.ops if op[0] == "pressure"]
        assert any(op[4] >= 4 for op in ops), "off-path preferred pipes"
        assert any(not op[5] for op in ops), "unspillable tables"
        assert any(op[6] is not None for op in ops), "dependencies"


class TestJsonRoundTrip:
    def test_round_trip_identity(self):
        for i in range(20):
            cfg = ConfigGenerator(3).generate(i)
            wire = json.dumps(config_to_json(cfg))
            assert config_from_json(json.loads(wire)) == cfg

    def test_with_ops_normalises_lists(self):
        cfg = GatewayConfig(seed=0, index=0).with_ops(
            [["acl", 1, "deny", None, [10, 8], None, None, [1, 2], None]]
        )
        assert cfg.ops[0][4] == (10, 8)
        assert cfg.ops[0][7] == (1, 2)


class TestBuild:
    def test_every_config_builds(self):
        generator = ConfigGenerator(17)
        for i in range(30):
            built = generator.generate(i).build()
            assert built.hw.route_count() == len(built.routes)
            assert built.hw.vm_count() == len(built.vms)
            assert len(built.hw.tables.acl) == len(built.acl_rules)

    def test_logical_tables_cover_layout(self):
        built = ConfigGenerator(17).generate(0).build()
        names = {t.name for t in built.logical_tables}
        assert {"vxlan-routing", "vm-nc", "acl"} <= names

    def test_split_routing_yields_two_halves(self):
        generator = ConfigGenerator(17)
        for i in range(30):
            cfg = generator.generate(i)
            if not cfg.split_routing:
                continue
            names = {t.name for t in cfg.build().logical_tables}
            assert "vxlan-routing-odd" in names
            return
        pytest.fail("no split_routing config in sample")

    def test_route_dedup_is_last_wins(self):
        cfg = GatewayConfig(seed=0, index=0, ops=(
            ("route", 1, 0x0A010000, 24, 4, "local", None, None),
            ("route", 1, 0x0A010000, 24, 4, "internet", None, None),
        ))
        built = cfg.build()
        assert len(built.routes) == 1
        assert built.routes[0][2].scope is Scope.INTERNET
