"""The CI-bounded corpus: ≥200 configs across ≥5 seeds, byte-identical
per seed, every config landing in a healthy trichotomy arm.

This file is the acceptance gate ISSUE 6 / EXPERIMENTS.md point at; the
CI fuzz job runs it with FUZZ_ARTIFACT_DIR set so any counterexample is
uploaded as a minimized JSON artifact.
"""

import json

import pytest

from repro.fuzz import DEFAULT_SEEDS, CaseOutcome, run_bounded
from repro.fuzz import corpus as corpus_module

CASES_PER_SEED = 40
FLOWS = 50


@pytest.fixture(scope="module")
def report():
    return run_bounded(seeds=DEFAULT_SEEDS, cases_per_seed=CASES_PER_SEED,
                       flows=FLOWS)


class TestBoundedCorpus:
    def test_scale_meets_acceptance_floor(self, report):
        assert len(DEFAULT_SEEDS) >= 5
        assert report.cases == len(DEFAULT_SEEDS) * CASES_PER_SEED
        assert report.cases >= 200

    def test_no_counterexamples(self, report):
        details = [(ce.config.seed, ce.config.index, ce.outcome.status,
                    ce.outcome.reason, ce.outcome.detail)
                   for ce in report.counterexamples]
        assert report.ok, details

    def test_trichotomy_outcomes_only(self, report):
        assert set(report.status_histogram) <= {"placed", "rejected"}
        assert report.status_histogram.get("placed", 0) > 0
        assert report.status_histogram.get("rejected", 0) > 0

    def test_rejections_are_classified(self, report):
        """Every rejection reason is a structured stage[:resource] tag."""
        stages = {reason.split(":")[0] for reason in report.reason_histogram}
        assert stages <= {"plan-input", "plan-capacity", "order-check",
                          "path-check", "segment-alloc", "pipe-capacity"}
        assert len(report.reason_histogram) >= 3, report.reason_histogram

    def test_runs_are_byte_identical_per_seed(self, report):
        again = run_bounded(seeds=DEFAULT_SEEDS, cases_per_seed=CASES_PER_SEED,
                            flows=FLOWS)
        assert again.seed_digests == report.seed_digests

    def test_describe_mentions_every_seed(self, report):
        text = report.describe()
        for seed in DEFAULT_SEEDS:
            assert f"seed {seed}:" in text


class TestArtifacts:
    def test_counterexamples_are_written_as_artifacts(self, tmp_path, monkeypatch):
        def fake_run_case(config, flows=50):
            return CaseOutcome(status="diverged", reason="forwarding",
                               detail="synthetic failure")

        monkeypatch.setattr(corpus_module, "run_case", fake_run_case)
        report = run_bounded(seeds=[1], cases_per_seed=2, flows=5,
                             artifact_dir=str(tmp_path),
                             minimize_failures=False)
        assert not report.ok
        assert len(report.artifacts) == 2
        data = json.loads((tmp_path / "fuzz-ce-1-0.json").read_text())
        assert data["status"] == "diverged"
        assert data["config"]["seed"] == 1

    def test_artifact_dir_from_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("FUZZ_ARTIFACT_DIR", str(tmp_path))

        def fake_run_case(config, flows=50):
            return CaseOutcome(status="error", reason="synthetic")

        monkeypatch.setattr(corpus_module, "run_case", fake_run_case)
        report = run_bounded(seeds=[2], cases_per_seed=1, flows=5,
                             minimize_failures=False)
        assert (tmp_path / "fuzz-ce-2-0.json").exists()
        assert report.artifacts
