"""Replay every committed counterexample in this directory.

Each ``*.json`` file is a minimized config that once made the
differential harness report a counterexample (the ``pre_fix_outcome``
field records what it looked like). Replaying them must now land in a
healthy arm of the trichotomy — a regression re-opens the bug with the
original reproducer attached.
"""

import json
from pathlib import Path

import pytest

from repro.fuzz import config_from_json, run_case

CORPUS_DIR = Path(__file__).parent
ENTRIES = sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_is_seeded():
    """The triage workflow commits minimized counterexamples here."""
    assert ENTRIES, "corpus directory must hold at least one reproducer"


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
def test_replay_is_clean(path):
    data = json.loads(path.read_text())
    config = config_from_json(data["config"])
    outcome = run_case(config, flows=50)
    assert not outcome.is_counterexample, (
        f"{path.name} regressed: {outcome.status}/{outcome.reason} "
        f"{outcome.detail} (originally {data['pre_fix_outcome']})"
    )


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
def test_corpus_entries_are_minimized(path):
    """Committed reproducers stay small enough to read at a glance."""
    data = json.loads(path.read_text())
    assert len(data["config"]["ops"]) <= 5
    assert data["pre_fix_outcome"]["status"] in ("diverged", "error")
