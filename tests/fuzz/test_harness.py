"""The differential harness: every trichotomy arm on handcrafted configs."""

import pytest

from repro.dataplane.gateway_logic import ForwardAction, ForwardResult
from repro.fuzz import (
    STATUS_DIVERGED,
    STATUS_ERROR,
    STATUS_PLACED,
    STATUS_REJECTED,
    GatewayConfig,
    run_case,
)
from repro.fuzz import harness as harness_module
from repro.fuzz.harness import compare_results
from repro.fuzz.oracle import LinearScanOracle
from repro.workloads.traffic import build_vxlan_packet


def config(*ops, **knobs) -> GatewayConfig:
    return GatewayConfig(seed=0, index=0, **knobs).with_ops(list(ops))


LOCAL_NET = ("route", 1, 0x0A010000, 24, 4, "local", None, None)
VM = ("vm", 1, 0x0A010005, 4, 0x0A000001)


class TestPlacedArm:
    def test_small_config_places_and_matches(self):
        outcome = run_case(config(LOCAL_NET, VM), flows=50)
        assert outcome.status == STATUS_PLACED
        assert outcome.flows_checked == 50
        assert outcome.digest

    def test_digest_is_deterministic(self):
        cfg = config(LOCAL_NET, VM)
        assert run_case(cfg, flows=30).digest == run_case(cfg, flows=30).digest

    def test_peer_loop_and_broken_chain_still_equivalent(self):
        outcome = run_case(config(
            ("route", 1, 0x0A010000, 24, 4, "peer", 1, None),   # self-loop
            ("route", 2, 0x0A020000, 24, 4, "peer", 99, None),  # broken chain
        ), flows=50)
        assert outcome.status == STATUS_PLACED

    def test_empty_config_places_trivially(self):
        outcome = run_case(config(), flows=10)
        assert outcome.status == STATUS_PLACED


class TestRejectedArm:
    def test_unspillable_overflow_is_plan_capacity(self):
        outcome = run_case(config(
            ("pressure", "huge", 1.5, 0.0, 0, False, None)))
        assert outcome.signature == (STATUS_REJECTED, "plan-capacity:sram")

    def test_path_overflow_names_both_resources(self):
        outcome = run_case(config(
            ("pressure", "a", 1.9, 1.9, 0, True, None),
            ("pressure", "b", 0.9, 0.9, 0, True, None)))
        assert outcome.signature == (STATUS_REJECTED, "plan-capacity:sram+tcam")

    def test_off_path_pipe_is_plan_input(self):
        outcome = run_case(config(
            ("pressure", "lost", 0.1, 0.0, 4, True, None)))
        assert outcome.signature == (STATUS_REJECTED, "plan-input")

    def test_ghost_dependency_is_order_check(self):
        outcome = run_case(config(
            ("pressure", "p", 0.1, 0.0, 0, True, "ghost-table")))
        assert outcome.signature == (STATUS_REJECTED, "order-check")

    def test_dependency_order_violation_is_order_check(self):
        # vm-nc sits at path position 1; a dependent at position 0 is
        # placed before its dependency.
        outcome = run_case(config(
            LOCAL_NET, VM,
            ("pressure", "early", 0.1, 0.0, 0, True, "vm-nc")))
        assert outcome.signature == (STATUS_REJECTED, "order-check")


class TestCounterexampleArm:
    def test_unknown_op_is_build_error(self):
        outcome = run_case(config(("bogus", 1)))
        assert outcome.signature == (STATUS_ERROR, "build")

    def test_corrupt_oracle_is_caught_as_divergence(self, monkeypatch):
        """An injected semantic skew must surface as STATUS_DIVERGED."""

        class CorruptOracle(LinearScanOracle):
            def forward(self, packet):
                result = super().forward(packet)
                if result.action is ForwardAction.DELIVER_NC:
                    return ForwardResult(ForwardAction.DROP, packet,
                                         detail="no-vm")
                return result

        monkeypatch.setattr(harness_module, "LinearScanOracle", CorruptOracle)
        outcome = run_case(config(LOCAL_NET, VM), flows=50)
        assert outcome.status == STATUS_DIVERGED
        assert outcome.reason == "forwarding"


class TestComparisonContract:
    def test_action_mismatch(self):
        packet = build_vxlan_packet(1, 2, 3)
        a = ForwardResult(ForwardAction.DROP, packet, detail="no-route")
        b = ForwardResult(ForwardAction.UPLINK, packet, detail="internet")
        assert compare_results(a, b) is not None

    def test_drop_compares_detail_not_bytes(self):
        packet = build_vxlan_packet(1, 2, 3)
        a = ForwardResult(ForwardAction.DROP, packet, detail="no-route")
        b = ForwardResult(ForwardAction.DROP, packet.with_outer_dst(9),
                          detail="no-route")
        assert compare_results(a, b) is None

    def test_deliver_compares_bytes(self):
        packet = build_vxlan_packet(1, 2, 3)
        a = ForwardResult(ForwardAction.DELIVER_NC, packet, detail="local")
        b = ForwardResult(ForwardAction.DELIVER_NC, packet.with_outer_dst(9),
                          detail="local")
        assert compare_results(a, b) is not None

    def test_resolved_vni_is_not_compared(self):
        packet = build_vxlan_packet(1, 2, 3)
        a = ForwardResult(ForwardAction.UPLINK, packet, detail="internet",
                          resolved_vni=None)
        b = ForwardResult(ForwardAction.UPLINK, packet, detail="internet",
                          resolved_vni=5)
        assert compare_results(a, b) is None
