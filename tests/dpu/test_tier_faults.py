"""Tier failures: DPU device death drains through transactions, a
controller crash mid-migration leaves only audit-repairable residue."""

import pytest

from tests.dpu.helpers import ip, make_detector
from tests.faults.helpers import make_controller, onboard

from repro.audit import AuditConfig, AuditScanner, RepairBridge
from repro.cluster.ecmp import VniSteeredBalancer
from repro.core.controller import Controller
from repro.core.journal import ControllerCrash, Journal
from repro.core.splitting import ClusterCapacity, TableSplitter
from repro.dpu import DpuBudget, DpuDevice, DpuProfile, TierPlanner
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.net.flow import FlowKey
from repro.offload import (
    ChipBudget,
    HeavyHitterDetector,
    OffloadLoop,
    VipKey,
)
from repro.sim.engine import Engine
from repro.workloads.flows import heavy_hitter_flows
from repro.x86.cpu import DEFAULT_CORE_PPS
from repro.x86.gateway import XgwX86

VNI = 1000


def build_env(journal=False, num_devices=2):
    ctrl = make_controller()
    if journal:
        ctrl.journal = Journal()
    cluster_id, _routes, _vms = onboard(ctrl, vni=VNI)
    budget = ChipBudget(ctrl.clusters[cluster_id], sram_budget_words=64,
                        tcam_budget_slices=128)
    devices = [
        DpuDevice(f"dpu-{i}", gateway_ip=0x0A00F000 + i,
                  profile=DpuProfile(flow_table_entries=256,
                                     session_capacity=1024))
        for i in range(num_devices)
    ]
    planner = TierPlanner(ctrl, cluster_id, budget, devices, make_detector())
    return ctrl, cluster_id, planner, devices


def seed_sessions(device, key, count=3):
    for i in range(count):
        device.sessions.ensure(
            FlowKey(ip("10.8.0.1"), key.dst_ip, 17, 40000 + i, 4789),
            (key.vni, key.dst_ip, key.version), now=0.0)


def steering_keys(gateway):
    return {(vni, prefix) for vni, prefix, action in
            gateway.tables.routing.items()
            if action.target in ("offload", "dpu")}


class TestDeviceFailureDrain:
    def build_loop_with_outage(self, at_time=15.5, duration=30.0):
        ctrl = make_controller()
        cluster_id, _r, _v = onboard(ctrl, vni=VNI)
        budget = ChipBudget(ctrl.clusters[cluster_id], sram_budget_words=64,
                            tcam_budget_slices=128)
        detector_seed = 7
        from repro.dpu import TierDetector
        detector = TierDetector(
            chip=HeavyHitterDetector(
                theta_hi=0.5 * DEFAULT_CORE_PPS,
                theta_lo=0.2 * DEFAULT_CORE_PPS,
                promote_after=2, demote_after=3, ewma_alpha=0.5,
                seed=detector_seed),
            dpu=HeavyHitterDetector(
                theta_hi=0.08 * DEFAULT_CORE_PPS,
                theta_lo=0.03 * DEFAULT_CORE_PPS,
                promote_after=2, demote_after=3, ewma_alpha=0.5,
                seed=detector_seed + 1),
        )
        devices = [DpuDevice(f"dpu-{i}", gateway_ip=0x0A00F000 + i)
                   for i in range(2)]
        planner = TierPlanner(ctrl, cluster_id, budget, devices, detector)
        gateway = XgwX86(gateway_ip=0x0A000001)
        flows = heavy_hitter_flows(100, 0.4 * gateway.total_capacity_pps,
                                   seed=4, alpha=1.4, vnis=[VNI])
        engine = Engine()
        loop = OffloadLoop(engine, [gateway], workload=lambda _t: flows,
                           planner=planner)
        plan = FaultPlan(seed=3, specs=[
            FaultSpec(FaultKind.DPU_DEVICE_FAIL, cluster="dpu-0",
                      at_time=at_time)])
        FaultInjector(plan).schedule(engine, ctrl.clusters)
        loop.start(until=duration)
        engine.run(until=duration)
        return ctrl, loop, planner, plan

    def test_failed_device_drains_to_x86_and_service_recovers(self):
        ctrl, loop, planner, plan = self.build_loop_with_outage()
        assert plan.injected(FaultKind.DPU_DEVICE_FAIL) == 1
        dead = planner.devices["dpu-0"]
        assert dead.failed and len(dead.sessions) == 0
        # Every VIP steered at dpu-0 was re-homed: no placements, no
        # steering intent, no installed routes remain on the dead device.
        assert planner.keys_on("dpu", device="dpu-0") == []
        assert not any(a.target == "dpu"
                       for a in ctrl.desired_routes("dpu-0").values())
        assert steering_keys(dead) == set()
        assert planner.counters["drains"] > 0
        assert any("device-offline" in line for line in planner.decision_log)
        # The surviving device and the chip still carry their share, and
        # the x86 side absorbed the drained band without melting.
        assert planner.keys_on("dpu", device="dpu-1")
        assert planner.keys_on("chip")
        assert loop.snapshots[-1].total_loss < 0.01

    def test_drain_leaves_no_audit_residue(self):
        ctrl, _loop, _planner, _plan = self.build_loop_with_outage()
        scanner = AuditScanner(ctrl, AuditConfig(seed=3, budget=400))
        findings = scanner.full_scan()
        assert [f for f in findings if f.invariant == "tier-residue"] == []


class TestCrashMidMigration:
    def crash_mid_promotion(self):
        ctrl, cluster_id, planner, devices = build_env(journal=True)
        key = VipKey(VNI, ip("192.168.10.50"))
        planner.observe_and_apply({key: 200.0}, now=1.0)
        assert planner.place_of(key)[0] == "dpu"
        dev_name = planner.place_of(key)[1]
        seed_sessions(planner.devices[dev_name], key)
        # Crash the controller at its next chip-cluster mutation: the
        # dpu-withdraw transaction commits, the chip-install journals
        # then dies before any gateway sees it.
        plan = FaultPlan(seed=11, specs=[
            FaultSpec(FaultKind.CONTROLLER_CRASH, cluster=cluster_id,
                      probability=1.0, max_fires=1)])
        FaultInjector(plan).arm_controller(ctrl)
        with pytest.raises(ControllerCrash):
            planner.observe_and_apply({key: 5000.0}, now=2.0)
        return ctrl, cluster_id, planner, key, dev_name

    def test_crash_leaves_zero_partial_route_entries(self):
        ctrl, cluster_id, planner, key, dev_name = self.crash_mid_promotion()
        route_key = (key.vni, key.prefix)
        # Withdraw committed everywhere; install reached nobody.
        assert route_key not in ctrl.desired_routes(dev_name)
        assert route_key not in ctrl.desired_routes(cluster_id)
        assert steering_keys(planner.devices[dev_name]) == set()
        for member in ctrl.clusters[cluster_id].all_members():
            assert route_key not in steering_keys(member.gateway)
        # ...but the source device still holds the sessions the reap
        # (which runs last) never got to: that is the residue.
        assert planner.devices[dev_name].sessions.count_for(
            (key.vni, key.dst_ip, key.version)) == 3

    def test_audit_finds_and_repair_clears_the_orphans(self):
        ctrl, cluster_id, _planner, key, dev_name = self.crash_mid_promotion()
        device = ctrl.clusters[dev_name].find_member(dev_name).gateway
        # Controller process died: stand up a fresh one over the same
        # clusters and replay the journal (uncommitted txn is dropped).
        recovered = Controller(
            TableSplitter(ClusterCapacity(routes=50, vms=500,
                                          traffic_bps=1e13)),
            VniSteeredBalancer(), clusters=ctrl.clusters)
        recovered.recover(ctrl.journal)
        assert (key.vni, key.prefix) not in recovered.desired_routes(dev_name)

        scanner = AuditScanner(recovered, AuditConfig(seed=3, budget=400))
        bridge = RepairBridge(recovered).attach(scanner)
        findings = scanner.full_scan()
        orphans = [f for f in findings if f.kind == "orphaned-dpu-session"]
        assert len(orphans) == 1
        assert orphans[0].cluster_id == dev_name
        assert orphans[0].key == (key.vni, key.dst_ip, key.version)
        # The cycle hook already repaired: sessions reaped on the device.
        assert bridge.counters["dpu_sessions_cleared"] == 3
        assert device.sessions.count_for(
            (key.vni, key.dst_ip, key.version)) == 0
        rescan = scanner.full_scan()
        assert [f for f in rescan if f.invariant == "tier-residue"] == []


class TestMultiTierSteering:
    def test_double_claim_is_detected_and_withdrawn(self):
        ctrl, cluster_id, planner, _devices = build_env()
        key = VipKey(VNI, ip("192.168.10.50"))
        planner.observe_and_apply({key: 200.0}, now=1.0)
        dev_name = planner.place_of(key)[1]
        # Simulate a lost reap on the *steering* side: the chip also
        # claims the VIP while the DPU still steers it.
        with ctrl.transaction(cluster_id, time=2.0) as txn:
            txn.install_route(key.route())
        scanner = AuditScanner(ctrl, AuditConfig(seed=3, budget=400))
        bridge = RepairBridge(ctrl).attach(scanner)
        findings = scanner.full_scan()
        dupes = [f for f in findings if f.kind == "multi-tier-steering"]
        assert dupes
        assert {f.cluster_id for f in dupes} <= {cluster_id, dev_name}
        assert bridge.counters["tier_duplicates_cleared"] >= 1
        rescan = scanner.full_scan()
        assert [f for f in rescan if f.kind == "multi-tier-steering"] == []
