"""Shared builders for the three-tier suite: a chip cluster from the
fault-suite factory plus two DPU devices adopted by the planner."""

from tests.faults.helpers import ip, make_controller, onboard

from repro.dpu import DpuBudget, DpuDevice, DpuProfile, TierDetector, TierPlanner
from repro.offload import ChipBudget, HeavyHitterDetector


def make_detector(chip_hi=1000.0, chip_lo=400.0, dpu_hi=100.0, dpu_lo=40.0,
                  promote_after=1, demote_after=1, ewma_alpha=1.0, seed=0):
    """Instant-reaction thresholds for direct planner tests (the loop
    tests use paced EWMA/hysteresis settings instead)."""
    return TierDetector(
        chip=HeavyHitterDetector(theta_hi=chip_hi, theta_lo=chip_lo,
                                 promote_after=promote_after,
                                 demote_after=demote_after,
                                 ewma_alpha=ewma_alpha, seed=seed),
        dpu=HeavyHitterDetector(theta_hi=dpu_hi, theta_lo=dpu_lo,
                                promote_after=promote_after,
                                demote_after=demote_after,
                                ewma_alpha=ewma_alpha, seed=seed + 1),
    )


def make_env(detector=None, sram=64, num_devices=2, entry_budget=8,
             session_budget=64, sessions_per_vip=4, vni=1000):
    """Controller + chip cluster + DPU devices + planner, ready to place."""
    ctrl = make_controller()
    cluster_id, _routes, _vms = onboard(ctrl, vni=vni)
    chip_budget = ChipBudget(ctrl.clusters[cluster_id],
                             sram_budget_words=sram,
                             tcam_budget_slices=2 * sram)
    devices = [
        DpuDevice(f"dpu-{i}", gateway_ip=0x0A00F000 + i,
                  profile=DpuProfile(flow_table_entries=256,
                                     session_capacity=1024))
        for i in range(num_devices)
    ]
    budgets = {d.name: DpuBudget(d, entry_budget=entry_budget,
                                 session_budget=session_budget)
               for d in devices}
    planner = TierPlanner(
        ctrl, cluster_id, chip_budget, devices,
        detector if detector is not None else make_detector(),
        dpu_budgets=budgets, sessions_per_vip=sessions_per_vip,
    )
    return ctrl, cluster_id, planner, devices
