"""Closed three-tier loop: elephants to the chip, warm sessions to the
DPU shelf, tail and every DPU punt to x86 — all within one tick cycle."""

import pytest

from tests.dpu.helpers import ip, make_detector, make_env

from repro.dpu import DpuBudget, DpuDevice, DpuProfile, TierDetector, TierPlanner
from repro.net.flow import FlowKey
from repro.offload import (
    ChipBudget,
    HeavyHitterDetector,
    OffloadLoop,
    OffloadScheduler,
    vip_of,
)
from repro.offload.scheduler import VipKey
from repro.sim.engine import Engine
from repro.workloads.flows import FlowSpec, heavy_hitter_flows
from repro.x86.cpu import DEFAULT_CORE_PPS
from repro.x86.gateway import XgwX86

from tests.faults.helpers import make_controller, onboard


def spec(host, pps, src_port=40000):
    return FlowSpec(flow=FlowKey(ip("10.8.0.1"), ip(host), 17, src_port, 4789),
                    pps=pps, vni=1000)


def build_three_tier_loop(seed=7, load_fraction=0.4, duration=30.0,
                          num_devices=2):
    ctrl = make_controller()
    cluster_id, _routes, _vms = onboard(ctrl, vni=1000)
    budget = ChipBudget(ctrl.clusters[cluster_id], sram_budget_words=64,
                        tcam_budget_slices=128)
    detector = TierDetector(
        chip=HeavyHitterDetector(
            theta_hi=0.5 * DEFAULT_CORE_PPS, theta_lo=0.2 * DEFAULT_CORE_PPS,
            promote_after=2, demote_after=3, ewma_alpha=0.5, seed=seed),
        dpu=HeavyHitterDetector(
            theta_hi=0.08 * DEFAULT_CORE_PPS, theta_lo=0.03 * DEFAULT_CORE_PPS,
            promote_after=2, demote_after=3, ewma_alpha=0.5, seed=seed + 1),
    )
    devices = [DpuDevice(f"dpu-{i}", gateway_ip=0x0A00F000 + i)
               for i in range(num_devices)]
    planner = TierPlanner(ctrl, cluster_id, budget, devices, detector)
    gateway = XgwX86(gateway_ip=0x0A000001)
    flows = heavy_hitter_flows(100, load_fraction * gateway.total_capacity_pps,
                               seed=4, alpha=1.4, vnis=[1000])
    engine = Engine()
    loop = OffloadLoop(engine, [gateway], workload=lambda _t: flows,
                       planner=planner)
    loop.start(until=duration)
    engine.run(until=duration)
    return loop, planner


class TestThreeTierRelief:
    def test_overload_is_relieved_across_three_tiers(self):
        loop, planner = build_three_tier_loop()
        first, last = loop.snapshots[0], loop.snapshots[-1]
        assert first.x86_max_core_util == 1.0 and first.x86_loss > 0.1
        assert last.x86_loss < 0.001
        assert last.x86_max_core_util < 0.9
        # Both upper tiers ended up populated: elephants on the chip,
        # a warm band on the DPUs, the tail still on x86.
        assert planner.keys_on("chip")
        assert planner.keys_on("dpu")
        assert last.offloaded_pps > 0 and last.dpu_served_pps > 0

    def test_dpu_shelf_absorbs_the_warm_band(self):
        loop, planner = build_three_tier_loop()
        last = loop.snapshots[-1]
        # Warm flows are served where they were steered: at steady state
        # the devices serve what they are offered (no punts).
        assert last.dpu_served_pps == pytest.approx(last.dpu_offered_pps)
        assert last.dpu_fallback_pps == 0.0
        # Per-VIP rates are conserved across the split.
        chip_rate = sum(p.rate_pps for p in planner.placements.values()
                        if p.tier.value == "chip")
        assert chip_rate <= last.offloaded_pps * 1.01 + 1.0

    def test_decision_log_byte_identical_across_runs(self):
        _l1, p1 = build_three_tier_loop(seed=7)
        _l2, p2 = build_three_tier_loop(seed=7)
        assert p1.decision_log_text() == p2.decision_log_text()
        assert p1.decision_log_text()

    def test_tier_series_and_legacy_aliases_recorded(self):
        loop, planner = build_three_tier_loop(duration=5.0)
        series = loop.core_series
        for name in ("tier/chip/offered-pps", "tier/chip/cost-usd",
                     "tier/dpu/offered-pps", "tier/dpu/served-pps",
                     "tier/dpu/fallback-pps", "tier/dpu/cost-usd",
                     "tier/x86/offered-pps", "tier/x86/cost-usd",
                     "x86-offered-pps", "x86-loss", "x86-max-core-util",
                     "gw0/core-0"):
            assert name in series, name

    def test_cost_frontier_beats_all_x86(self):
        """Serving the same packets with the tiers engaged must cost less
        than the all-x86 opening interval (chip/dpu are cheaper per Mpkt)."""
        loop, _planner = build_three_tier_loop()
        series = loop.core_series
        def tick_cost(index):
            return sum(series[f"tier/{tier}/cost-usd"].values[index]
                       for tier in ("chip", "dpu", "x86"))
        first_cost = tick_cost(0)
        last_cost = tick_cost(-1)
        assert last_cost < first_cost


class TestFallbackPath:
    def test_capacity_punts_fall_back_to_x86_same_interval(self):
        """A DPU that cannot serve its steered rate punts the excess to
        x86 inside the same tick — nothing is silently dropped."""
        ctrl = make_controller()
        cluster_id, _r, _v = onboard(ctrl, vni=1000)
        budget = ChipBudget(ctrl.clusters[cluster_id], sram_budget_words=64,
                            tcam_budget_slices=128)
        device = DpuDevice("dpu-0", gateway_ip=0x0A00F000,
                           profile=DpuProfile(max_pps=250.0))
        planner = TierPlanner(ctrl, cluster_id, budget, [device],
                              make_detector())
        flows = [spec("192.168.10.50", 200.0, 40000),
                 spec("192.168.10.51", 150.0, 40001),
                 spec("192.168.10.52", 130.0, 40002)]
        engine = Engine()
        loop = OffloadLoop(engine, [XgwX86(gateway_ip=0x0A000001)],
                           workload=lambda _t: flows, planner=planner)
        loop.start(until=4.0)
        engine.run(until=4.0)
        last = loop.snapshots[-1]
        # All three flows are dpu-warm but only 250pps fits: the hottest
        # 200pps flow is served, the rest re-offered to x86.
        assert last.dpu_offered_pps == pytest.approx(480.0)
        assert last.dpu_served_pps == pytest.approx(200.0)
        assert last.dpu_fallback_pps == pytest.approx(280.0)
        assert last.x86_offered_pps >= 280.0
        assert last.total_loss == 0.0
        # The punted VIPs still show a live rate (attribution merged
        # from x86 reports + dpu sweeps), so the detector keeps them.
        for flow in flows:
            assert planner.detector.dpu.smoothed_rate(vip_of(flow)) > 0


class TestModeValidation:
    def test_planner_and_scheduler_are_mutually_exclusive(self):
        ctrl, cluster_id, planner, _devices = make_env()
        budget = ChipBudget(ctrl.clusters[cluster_id], sram_budget_words=8,
                            tcam_budget_slices=16)
        detector = HeavyHitterDetector(theta_hi=100.0, theta_lo=40.0)
        scheduler = OffloadScheduler(ctrl, cluster_id, budget,
                                     detector=detector)
        engine = Engine()
        with pytest.raises(ValueError):
            OffloadLoop(engine, [XgwX86(gateway_ip=0x0A000001)],
                        scheduler, detector, workload=lambda _t: [],
                        planner=planner)
        with pytest.raises(ValueError):
            OffloadLoop(engine, [XgwX86(gateway_ip=0x0A000001)],
                        workload=lambda _t: [])

    def test_two_tier_mode_records_no_dpu_series(self):
        ctrl = make_controller()
        cluster_id, _r, _v = onboard(ctrl, vni=1000)
        budget = ChipBudget(ctrl.clusters[cluster_id], sram_budget_words=64,
                            tcam_budget_slices=128)
        detector = HeavyHitterDetector(
            theta_hi=0.5 * DEFAULT_CORE_PPS, theta_lo=0.2 * DEFAULT_CORE_PPS,
            promote_after=2, demote_after=3, ewma_alpha=0.5, seed=7)
        scheduler = OffloadScheduler(ctrl, cluster_id, budget,
                                     detector=detector)
        engine = Engine()
        loop = OffloadLoop(engine, [XgwX86(gateway_ip=0x0A000001)], scheduler,
                           detector, workload=lambda _t: [spec("192.168.10.50",
                                                               100.0)])
        loop.start(until=3.0)
        engine.run(until=3.0)
        assert "tier/chip/offered-pps" in loop.core_series
        assert "tier/dpu/offered-pps" not in loop.core_series
        assert loop.snapshots[-1].dpu_offered_pps == 0.0
