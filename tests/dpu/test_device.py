"""The DPU device model: tables between chip and x86, bounded sessions,
miss-to-x86 fallback, per-device counter conservation."""

import pytest

from tests.faults.helpers import ip

from repro.core.controller import build_probe_packet
from repro.dataplane.gateway_logic import DropReason, ForwardAction
from repro.dpu import DpuDevice, DpuProfile, DpuSessionTable
from repro.net.addr import Prefix
from repro.net.flow import FlowKey
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import RouteAction, Scope
from repro.workloads.flows import FlowSpec
from repro.x86.gateway import XgwX86

VNI = 100


def tenant_tables(gw):
    gw.install_route(VNI, Prefix.parse("192.168.10.0/24"),
                     RouteAction(Scope.LOCAL))
    gw.install_vm(VNI, ip("192.168.10.2"), 4, NcBinding(ip("10.1.1.11")))


def flow_spec(dst="192.168.10.2", pps=100.0, src_port=40000):
    flow = FlowKey(ip("10.8.0.1"), ip(dst), 17, src_port, 4789)
    return FlowSpec(flow=flow, pps=pps, vni=VNI)


class TestProfileAndSessions:
    def test_profile_sits_between_chip_and_x86(self):
        profile = DpuProfile()
        assert 1_000 < profile.flow_table_entries < 10**6
        assert 1.0 < profile.latency_us < 40.0  # chip ~1us, x86 40us

    def test_profile_validation(self):
        for bad in (dict(flow_table_entries=0), dict(session_capacity=-1),
                    dict(max_pps=0.0), dict(latency_us=0.0)):
            with pytest.raises(ValueError):
                DpuProfile(**bad)

    def test_session_table_bounds_and_reap(self):
        table = DpuSessionTable(capacity=2)
        vip = (VNI, ip("192.168.10.2"), 4)
        f1 = FlowKey(1, 2, 6, 10, 20)
        f2 = FlowKey(3, 2, 6, 11, 20)
        f3 = FlowKey(5, 2, 6, 12, 20)
        assert table.ensure(f1, vip, 0.0) and table.ensure(f2, vip, 0.0)
        assert not table.ensure(f3, vip, 0.0)  # full: new flow misses
        assert table.ensure(f1, vip, 1.0)  # resident flows always hit
        assert table.count_for(vip) == 2
        assert table.drop_vip(vip) == 2
        assert len(table) == 0


class TestFunctionalPath:
    def test_forward_hit_creates_session(self):
        dev = DpuDevice("dpu-0", gateway_ip=0x0A0000FE)
        tenant_tables(dev)
        result = dev.forward(build_probe_packet(VNI, ip("192.168.10.2")))
        assert result.action is ForwardAction.DELIVER_NC
        assert len(dev.sessions) == 1

    def test_miss_is_dpu_table_miss_and_x86_serves_the_fallback(self):
        dev = DpuDevice("dpu-0", gateway_ip=0x0A0000FE)  # no tables pushed
        packet = build_probe_packet(VNI, ip("192.168.10.2"))
        result = dev.forward(packet)
        assert result.action is ForwardAction.DROP
        assert result.detail == DropReason.DPU_TABLE_MISS.value
        assert dev.counters["drop_dpu_table_miss"] == 1
        # The steering layer re-offers the packet to x86, which holds
        # the full tables and delivers it.
        x86 = XgwX86(gateway_ip=0x0A000001)
        tenant_tables(x86)
        relay = x86.forward_dpu_miss(packet)
        assert relay.action is ForwardAction.DELIVER_NC
        assert x86.counters["dpu_fallback_packets"] == 1

    def test_session_overflow_misses(self):
        dev = DpuDevice("dpu-0", gateway_ip=0x0A0000FE,
                        profile=DpuProfile(session_capacity=1))
        tenant_tables(dev)
        first = dev.forward(build_probe_packet(VNI, ip("192.168.10.2"),
                                               src_ip=0x0A0A0A0A))
        second = dev.forward(build_probe_packet(VNI, ip("192.168.10.2"),
                                                src_ip=0x0A0A0A0B))
        assert first.action is ForwardAction.DELIVER_NC
        assert second.action is ForwardAction.DROP
        assert second.detail == DropReason.DPU_TABLE_MISS.value

    def test_failed_device_drops_everything(self):
        dev = DpuDevice("dpu-0", gateway_ip=0x0A0000FE)
        tenant_tables(dev)
        dev.forward(build_probe_packet(VNI, ip("192.168.10.2")))
        lost = dev.fail()
        assert lost == 1 and len(dev.sessions) == 0
        result = dev.forward(build_probe_packet(VNI, ip("192.168.10.2")))
        assert result.detail == DropReason.DPU_TABLE_MISS.value

    def test_counter_conservation_holds(self):
        dev = DpuDevice("dpu-0", gateway_ip=0x0A0000FE)
        tenant_tables(dev)
        dev.forward(build_probe_packet(VNI, ip("192.168.10.2")))
        dev.forward(build_probe_packet(VNI, ip("192.168.99.9")))  # miss
        counts = dev.counters.snapshot()
        actions = sum(v for k, v in counts.items() if k.startswith("action_"))
        drops = sum(v for k, v in counts.items() if k.startswith("drop_"))
        assert counts["rx_packets"] == actions
        assert drops == counts["action_drop"]


class TestRateModel:
    def test_serves_steered_flows_and_punts_the_rest(self):
        dev = DpuDevice("dpu-0", gateway_ip=0x0A0000FE)
        tenant_tables(dev)
        steered = flow_spec(pps=500.0)
        unsteered = FlowSpec(
            flow=FlowKey(ip("10.8.0.1"), ip("172.16.0.1"), 17, 40001, 4789),
            pps=300.0, vni=VNI)
        report = dev.serve_interval([steered, unsteered], interval=1.0)
        assert report.offered_pps == 800.0
        assert report.served_pps == 500.0
        assert report.miss_pps == 300.0
        assert report.fallback_specs == [unsteered]
        assert report.fallback_pps == 300.0

    def test_capacity_punts_hottest_first_service(self):
        dev = DpuDevice("dpu-0", gateway_ip=0x0A0000FE,
                        profile=DpuProfile(max_pps=600.0))
        tenant_tables(dev)
        hot = flow_spec(pps=500.0, src_port=40000)
        warm = flow_spec(pps=200.0, src_port=40001)
        report = dev.serve_interval([warm, hot], interval=1.0)
        # Hottest-first: the 500pps flow fits, the 200pps one is punted.
        assert report.served_pps == 500.0
        assert report.punt_pps == 200.0
        assert report.fallback_specs == [warm]

    def test_sweep_counters_attribute_served_rates(self):
        dev = DpuDevice("dpu-0", gateway_ip=0x0A0000FE)
        tenant_tables(dev)
        dev.serve_interval([flow_spec(pps=250.0)], interval=2.0)
        cells = dict(dev.sweep_counters.items())
        assert len(cells) == 1
        (key, cell), = cells.items()
        assert key.vni == VNI and key.dst_ip == ip("192.168.10.2")
        assert cell.packets == 500

    def test_failed_device_punts_everything(self):
        dev = DpuDevice("dpu-0", gateway_ip=0x0A0000FE)
        tenant_tables(dev)
        dev.fail()
        report = dev.serve_interval([flow_spec(pps=100.0)], interval=1.0)
        assert report.served_pps == 0.0
        assert report.punt_pps == 100.0
