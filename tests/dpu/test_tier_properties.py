"""Property suite: the sketch's error bound and the tier detector's
hysteresis hold for *every* input, not just the crafted fixtures."""

from collections import Counter

from hypothesis import given, settings, strategies as st

from tests.dpu.helpers import make_detector

from repro.dpu import TIER_RANK, Tier
from repro.offload import SpaceSaving

KEYS = st.integers(min_value=0, max_value=19)
BATCHES = st.lists(st.tuples(KEYS, st.integers(min_value=1, max_value=100)),
                   min_size=1, max_size=200)


class TestSpaceSavingBounds:
    @given(batches=BATCHES, capacity=st.integers(min_value=1, max_value=8))
    @settings(max_examples=100, deadline=None)
    def test_count_minus_error_brackets_the_truth(self, batches, capacity):
        truth = Counter()
        sketch = SpaceSaving(capacity=capacity)
        for key, n in batches:
            truth[key] += n
            sketch.update(key, n)
        assert sketch.total == sum(truth.values())
        assert len(sketch) <= capacity
        for key, est, err in sketch.top(capacity):
            assert est - err <= truth[key] <= est

    @given(batches=BATCHES)
    @settings(max_examples=50, deadline=None)
    def test_uncapped_sketch_is_exact(self, batches):
        truth = Counter()
        sketch = SpaceSaving(capacity=64)  # > key universe: never recycles
        for key, n in batches:
            truth[key] += n
            sketch.update(key, n)
        for key, est, err in sketch.top(64):
            assert err == 0 and est == truth[key]


RATE_SEQS = st.lists(
    st.lists(st.floats(min_value=0.0, max_value=10000.0,
                       allow_nan=False, allow_infinity=False),
             min_size=3, max_size=3),
    min_size=1, max_size=25)


class TestDetectorChurn:
    @given(seq=RATE_SEQS, seed=st.integers(min_value=0, max_value=7),
           promote_after=st.integers(min_value=1, max_value=3),
           demote_after=st.integers(min_value=1, max_value=3))
    @settings(max_examples=100, deadline=None)
    def test_at_most_one_migration_per_key_per_interval(
            self, seq, seed, promote_after, demote_after):
        """Under arbitrary three-key churn no key is asked to migrate
        more than once per observe, and never twice in the same
        direction without crossing back in between."""
        det = make_detector(promote_after=promote_after,
                            demote_after=demote_after, seed=seed)
        keys = ("a", "b", "c")
        tier_of = {k: Tier.X86 for k in keys}
        last_cross = {}  # (key, boundary) -> "up" | "down"
        for rates in seq:
            decisions = det.observe(dict(zip(keys, rates)))
            seen = Counter(d.key for d in decisions)
            assert all(count == 1 for count in seen.values())
            for decision in decisions:
                frm, to = tier_of[decision.key], decision.target
                assert frm is not to  # a decision is always a move
                lo, hi = sorted((TIER_RANK[frm], TIER_RANK[to]))
                direction = "up" if TIER_RANK[to] > TIER_RANK[frm] else "down"
                # Hysteresis: a tier boundary is never crossed twice in
                # the same direction without an opposite crossing in
                # between (that would be ratcheting through the
                # deadband).
                for boundary in range(lo + 1, hi + 1):
                    assert last_cross.get((decision.key, boundary)) != \
                        direction, (
                            f"{decision.key} crossed boundary {boundary} "
                            f"{direction} twice in a row")
                    last_cross[(decision.key, boundary)] = direction
                tier_of[decision.key] = to
                det.mark_placed(decision.key, to)

    @given(rate=st.floats(min_value=0.0, max_value=10000.0,
                          allow_nan=False),
           seed=st.integers(min_value=0, max_value=7))
    @settings(max_examples=100, deadline=None)
    def test_constant_rate_settles(self, rate, seed):
        """A steady rate produces at most one placement then silence —
        the detector never flaps on a non-changing input."""
        det = make_detector(seed=seed)
        moved = 0
        for _ in range(8):
            decisions = det.observe({"k": rate})
            for decision in decisions:
                det.mark_placed(decision.key, decision.target)
                moved += 1
        assert moved <= 1

    @given(seed=st.integers(min_value=0, max_value=31))
    @settings(max_examples=32, deadline=None)
    def test_boundary_oscillation_is_damped_by_hysteresis(self, seed):
        """A rate that straddles the dpu promote threshold (above hi,
        then between lo and hi) must not demote: inside the deadband the
        placement sticks."""
        det = make_detector(dpu_hi=100.0, dpu_lo=40.0)
        decisions = det.observe({"k": 150.0})
        assert [d.target for d in decisions] == [Tier.DPU]
        det.mark_placed("k", Tier.DPU)
        for _ in range(6):
            assert det.observe({"k": 70.0}) == []  # in the deadband
        assert det.target_tier("k") is Tier.DPU
