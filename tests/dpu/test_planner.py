"""TierPlanner placement mechanics: transactional moves across three
tiers, per-tier budgets with coldest-first eviction, byte-stable logs."""

import pytest

from tests.dpu.helpers import ip, make_detector, make_env

from repro.dpu import DpuBudget, DpuDevice, Tier, TierDetector, TierPlanner
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.net.flow import FlowKey
from repro.offload import HeavyHitterDetector, VipKey, decision_state_dump, entry_footprint
from repro.offload.scheduler import ChipBudget

VNI = 1000


def vip(host):
    return VipKey(VNI, ip(host))


def seed_sessions(device, key, count=3):
    for i in range(count):
        device.sessions.ensure(
            FlowKey(ip("10.8.0.1"), key.dst_ip, 17, 40000 + i, 4789),
            (key.vni, key.dst_ip, key.version), now=0.0)


class TestDetectorStacking:
    def test_boundaries_must_nest(self):
        with pytest.raises(ValueError):
            TierDetector(
                chip=HeavyHitterDetector(theta_hi=50.0, theta_lo=20.0),
                dpu=HeavyHitterDetector(theta_hi=100.0, theta_lo=40.0))

    def test_target_tier_follows_the_stacked_states(self):
        det = make_detector()
        key = vip("192.168.10.50")
        det.observe({key: 200.0})
        assert det.target_tier(key) is Tier.DPU
        det.observe({key: 5000.0})
        assert det.target_tier(key) is Tier.CHIP
        det.observe({key: 200.0})  # chip cools, dpu boundary still hot
        assert det.target_tier(key) is Tier.DPU
        det.observe({key: 0.0})
        assert det.target_tier(key) is Tier.X86

    def test_demotion_target_steps_down_one_tier_when_warm(self):
        det = make_detector()
        warm, cold = vip("192.168.10.50"), vip("192.168.10.51")
        det.observe({warm: 200.0, cold: 10.0})
        assert det.demotion_target(warm, Tier.CHIP) is Tier.DPU
        assert det.demotion_target(cold, Tier.CHIP) is Tier.X86
        assert det.demotion_target(warm, Tier.DPU) is Tier.X86


class TestTierMoves:
    def test_promote_to_dpu_installs_steering_through_the_controller(self):
        ctrl, _cid, planner, devices = make_env()
        key = vip("192.168.10.50")
        planner.observe_and_apply({key: 200.0}, now=1.0)
        tier, dev = planner.place_of(key)
        assert tier == "dpu" and dev in planner.devices
        action = ctrl.desired_routes(dev).get((key.vni, key.prefix))
        assert action is not None and action.target == "dpu"
        device = planner.devices[dev]
        assert device.tables.routing.lookup(key.vni, key.dst_ip, 4) is not None
        assert planner.dpu_budgets[dev].used_entries == 1

    def test_dpu_to_chip_promotion_moves_the_route_and_reaps_sessions(self):
        ctrl, cid, planner, _devices = make_env()
        key = vip("192.168.10.50")
        planner.observe_and_apply({key: 200.0}, now=1.0)
        _tier, dev = planner.place_of(key)
        seed_sessions(planner.devices[dev], key)
        planner.observe_and_apply({key: 5000.0}, now=2.0)
        assert planner.place_of(key) == ("chip", None)
        # Old tier fully vacated: no dpu route, no sessions, budget freed.
        assert (key.vni, key.prefix) not in ctrl.desired_routes(dev)
        assert planner.devices[dev].sessions.count_for(
            (key.vni, key.dst_ip, key.version)) == 0
        assert planner.dpu_budgets[dev].used_entries == 0
        # New tier holds exactly one steering route.
        action = ctrl.desired_routes(cid).get((key.vni, key.prefix))
        assert action is not None and action.target == "offload"
        assert planner.counters["sessions_reaped"] == 3

    def test_cooling_key_steps_down_chip_to_dpu_to_x86(self):
        ctrl, cid, planner, _devices = make_env()
        key = vip("192.168.10.50")
        planner.observe_and_apply({key: 5000.0}, now=1.0)
        planner.observe_and_apply({key: 5000.0}, now=2.0)
        assert planner.place_of(key)[0] == "chip"
        planner.observe_and_apply({key: 200.0}, now=3.0)
        assert planner.place_of(key)[0] == "dpu"
        planner.observe_and_apply({key: 0.0}, now=4.0)
        assert planner.place_of(key) == ("x86", None)
        # Nothing left anywhere: all steering withdrawn, budgets empty.
        assert not any(a.target in ("offload", "dpu")
                       for a in ctrl.desired_routes(cid).values())
        assert planner.chip_budget.used.sram_words == 0
        assert all(b.used_entries == 0 for b in planner.dpu_budgets.values())

    def test_chip_eviction_spills_warm_victim_to_dpu(self):
        fp = entry_footprint(4)
        ctrl = None
        det = make_detector()
        from tests.faults.helpers import make_controller, onboard
        ctrl = make_controller()
        cid, _r, _v = onboard(ctrl, vni=VNI)
        chip_budget = ChipBudget(ctrl.clusters[cid],
                                 sram_budget_words=2 * fp.sram_words,
                                 tcam_budget_slices=2 * fp.tcam_slices)
        devices = [DpuDevice("dpu-0", gateway_ip=0x0A00F000)]
        planner = TierPlanner(ctrl, cid, chip_budget, devices, det)
        a, b, c = vip("192.168.10.50"), vip("192.168.10.51"), vip("192.168.10.52")
        planner.observe_and_apply({a: 2000.0, b: 3000.0}, now=1.0)
        assert planner.place_of(a)[0] == "chip"
        assert planner.place_of(b)[0] == "chip"
        planner.observe_and_apply({a: 2000.0, b: 3000.0, c: 4000.0}, now=2.0)
        # c evicted the coldest (a); a is still dpu-warm so it stepped
        # down one tier instead of falling to x86.
        assert planner.place_of(c)[0] == "chip"
        assert planner.place_of(b)[0] == "chip"
        assert planner.place_of(a)[0] == "dpu"
        assert planner.counters["evictions"] == 1

    def test_dpu_eviction_falls_to_x86_when_devices_full(self):
        ctrl, _cid, planner, _devices = make_env(num_devices=1, entry_budget=2)
        cold, warm, hot = (vip("192.168.10.50"), vip("192.168.10.51"),
                           vip("192.168.10.52"))
        planner.observe_and_apply({cold: 150.0, warm: 200.0}, now=1.0)
        planner.observe_and_apply({cold: 150.0, warm: 200.0, hot: 300.0}, now=2.0)
        assert planner.place_of(hot)[0] == "dpu"
        assert planner.place_of(warm)[0] == "dpu"
        assert planner.place_of(cold) == ("x86", None)
        assert planner.counters["evictions"] == 1

    def test_admission_denied_when_nothing_colder(self):
        ctrl, _cid, planner, _devices = make_env(num_devices=1, entry_budget=1)
        hot, hotter = vip("192.168.10.50"), vip("192.168.10.51")
        planner.observe_and_apply({hot: 300.0}, now=1.0)
        # hotter cannot evict hot (hot is NOT colder than 200 < 300)...
        planner.observe_and_apply({hot: 300.0, hotter: 200.0}, now=2.0)
        assert planner.place_of(hotter) == ("x86", None)
        assert planner.counters["promotions_denied"] == 1
        assert any("deny" in line for line in planner.decision_log)

    def test_balanced_device_pick_is_deterministic(self):
        ctrl, _cid, planner, _devices = make_env(num_devices=2)
        a, b = vip("192.168.10.50"), vip("192.168.10.51")
        planner.observe_and_apply({a: 200.0, b: 150.0}, now=1.0)
        # Most-headroom-first with name tiebreak: one key per device.
        assert {planner.place_of(a)[1], planner.place_of(b)[1]} == \
            {"dpu-0", "dpu-1"}

    def test_aborted_withdraw_leaves_placement_intact(self):
        ctrl, _cid, planner, _devices = make_env()
        key = vip("192.168.10.50")
        planner.observe_and_apply({key: 200.0}, now=1.0)
        _tier, dev = planner.place_of(key)
        plan = FaultPlan(seed=5, specs=[
            FaultSpec(FaultKind.FAIL_ROUTE_WRITE, cluster=dev, at_writes=(0,))])
        FaultInjector(plan).arm_cluster(ctrl.clusters[dev])
        planner.observe_and_apply({key: 0.0}, now=2.0)  # demote aborts
        assert planner.place_of(key)[0] == "dpu"  # unchanged
        assert planner.counters["migrations_aborted"] == 1
        assert (key.vni, key.prefix) in ctrl.desired_routes(dev)
        assert any("abort-withdraw" in line for line in planner.decision_log)


class TestDeterminismAndState:
    def run_sequence(self):
        ctrl, _cid, planner, _devices = make_env()
        keys = [vip(f"192.168.10.{50 + i}") for i in range(6)]
        rates = {k: 120.0 + 30.0 * i for i, k in enumerate(keys)}
        planner.observe_and_apply(rates, now=1.0)
        rates[keys[0]] = 5000.0
        planner.observe_and_apply(rates, now=2.0)
        planner.observe_and_apply({k: 0.0 for k in keys}, now=3.0)
        return planner

    def test_decision_state_dump_is_byte_identical(self):
        one, two = self.run_sequence(), self.run_sequence()
        assert decision_state_dump(one) == decision_state_dump(two)
        assert decision_state_dump(one)

    def test_budgets_cover_every_tier(self):
        _ctrl, _cid, planner, _devices = make_env(num_devices=2)
        assert list(planner.budgets()) == ["chip", "dpu-0", "dpu-1"]
        kinds = {b.snapshot()["kind"] for b in planner.budgets().values()}
        assert kinds == {"chip", "dpu"}

    def test_rebuild_from_intent_restores_placements(self):
        ctrl, cid, planner, devices = make_env()
        keys = [vip("192.168.10.50"), vip("192.168.10.51")]
        planner.observe_and_apply({keys[0]: 5000.0, keys[1]: 200.0}, now=1.0)
        planner.observe_and_apply({keys[0]: 5000.0, keys[1]: 200.0}, now=2.0)
        before = {k: planner.place_of(k) for k in keys}
        fresh = TierPlanner(
            ctrl, cid,
            ChipBudget(ctrl.clusters[cid], sram_budget_words=64,
                       tcam_budget_slices=128),
            devices, make_detector())
        assert fresh.rebuild_from_intent() == 2
        assert {k: fresh.place_of(k) for k in keys} == before

    def test_telemetry_series_are_tier_labelled(self):
        _ctrl, _cid, planner, _devices = make_env()
        planner.observe_and_apply({vip("192.168.10.50"): 200.0}, now=1.0)
        for name in ("tier/chip/entries", "tier/dpu/entries",
                     "tier/dpu/sessions", "tier/dpu/dpu-0/entry-occupancy",
                     "offloaded-entries", "chip-sram-occupancy"):
            assert name in planner.series
