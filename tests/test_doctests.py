"""Run the executable examples embedded in module docstrings.

Keeps the documentation honest: the ``>>>`` snippets on public APIs must
actually work.
"""

import doctest

import pytest

import repro.audit.findings
import repro.audit.intent
import repro.audit.sampling
import repro.audit.scanner
import repro.cluster.ecmp
import repro.core.compression
import repro.dataplane.columnar.backend
import repro.dataplane.columnar.batch
import repro.dataplane.columnar.compiler
import repro.dataplane.flowcache
import repro.dataplane.migration
import repro.core.economics
import repro.fuzz.corpus
import repro.fuzz.generator
import repro.fuzz.minimizer
import repro.core.occupancy
import repro.net.addr
import repro.net.checksum
import repro.net.flow
import repro.shard.router
import repro.shard.shard
import repro.sim.engine
import repro.sim.rand
import repro.tables.alpm
import repro.tables.bittrie
import repro.tables.compress
import repro.tables.cuckoo
import repro.tables.lpm
import repro.tables.meter
import repro.tables.counter
import repro.tables.snat
import repro.tables.vm_nc
import repro.tables.vxlan_routing
import repro.dpu.budget
import repro.dpu.device
import repro.dpu.planner
import repro.offload.detector
import repro.offload.parity
import repro.offload.scheduler
import repro.offload.sketch
import repro.telemetry.stats
import repro.telemetry.timeseries
import repro.tofino.chip
import repro.tofino.parser
import repro.tofino.phv
import repro.tofino.pipeline
import repro.workloads.pcap
import repro.x86.cpu
import repro.x86.spray

MODULES = [
    repro.net.addr,
    repro.net.checksum,
    repro.net.flow,
    repro.sim.engine,
    repro.sim.rand,
    repro.tables.bittrie,
    repro.tables.lpm,
    repro.tables.alpm,
    repro.tables.compress,
    repro.tables.cuckoo,
    repro.tables.meter,
    repro.tables.counter,
    repro.tables.snat,
    repro.tables.vm_nc,
    repro.tables.vxlan_routing,
    repro.dataplane.columnar.backend,
    repro.dataplane.columnar.batch,
    repro.dataplane.columnar.compiler,
    repro.dataplane.flowcache,
    repro.dataplane.migration,
    repro.fuzz.generator,
    repro.fuzz.minimizer,
    repro.fuzz.corpus,
    repro.offload.detector,
    repro.offload.parity,
    repro.offload.scheduler,
    repro.offload.sketch,
    repro.dpu.budget,
    repro.dpu.device,
    repro.dpu.planner,
    repro.telemetry.stats,
    repro.telemetry.timeseries,
    repro.tofino.chip,
    repro.tofino.parser,
    repro.tofino.phv,
    repro.tofino.pipeline,
    repro.x86.cpu,
    repro.x86.spray,
    repro.workloads.pcap,
    repro.cluster.ecmp,
    repro.core.occupancy,
    repro.core.compression,
    repro.core.economics,
    repro.audit.findings,
    repro.audit.sampling,
    repro.audit.intent,
    repro.audit.scanner,
    repro.shard.router,
    repro.shard.shard,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"


def test_doctests_actually_exist():
    """At least half the listed modules carry executable examples."""
    with_examples = sum(
        1 for module in MODULES
        if doctest.DocTestFinder().find(module) and any(
            test.examples for test in doctest.DocTestFinder().find(module)
        )
    )
    assert with_examples >= len(MODULES) // 2
