"""Tests for gateway clusters, disaster recovery, and health monitoring."""

import pytest

from repro.cluster.cluster import ClusterError, GatewayCluster, NodeState
from repro.cluster.ecmp import VniSteeredBalancer
from repro.cluster.failover import DisasterRecovery
from repro.cluster.health import Alert, HealthMonitor, Signal, WaterLevel
from repro.core.xgw_h import XgwH
from repro.net.flow import FlowKey


def flow(i=0):
    return FlowKey(0x0A000000 + i, 0x0B000000, 6, 1000 + i, 80)


def make_cluster(cluster_id="A", nodes=2, with_backup=True):
    backup = None
    if with_backup:
        backup = GatewayCluster(
            f"{cluster_id}-backup",
            [(f"bk{i}", XgwH(gateway_ip=100 + i)) for i in range(nodes)],
        )
    return GatewayCluster(
        cluster_id,
        [(f"gw{i}", XgwH(gateway_ip=i + 1)) for i in range(nodes)],
        backup=backup,
    )


class TestGatewayCluster:
    def test_members_sorted(self):
        cluster = make_cluster(nodes=3, with_backup=False)
        assert [m.name for m in cluster.members()] == ["gw0", "gw1", "gw2"]

    def test_needs_nodes(self):
        with pytest.raises(ClusterError):
            GatewayCluster("empty", [])

    def test_duplicate_names(self):
        with pytest.raises(ClusterError):
            GatewayCluster("A", [("gw", XgwH(1)), ("gw", XgwH(2))])

    def test_take_offline_shifts_load(self):
        cluster = make_cluster(nodes=2, with_backup=False)
        cluster.take_offline("gw0")
        assert len(cluster.active_members()) == 1
        assert cluster.load_share() == {"gw1": 1.0}
        cluster.bring_online("gw0")
        assert cluster.load_share() == {"gw0": 0.5, "gw1": 0.5}

    def test_pick_member_requires_active(self):
        cluster = make_cluster(nodes=1, with_backup=False)
        cluster.take_offline("gw0")
        with pytest.raises(ClusterError):
            cluster.pick_member(flow())

    def test_pick_member_stable(self):
        cluster = make_cluster(nodes=4, with_backup=False)
        assert cluster.pick_member(flow(3)).name == cluster.pick_member(flow(3)).name

    def test_replication_includes_backup(self):
        cluster = make_cluster(nodes=2, with_backup=True)
        seen = []
        cluster.for_each_gateway(lambda gw: seen.append(gw))
        assert len(seen) == 4  # 2 main + 2 backup

    def test_isolate_port(self):
        cluster = make_cluster(with_backup=False)
        cluster.isolate_port("gw0", 5)
        assert cluster.member("gw0").healthy_ports == 31
        with pytest.raises(ClusterError):
            cluster.isolate_port("gw0", 99)

    def test_unknown_member(self):
        with pytest.raises(ClusterError):
            make_cluster(with_backup=False).member("ghost")

    def test_add_node(self):
        cluster = make_cluster(nodes=1, with_backup=False)
        cluster.add_node("standby", XgwH(50))
        assert len(cluster.members()) == 2
        with pytest.raises(ClusterError):
            cluster.add_node("standby", XgwH(51))


class TestDisasterRecovery:
    def _setup(self):
        balancer = VniSteeredBalancer()
        cluster = make_cluster("A")
        balancer.register_cluster("A", [m.name for m in cluster.active_members()])
        balancer.assign_vni(10, "A")
        recovery = DisasterRecovery(balancer, {"A": cluster},
                                    cold_standby=[XgwH(gateway_ip=999)])
        return balancer, cluster, recovery

    def test_cluster_failover_to_backup(self):
        balancer, cluster, recovery = self._setup()
        backup = recovery.fail_over_cluster("A", time=1.0)
        assert backup is cluster.backup
        assert recovery.serving_cluster("A") is backup
        # Balancer now points at backup node names, VNI map intact.
        assert balancer.steer(10, flow()).startswith("bk")
        assert recovery.events[0].action == "switch-to-backup"

    def test_failover_requires_backup(self):
        balancer = VniSteeredBalancer()
        cluster = make_cluster("A", with_backup=False)
        recovery = DisasterRecovery(balancer, {"A": cluster})
        with pytest.raises(ClusterError):
            recovery.fail_over_cluster("A")
        with pytest.raises(ClusterError):
            recovery.fail_over_cluster("ghost")

    def test_node_failure_spreads(self):
        _balancer, cluster, recovery = self._setup()
        recovery.fail_node("A", "gw0")
        assert [m.name for m in cluster.active_members()] == ["gw1"]

    def test_drained_cluster_pulls_cold_standby(self):
        _balancer, cluster, recovery = self._setup()
        recovery.fail_node("A", "gw0")
        recovery.fail_node("A", "gw1")
        active = cluster.active_members()
        assert len(active) == 1 and active[0].name.startswith("standby")

    def test_no_standby_left_raises(self):
        balancer = VniSteeredBalancer()
        cluster = make_cluster("A", nodes=1, with_backup=False)
        recovery = DisasterRecovery(balancer, {"A": cluster}, cold_standby=[])
        with pytest.raises(ClusterError):
            recovery.fail_node("A", "gw0")

    def test_port_isolation(self):
        _balancer, cluster, recovery = self._setup()
        recovery.isolate_port("A", "gw1", 3)
        assert cluster.member("gw1").healthy_ports == 31
        assert recovery.events[-1].level == "port"

    def test_alert_handler_triggers_failover(self):
        balancer, cluster, recovery = self._setup()
        handler = recovery.alert_handler()
        handler(Alert(Signal.PACKET_LOSS, "A", 1e-3, 1e-6, time=2.0))
        assert recovery.serving_cluster("A") is cluster.backup

    def test_alert_handler_port_isolation(self):
        _balancer, cluster, recovery = self._setup()
        handler = recovery.alert_handler()
        handler(Alert(Signal.PORT_JITTER, "A/gw0:7", 1.0, 0.5, time=2.0))
        assert cluster.member("gw0").healthy_ports == 31


class TestHealthMonitor:
    def test_alert_on_breach(self):
        monitor = HealthMonitor()
        monitor.set_level(Signal.PACKET_LOSS, threshold=1e-6)
        alert = monitor.observe("region", Signal.PACKET_LOSS, 1e-5, time=1.0)
        assert alert is not None and alert.value == 1e-5
        assert monitor.alerts_for("region") == [alert]

    def test_no_alert_under_threshold(self):
        monitor = HealthMonitor()
        monitor.set_level(Signal.PACKET_LOSS, threshold=1e-6)
        assert monitor.observe("region", Signal.PACKET_LOSS, 1e-9, 1.0) is None

    def test_unconfigured_signal_ignored(self):
        monitor = HealthMonitor()
        assert monitor.observe("x", Signal.TRAFFIC_RATE, 1e12, 0.0) is None

    def test_festival_threshold_raised(self):
        """§6.1: festivals deliberately raise the safe water level."""
        level = WaterLevel(Signal.PACKET_LOSS, threshold=1e-6, festival_threshold=1e-4)
        assert level.breached(1e-5, festival=False)
        assert not level.breached(1e-5, festival=True)

    def test_festival_mode_on_monitor(self):
        monitor = HealthMonitor(festival_mode=True)
        monitor.set_level(Signal.PACKET_LOSS, 1e-6, festival_threshold=1e-4)
        assert monitor.observe("r", Signal.PACKET_LOSS, 1e-5, 0.0) is None
        assert monitor.observe("r", Signal.PACKET_LOSS, 1e-3, 0.0) is not None

    def test_handlers_invoked(self):
        monitor = HealthMonitor()
        monitor.set_level(Signal.TABLE_WATER_LEVEL, threshold=0.85)
        fired = []
        monitor.on_alert(fired.append)
        monitor.observe("cluster-A", Signal.TABLE_WATER_LEVEL, 0.9, 1.0)
        assert len(fired) == 1 and fired[0].subject == "cluster-A"
