"""Hitless rolling upgrades: drain → upgrade → resync → probe → readmit
under live traffic, with zero upgrade-attributable drops."""

from collections import Counter

import pytest

from tests.faults.helpers import tenant_payload

from repro.cluster import (
    ClusterError,
    GatewayCluster,
    NodeState,
    ResilientEcmpGroup,
    UpgradeError,
    UpgradeOrchestrator,
    VniSteeredBalancer,
)
from repro.core.controller import Controller, build_probe_packet
from repro.core.journal import Journal
from repro.core.splitting import ClusterCapacity, TableSplitter
from repro.core.xgw_h import XgwH
from repro.dataplane.gateway_logic import ForwardAction
from repro.net.flow import FlowKey
from repro.sim.engine import Engine


def make_controller(members=4):
    ctrl = Controller(
        TableSplitter(ClusterCapacity(routes=50, vms=500, traffic_bps=1e13)),
        VniSteeredBalancer(),
        journal=Journal(),
    )

    def factory(cluster_id):
        return GatewayCluster(cluster_id, [
            (f"{cluster_id}-gw{i}", XgwH(gateway_ip=0x0AC00000 + i))
            for i in range(members)
        ])

    ctrl.set_cluster_factory(factory)
    return ctrl


def onboarded(members=4):
    ctrl = make_controller(members)
    profile, routes, vms = tenant_payload(100)
    cluster_id = ctrl.add_tenant(profile, routes, vms)
    names = [m.name for m in ctrl.clusters[cluster_id].active_members()]
    return ctrl, cluster_id, names, vms


def traffic(engine, ctrl, cluster_id, group, vm, flows=32, until=12.0):
    """Steer a fixed flow population through the group every 0.25 units,
    recording every packet that does not deliver."""
    packet = build_probe_packet(100, vm.vm_ip)
    population = [FlowKey(0x0A000000 + i, vm.vm_ip, 6, 1000 + i, 80)
                  for i in range(flows)]
    stats = {"sent": 0, "drops": []}

    def tick():
        for flow in population:
            name = group.pick(flow)
            member = ctrl.clusters[cluster_id].find_member(name)
            result = member.gateway.forward(packet)
            stats["sent"] += 1
            if result.action is not ForwardAction.DELIVER_NC:
                stats["drops"].append((engine.now, name, result.detail))

    engine.schedule_every(0.25, tick, until=until)
    return stats


class TestHitlessRoll:
    def test_rolling_upgrade_drops_nothing(self):
        ctrl, cluster_id, names, vms = onboarded()
        group = ResilientEcmpGroup(next_hops=list(names))
        engine = Engine()
        stats = traffic(engine, ctrl, cluster_id, group, vms[0])
        replaced = {}

        def upgrade(member):
            # A reimage: the member returns with empty tables and must be
            # rebuilt entirely from snapshot + journal tail.
            member.gateway = XgwH(gateway_ip=member.gateway.gateway_ip)
            replaced[member.name] = member.gateway

        orch = UpgradeOrchestrator(ctrl, cluster_id, group, engine,
                                   drain_wait=1.0, upgrade_fn=upgrade)
        order = orch.roll()
        engine.run()

        assert stats["sent"] > 0 and stats["drops"] == []
        assert orch.done and not orch.aborted
        assert order == names and set(replaced) == set(names)
        assert sorted(group.next_hops) == sorted(names)
        # Every reimaged member was rebuilt (route + VM) and is ACTIVE.
        for name, gw in replaced.items():
            assert gw.route_count() == 1 and gw.vm_count() == 1
            assert ctrl.clusters[cluster_id].member(name).state is NodeState.ACTIVE
        assert ctrl.consistency_check(cluster_id) == []

    def test_counters_reconcile_with_event_log(self):
        ctrl, cluster_id, names, vms = onboarded()
        group = ResilientEcmpGroup(next_hops=list(names))
        engine = Engine()
        orch = UpgradeOrchestrator(
            ctrl, cluster_id, group, engine, drain_wait=0.5,
            upgrade_fn=lambda m: setattr(m, "gateway",
                                         XgwH(gateway_ip=m.gateway.gateway_ip)))
        orch.roll()
        engine.run()
        actions = Counter(e.action for e in orch.events)
        assert actions["drain"] == orch.counters["drains_started"] == 4
        assert actions["resync"] == orch.counters["resyncs"] == 4
        assert actions["readmit"] == orch.counters["readmits"] == 4
        assert orch.counters["probes_failed"] == 0
        assert "probe-failed" not in actions
        assert actions["complete"] == 1
        assert ctrl.counters["member_resyncs"] == 4
        times = [e.time for e in orch.events]
        assert times == sorted(times)
        summary = orch.summary()
        assert summary["complete"] == 1 and summary["aborted"] == 0

    def test_failed_probe_halts_roll_with_member_drained(self):
        ctrl, cluster_id, names, vms = onboarded()
        group = ResilientEcmpGroup(next_hops=list(names))
        engine = Engine()
        stats = traffic(engine, ctrl, cluster_id, group, vms[0], until=6.0)
        # The reimage wipes the member and the resync path is broken, so
        # the probe gate must catch the empty tables.
        ctrl.resync_member = lambda cid, name: 0
        orch = UpgradeOrchestrator(
            ctrl, cluster_id, group, engine, drain_wait=1.0,
            upgrade_fn=lambda m: setattr(m, "gateway",
                                         XgwH(gateway_ip=m.gateway.gateway_ip)))
        order = orch.roll()
        engine.run()

        assert orch.aborted and not orch.done
        assert orch.counters["drains_started"] == 1
        assert orch.counters["probes_failed"] == 1
        assert orch.counters["readmits"] == 0
        assert orch.events[-2].action == "probe-failed"
        assert orch.events[-1].action == "halted"
        # The suspect member never rejoined steering or the cluster.
        suspect = order[0]
        assert suspect not in group.next_hops
        assert ctrl.clusters[cluster_id].member(suspect).state is NodeState.OFFLINE
        # Survivors absorbed all traffic — still zero drops.
        assert stats["drops"] == []

    def test_aborted_roll_ends_with_terminal_halted_event(self):
        """An aborted roll's event log must terminate explicitly: exactly
        one "halted" event, last in the log, with the roll accounting in
        its detail — consumers never infer an abort from silence."""
        ctrl, cluster_id, names, _vms = onboarded()
        group = ResilientEcmpGroup(next_hops=list(names))
        engine = Engine()
        # Break resync after the second member so the roll dies mid-pass.
        real_resync = ctrl.resync_member
        resyncs = {"n": 0}

        def flaky_resync(cid, name):
            resyncs["n"] += 1
            if resyncs["n"] >= 3:
                return 0
            return real_resync(cid, name)

        ctrl.resync_member = flaky_resync
        orch = UpgradeOrchestrator(
            ctrl, cluster_id, group, engine, drain_wait=0.5,
            upgrade_fn=lambda m: setattr(m, "gateway",
                                         XgwH(gateway_ip=m.gateway.gateway_ip)))
        order = orch.roll()
        engine.run()

        assert orch.aborted and not orch.done
        actions = Counter(e.action for e in orch.events)
        assert actions["halted"] == 1 and actions["complete"] == 0
        assert orch.events[-1].action == "halted"
        assert orch.counters["halts"] == 1
        halted = orch.events[-1]
        assert halted.member == "-"
        assert "2/4 members rolled" in halted.detail
        assert "2 abandoned" in halted.detail
        assert order[2] in halted.detail  # the suspect is named
        summary = orch.summary()
        assert summary["aborted"] == 1 and summary["halts"] == 1

    def test_partial_roll_targets_only_named_members(self):
        ctrl, cluster_id, names, _vms = onboarded()
        group = ResilientEcmpGroup(next_hops=list(names))
        engine = Engine()
        orch = UpgradeOrchestrator(ctrl, cluster_id, group, engine, drain_wait=0.5)
        orch.roll(members=names[:2])
        engine.run()
        assert orch.counters["drains_started"] == 2
        assert orch.counters["readmits"] == 2
        assert orch.done


class TestRollValidation:
    def _orch(self):
        ctrl, cluster_id, names, _vms = onboarded()
        group = ResilientEcmpGroup(next_hops=list(names))
        return UpgradeOrchestrator(ctrl, cluster_id, group, Engine())

    def test_unknown_member_rejected(self):
        with pytest.raises(ClusterError, match="unknown node"):
            self._orch().roll(members=["nonesuch"])

    def test_empty_roll_rejected(self):
        orch = self._orch()
        orch.group.next_hops.clear()
        with pytest.raises(UpgradeError, match="nothing to roll"):
            orch.roll()

    def test_concurrent_roll_rejected(self):
        orch = self._orch()
        orch.roll()
        with pytest.raises(UpgradeError, match="already in progress"):
            orch.roll()

    def test_negative_drain_wait_rejected(self):
        ctrl, cluster_id, names, _vms = onboarded()
        with pytest.raises(UpgradeError, match="non-negative"):
            UpgradeOrchestrator(ctrl, cluster_id,
                                ResilientEcmpGroup(next_hops=list(names)),
                                Engine(), drain_wait=-1.0)
