"""Tests for the ECMP balancer and its next-hop limits."""

from collections import Counter

import pytest

from repro.cluster.ecmp import (
    DEFAULT_MAX_NEXT_HOPS,
    EcmpGroup,
    JUNIPER_MAX_NEXT_HOPS,
    NextHopLimitError,
    VniSteeredBalancer,
)
from repro.net.flow import FlowKey


def flow(i=0):
    return FlowKey(0x0A000000 + i, 0x0B000000, 6, 1000 + i, 80)


class TestEcmpGroup:
    def test_next_hop_limit(self):
        group = EcmpGroup(max_next_hops=JUNIPER_MAX_NEXT_HOPS)
        for i in range(16):
            group.add(f"gw{i}")
        with pytest.raises(NextHopLimitError):
            group.add("gw16")

    def test_default_limit_is_64(self):
        group = EcmpGroup()
        assert group.max_next_hops == DEFAULT_MAX_NEXT_HOPS == 64

    def test_pick_deterministic(self):
        group = EcmpGroup(next_hops=["a", "b", "c"])
        assert group.pick(flow(1)) == group.pick(flow(1))

    def test_pick_spreads(self):
        group = EcmpGroup(next_hops=[f"gw{i}" for i in range(8)])
        counts = Counter(group.pick(flow(i)) for i in range(400))
        assert len(counts) == 8
        assert max(counts.values()) < 150

    def test_pick_empty(self):
        with pytest.raises(NextHopLimitError):
            EcmpGroup().pick(flow())

    def test_remove(self):
        group = EcmpGroup(next_hops=["a", "b"])
        group.remove("a")
        assert len(group) == 1 and group.pick(flow()) == "b"


class TestVniSteering:
    def test_assign_and_steer(self):
        lb = VniSteeredBalancer()
        lb.register_cluster("A", ["gw0", "gw1"])
        lb.register_cluster("B", ["gw2"])
        lb.assign_vni(10, "A")
        lb.assign_vni(11, "B")
        assert lb.steer(10, flow()) in ("gw0", "gw1")
        assert lb.steer(11, flow()) == "gw2"

    def test_unknown_cluster(self):
        lb = VniSteeredBalancer()
        with pytest.raises(KeyError):
            lb.assign_vni(10, "ghost")

    def test_unassigned_vni(self):
        lb = VniSteeredBalancer()
        lb.register_cluster("A", ["gw0"])
        assert lb.cluster_for_vni(10) is None
        with pytest.raises(KeyError):
            lb.steer(10, flow())

    def test_release_vni(self):
        lb = VniSteeredBalancer()
        lb.register_cluster("A", ["gw0"])
        lb.assign_vni(10, "A")
        assert lb.release_vni(10) == "A"
        assert lb.cluster_for_vni(10) is None
        with pytest.raises(KeyError):
            lb.steer(10, flow())

    def test_release_unassigned_vni_is_noop(self):
        lb = VniSteeredBalancer()
        assert lb.release_vni(10) is None

    def test_rebalance_moves_tenant_precisely(self):
        """The "tractable traffic load balancing" argument of §4.3."""
        lb = VniSteeredBalancer()
        lb.register_cluster("A", ["gw0"])
        lb.register_cluster("B", ["gw1"])
        lb.assign_vni(10, "A")
        lb.rebalance_vni(10, "B")
        assert lb.cluster_for_vni(10) == "B"
        assert lb.steer(10, flow()) == "gw1"

    def test_unregister_cleans_vni_map(self):
        lb = VniSteeredBalancer()
        lb.register_cluster("A", ["gw0"])
        lb.assign_vni(10, "A")
        lb.unregister_cluster("A")
        assert lb.cluster_for_vni(10) is None
        assert lb.clusters() == []

    def test_cluster_respects_next_hop_limit(self):
        lb = VniSteeredBalancer(max_next_hops=2)
        with pytest.raises(NextHopLimitError):
            lb.register_cluster("A", ["gw0", "gw1", "gw2"])

    def test_nodes_of(self):
        lb = VniSteeredBalancer()
        lb.register_cluster("A", ["gw0", "gw1"])
        assert lb.nodes_of("A") == ["gw0", "gw1"]

    def test_reregister_replaces_nodes(self):
        """Cluster failover re-points the same id at backup nodes."""
        lb = VniSteeredBalancer()
        lb.register_cluster("A", ["main0"])
        lb.assign_vni(10, "A")
        lb.register_cluster("A", ["backup0"])
        assert lb.steer(10, flow()) == "backup0"
        assert lb.cluster_for_vni(10) == "A"
