"""Tests for resilient (HRW) ECMP vs plain modulo hashing."""

from collections import Counter

import pytest

from repro.cluster.ecmp import (
    EcmpGroup,
    NextHopLimitError,
    ResilientEcmpGroup,
    flow_churn,
)
from repro.net.flow import FlowKey


def flows(n=400):
    return [FlowKey(0x0A000000 + i, 0x0B000000, 6, 1000 + i, 80) for i in range(n)]


class TestResilientGroup:
    def test_deterministic(self):
        group = ResilientEcmpGroup(next_hops=["a", "b", "c"])
        f = flows(1)[0]
        assert group.pick(f) == group.pick(f)

    def test_spreads(self):
        group = ResilientEcmpGroup(next_hops=[f"gw{i}" for i in range(8)])
        counts = Counter(group.pick(f) for f in flows(800))
        assert len(counts) == 8
        assert max(counts.values()) < 2.5 * min(counts.values())

    def test_limit(self):
        group = ResilientEcmpGroup(max_next_hops=2, next_hops=["a", "b"])
        with pytest.raises(NextHopLimitError):
            group.add("c")

    def test_empty(self):
        with pytest.raises(NextHopLimitError):
            ResilientEcmpGroup().pick(flows(1)[0])

    def test_v6_flows(self):
        group = ResilientEcmpGroup(next_hops=["a", "b"])
        flow = FlowKey(1 << 100, 2, 6, 3, 4, version=6)
        assert group.pick(flow) in ("a", "b")


class TestFailureChurn:
    def test_hrw_only_moves_failed_members_flows(self):
        hops = [f"gw{i}" for i in range(8)]
        before = ResilientEcmpGroup(next_hops=list(hops))
        after = ResilientEcmpGroup(next_hops=[h for h in hops if h != "gw3"])
        sample = flows(600)
        churn = flow_churn(before, after, sample)
        # Only gw3's ~1/8 of flows should move.
        assert churn == pytest.approx(1 / 8, abs=0.05)
        # And every unmoved flow kept its exact gateway.
        for flow in sample:
            if before.pick(flow) != "gw3":
                assert after.pick(flow) == before.pick(flow)

    def test_modulo_moves_most_flows(self):
        hops = [f"gw{i}" for i in range(8)]
        before = EcmpGroup(next_hops=list(hops))
        after = EcmpGroup(next_hops=hops[:-1])
        churn = flow_churn(before, after, flows(600))
        # Classic modulo remaps ~(n-1)/n of everything.
        assert churn > 0.5

    def test_hrw_beats_modulo(self):
        hops = [f"gw{i}" for i in range(8)]
        sample = flows(600)
        hrw = flow_churn(
            ResilientEcmpGroup(next_hops=list(hops)),
            ResilientEcmpGroup(next_hops=hops[:-1]),
            sample,
        )
        modulo = flow_churn(
            EcmpGroup(next_hops=list(hops)),
            EcmpGroup(next_hops=hops[:-1]),
            sample,
        )
        assert hrw < modulo / 3

    def test_flow_churn_validation(self):
        with pytest.raises(ValueError):
            flow_churn(EcmpGroup(next_hops=["a"]), EcmpGroup(next_hops=["a"]), [])

    def test_member_addition_churn_small(self):
        """Scaling out with HRW only pulls flows onto the new member."""
        hops = [f"gw{i}" for i in range(7)]
        before = ResilientEcmpGroup(next_hops=list(hops))
        after = ResilientEcmpGroup(next_hops=hops + ["gw7"])
        churn = flow_churn(before, after, flows(600))
        assert churn == pytest.approx(1 / 8, abs=0.05)


class TestDrainReadmitStickiness:
    """The invariant the hitless-upgrade path leans on: draining and
    readmitting a member must not remap flows pinned to the survivors."""

    def test_survivor_flows_never_remap_across_a_full_roll(self):
        import random

        rng = random.Random(42)
        hops = [f"gw{i}" for i in range(6)]
        group = ResilientEcmpGroup(next_hops=list(hops))
        sample = [
            FlowKey(rng.getrandbits(32), rng.getrandbits(32), 6,
                    rng.randrange(1024, 65535), 443)
            for _ in range(500)
        ]
        baseline = [group.pick(f) for f in sample]
        for drained in hops:  # roll every member once, like an upgrade
            group.remove(drained)
            for flow, home in zip(sample, baseline):
                if home != drained:
                    assert group.pick(flow) == home
            group.add(drained)
            # Readmission restores the exact pre-drain mapping: HRW is a
            # pure function of (flow, member set), not of history.
            assert [group.pick(f) for f in sample] == baseline

    def test_drained_flows_spread_over_survivors(self):
        hops = [f"gw{i}" for i in range(6)]
        group = ResilientEcmpGroup(next_hops=list(hops))
        sample = flows(600)
        orphans = [f for f in sample if group.pick(f) == "gw3"]
        group.remove("gw3")
        rehomed = Counter(group.pick(f) for f in orphans)
        # The drained member's flows land on several survivors, not one.
        assert len(rehomed) >= 3
