"""Seeded round-trip fuzz for the tofino parser/deparser pair.

Mirrors ``tests/net/test_headers_fuzz.py``: deterministic via
``repro.sim.rand.derive``, no hypothesis dependency. Three contracts:

(a) every well-formed VXLAN packet the traffic builder can produce
    parses to contiguous extractions and deparses back byte-identically
    (with and without identity rewrites);
(b) each well-known rewrite helper agrees byte-for-byte with the
    reference ``Packet`` codec's ``with_*`` editors — including the
    recomputed IPv4 header checksum;
(c) truncation and corruption never escape as anything other than a
    clean reject/``DeparseError``.
"""

import pytest

from repro.net.packet import Packet
from repro.sim.rand import derive
from repro.tofino.deparser import (
    DeparseError,
    FieldRewrite,
    deparse,
    rewrite_outer_dst,
    rewrite_outer_src,
    rewrite_vni,
)
from repro.tofino.parser import ParserOverrunError, gateway_parse_graph
from repro.workloads.traffic import build_vxlan_packet

ROUNDS = 150
GRAPH = gateway_parse_graph()


def random_vxlan_packet(rng):
    version = rng.choice((4, 4, 6))  # v4-heavy, like real tenant mixes
    bits = 32 if version == 4 else 128
    return build_vxlan_packet(
        vni=rng.getrandbits(24),
        src_ip=rng.getrandbits(bits),
        dst_ip=rng.getrandbits(bits),
        version=version,
        src_port=rng.randrange(1, 1 << 16),
        dst_port=rng.randrange(1, 1 << 16),
        payload=bytes(rng.getrandbits(8) for _ in range(rng.randrange(24))),
        outer_src=rng.getrandbits(32),
        outer_dst=rng.getrandbits(32),
    )


def test_parse_extractions_are_contiguous():
    rng = derive(2021, "tofino-parse-layout")
    for _ in range(ROUNDS):
        packet = random_vxlan_packet(rng)
        result = GRAPH.parse(packet.to_bytes())
        assert result.accepted, result.reject_reason
        offset = 0
        for extraction in result.extractions:
            assert extraction.offset == offset
            offset += extraction.length
        headers = result.headers()
        assert headers[:1] == ["ethernet"]
        assert {"vxlan", "inner_ethernet"} <= set(headers)
        inner_ip = "inner_ipv4" if packet.inner.ip.version == 4 else "inner_ipv6"
        assert inner_ip in headers


def test_identity_deparse_roundtrips():
    rng = derive(2021, "tofino-identity")
    for _ in range(ROUNDS):
        raw = random_vxlan_packet(rng).to_bytes()
        parsed = GRAPH.parse(raw)
        assert deparse(raw, parsed, []) == raw
        # Rewriting fields to their current values must also be a no-op:
        # the checksum engine recomputes to the same checksum.
        packet = Packet.from_bytes(raw)
        identity = [
            rewrite_outer_src(packet.ip.src),
            rewrite_outer_dst(packet.ip.dst),
            rewrite_vni(packet.vxlan.vni),
        ]
        assert deparse(raw, parsed, identity) == raw


def test_rewrites_match_packet_codec():
    rng = derive(2021, "tofino-rewrites")
    for _ in range(ROUNDS):
        raw = random_vxlan_packet(rng).to_bytes()
        parsed = GRAPH.parse(raw)
        packet = Packet.from_bytes(raw)
        dst, src, vni = (rng.getrandbits(32), rng.getrandbits(32),
                         rng.getrandbits(24))
        assert (deparse(raw, parsed, [rewrite_outer_dst(dst)])
                == packet.with_outer_dst(dst).to_bytes())
        assert (deparse(raw, parsed, [rewrite_outer_src(src)])
                == packet.with_outer_src(src).to_bytes())
        assert (deparse(raw, parsed, [rewrite_vni(vni)])
                == packet.with_vni(vni).to_bytes())
        combined = deparse(raw, parsed, [rewrite_outer_dst(dst),
                                         rewrite_outer_src(src),
                                         rewrite_vni(vni)])
        reference = (packet.with_outer_dst(dst).with_outer_src(src)
                     .with_vni(vni).to_bytes())
        assert combined == reference


def test_truncations_reject_cleanly():
    rng = derive(2021, "tofino-truncate")
    raw = random_vxlan_packet(rng).to_bytes()
    for cut in range(len(raw)):
        result = GRAPH.parse(raw[:cut])  # must not raise
        if not result.accepted:
            assert result.reject_reason
        # Deparsing whatever was extracted is still total.
        assert deparse(raw[:cut], result, []) == raw[:cut]


def test_corrupted_packets_parse_or_reject():
    rng = derive(2021, "tofino-corrupt")
    for _ in range(ROUNDS):
        wire = bytearray(random_vxlan_packet(rng).to_bytes())
        for _flip in range(rng.randrange(1, 5)):
            wire[rng.randrange(len(wire))] ^= 1 << rng.randrange(8)
        try:
            result = GRAPH.parse(bytes(wire))
        except ParserOverrunError:  # pragma: no cover - graph is acyclic
            pytest.fail("corruption must not overrun the parse graph")
        assert deparse(bytes(wire), result, []) == bytes(wire)


def test_random_bytes_never_crash():
    rng = derive(2021, "tofino-random-bytes")
    for _ in range(ROUNDS):
        raw = bytes(rng.getrandbits(8) for _ in range(rng.randrange(120)))
        result = GRAPH.parse(raw)
        assert result.accepted or result.reject_reason


class TestRewriteValidation:
    def _parsed(self):
        raw = build_vxlan_packet(7, 1, 2).to_bytes()
        return raw, GRAPH.parse(raw)

    def test_rewrite_beyond_header_bounds(self):
        raw, parsed = self._parsed()
        with pytest.raises(DeparseError):
            deparse(raw, parsed, [FieldRewrite("vxlan", 6, b"\x00\x00\x00")])

    def test_rewrite_of_unparsed_header(self):
        raw, parsed = self._parsed()
        with pytest.raises(DeparseError):
            deparse(raw, parsed, [FieldRewrite("inner_ipv6", 0, b"\x60")])

    def test_vni_out_of_range(self):
        with pytest.raises(DeparseError):
            rewrite_vni(1 << 24)
        with pytest.raises(DeparseError):
            rewrite_vni(-1)


def test_fuzz_is_deterministic():
    def sample():
        rng = derive(7, "tofino-determinism")
        return [random_vxlan_packet(rng).to_bytes() for _ in range(5)]

    assert sample() == sample()
