"""Tests for the deparser: rewrites on raw bytes must equal the packet
model's structured rewrites, byte for byte."""

import pytest

from repro.net.checksum import verify_checksum
from repro.net.packet import Packet
from repro.tofino.deparser import (
    DeparseError,
    FieldRewrite,
    deparse,
    rewrite_outer_dst,
    rewrite_outer_src,
    rewrite_vni,
)
from repro.tofino.parser import gateway_parse_graph
from repro.workloads.traffic import build_vxlan_packet


@pytest.fixture(scope="module")
def graph():
    return gateway_parse_graph()


def roundtrip(graph, packet, rewrites):
    raw = packet.to_bytes()
    parsed = graph.parse(raw)
    assert parsed.accepted
    return deparse(raw, parsed, rewrites)


class TestDeparse:
    def test_no_rewrites_identity(self, graph):
        packet = build_vxlan_packet(7, 1, 2)
        assert roundtrip(graph, packet, []) == packet.to_bytes()

    def test_outer_dst_matches_packet_model(self, graph):
        packet = build_vxlan_packet(7, 0xC0A80A02, 0xC0A80A03)
        wire = roundtrip(graph, packet, [rewrite_outer_dst(0x0A010101)])
        expected = packet.with_outer_dst(0x0A010101).to_bytes()
        assert wire == expected

    def test_full_gateway_rewrite(self, graph):
        """The complete LOCAL-delivery edit: src, dst and VNI."""
        packet = build_vxlan_packet(100, 0xC0A80A02, 0xC0A81E05)
        wire = roundtrip(graph, packet, [
            rewrite_outer_src(0x0AFFFF01),
            rewrite_outer_dst(0x0A010F0F),
            rewrite_vni(200),
        ])
        expected = (
            packet.with_outer_src(0x0AFFFF01)
            .with_outer_dst(0x0A010F0F)
            .with_vni(200)
            .to_bytes()
        )
        assert wire == expected

    def test_ipv4_checksum_recomputed(self, graph):
        packet = build_vxlan_packet(7, 1, 2)
        wire = roundtrip(graph, packet, [rewrite_outer_dst(0xDEADBEEF)])
        # The outer IPv4 header (bytes 14..34) must checksum to zero.
        assert verify_checksum(wire[14:34])

    def test_reparses_cleanly(self, graph):
        packet = build_vxlan_packet(7, 1, 2)
        wire = roundtrip(graph, packet, [rewrite_vni(99)])
        assert Packet.from_bytes(wire).vni == 99

    def test_unparsed_header_rejected(self, graph):
        plain = build_vxlan_packet(7, 1, 2).decap()
        raw = plain.to_bytes()
        parsed = graph.parse(raw)
        with pytest.raises(DeparseError):
            deparse(raw, parsed, [rewrite_vni(5)])

    def test_oversized_rewrite_rejected(self, graph):
        packet = build_vxlan_packet(7, 1, 2)
        raw = packet.to_bytes()
        parsed = graph.parse(raw)
        with pytest.raises(DeparseError):
            deparse(raw, parsed, [FieldRewrite("vxlan", 6, b"\x00" * 4)])

    def test_bad_vni_rejected(self):
        with pytest.raises(DeparseError):
            rewrite_vni(1 << 24)

    def test_be_helper(self):
        rewrite = FieldRewrite.be("ipv4", 16, 0x01020304, 4)
        assert rewrite.value == b"\x01\x02\x03\x04"
