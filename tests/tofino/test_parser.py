"""Tests for the programmable parser model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.headers import Ethernet, HeaderError, IPv4, UDP, ETHERTYPE_IPV4
from repro.net.packet import Packet
from repro.tofino.parser import (
    ACCEPT,
    DEFAULT,
    ParseGraph,
    ParseState,
    ParserOverrunError,
    REJECT,
    gateway_parse_graph,
)
from repro.workloads.traffic import build_vxlan_packet


@pytest.fixture(scope="module")
def graph():
    return gateway_parse_graph()


class TestGatewayGraph:
    def test_vxlan_packet_fully_parsed(self, graph):
        raw = build_vxlan_packet(7, 0xC0A80A02, 0xC0A80A03).to_bytes()
        result = graph.parse(raw)
        assert result.accepted
        assert result.headers() == [
            "ethernet", "ipv4", "udp", "vxlan", "inner_ethernet",
            "inner_ipv4", "inner_l4",
        ]

    def test_v6_inner(self, graph):
        raw = build_vxlan_packet(7, 1 << 100, 2, version=6).to_bytes()
        result = graph.parse(raw)
        assert result.accepted and "inner_ipv6" in result.headers()

    def test_offsets_match_wire_layout(self, graph):
        raw = build_vxlan_packet(7, 1, 2).to_bytes()
        result = graph.parse(raw)
        vxlan = result.find("vxlan")
        assert vxlan.offset == 14 + 20 + 8  # eth + ipv4 + udp
        assert vxlan.length == 8
        inner_ip = result.find("inner_ipv4")
        assert inner_ip.offset == vxlan.offset + 8 + 14

    def test_plain_udp_accepted_without_vxlan(self, graph):
        plain = Packet(
            eth=Ethernet(1, 2, ETHERTYPE_IPV4),
            ip=IPv4(src=1, dst=2, proto=17),
            l4=UDP(src_port=53, dst_port=53),
            payload=b"dns",
        )
        result = graph.parse(plain.to_bytes())
        assert result.accepted
        assert "vxlan" not in result.headers()

    def test_truncated_rejected(self, graph):
        raw = build_vxlan_packet(7, 1, 2).to_bytes()
        result = graph.parse(raw[:30])
        assert not result.accepted
        assert "truncated" in result.reject_reason

    def test_bad_vxlan_flag_rejected(self, graph):
        raw = bytearray(build_vxlan_packet(7, 1, 2).to_bytes())
        raw[14 + 20 + 8] = 0x00  # clear the I flag
        result = graph.parse(bytes(raw))
        assert not result.accepted

    def test_unknown_ethertype_rejected(self, graph):
        raw = bytearray(build_vxlan_packet(7, 1, 2).to_bytes())
        raw[12:14] = b"\x86\x00"
        result = graph.parse(bytes(raw))
        assert not result.accepted

    @settings(max_examples=200, deadline=None)
    @given(st.binary(max_size=150))
    def test_agrees_with_packet_codec(self, graph, raw):
        """Whatever the byte codec parses as VXLAN, the parse graph must
        accept with a vxlan extraction — and vice versa for rejects."""
        try:
            packet = Packet.from_bytes(raw)
            codec_vxlan = packet.is_vxlan
        except HeaderError:
            codec_vxlan = None  # codec rejected
        result = graph.parse(raw)
        if codec_vxlan is True:
            assert result.accepted and "vxlan" in result.headers()


class TestGraphMechanics:
    def test_loop_guard(self):
        graph = ParseGraph(start="a")
        graph.add_state(ParseState("a", header_length=lambda b: 0,
                                   transitions={DEFAULT: "a"}))
        with pytest.raises(ParserOverrunError):
            graph.parse(b"\x00" * 4)

    def test_unknown_state(self):
        graph = ParseGraph(start="ghost")
        with pytest.raises(ParserOverrunError):
            graph.parse(b"\x00")

    def test_default_transition_to_accept(self):
        graph = ParseGraph(start="a")
        graph.add_state(ParseState("a", header_length=lambda b: 1))
        assert graph.parse(b"\x00").accepted

    def test_explicit_reject(self):
        graph = ParseGraph(start="a")
        graph.add_state(ParseState(
            "a", header_length=lambda b: 1, selector=lambda b: b[0],
            transitions={0: ACCEPT, DEFAULT: REJECT},
        ))
        assert graph.parse(b"\x00").accepted
        assert not graph.parse(b"\x01").accepted
