"""Tests for pipe traversal, folding, bridging, and the chip perf model."""

import pytest

from repro.net.headers import ETHERTYPE_IPV4, Ethernet, IPv4, UDP
from repro.net.packet import Packet
from repro.tofino.chip import Chip, PIPE_PPS_CAP, WIRE_OVERHEAD_BYTES
from repro.tofino.pipeline import (
    Gress,
    PipeResult,
    PipelineFabric,
    TraversalError,
    Verdict,
    folded_path,
    normal_path,
)


def plain_packet():
    return Packet(
        eth=Ethernet(1, 2, ETHERTYPE_IPV4),
        ip=IPv4(src=1, dst=2, proto=17),
        l4=UDP(1, 2),
        payload=b"x",
    )


def passthrough(packet, md, ref):
    return PipeResult(Verdict.CONTINUE)


class TestPaths:
    def test_folded_path_pipe0(self):
        assert folded_path(0) == [
            (0, Gress.INGRESS), (1, Gress.EGRESS), (1, Gress.INGRESS), (0, Gress.EGRESS),
        ]

    def test_folded_path_pipe2(self):
        assert folded_path(2) == [
            (2, Gress.INGRESS), (3, Gress.EGRESS), (3, Gress.INGRESS), (2, Gress.EGRESS),
        ]

    def test_folded_entry_restricted(self):
        with pytest.raises(TraversalError):
            folded_path(1)

    def test_normal_path(self):
        assert normal_path(1) == [(1, Gress.INGRESS), (1, Gress.EGRESS)]
        assert normal_path(0, 3) == [(0, Gress.INGRESS), (3, Gress.EGRESS)]
        with pytest.raises(TraversalError):
            normal_path(4)


class TestFabricTraversal:
    def _folded_fabric(self, programs=None):
        fabric = PipelineFabric(folded=True)
        for pipeline in range(4):
            for gress in Gress:
                fabric.attach(pipeline, gress, (programs or {}).get(
                    (pipeline, gress), passthrough))
        return fabric

    def test_entry_pipelines(self):
        assert PipelineFabric(folded=True).entry_pipelines() == [0, 2]
        assert PipelineFabric(folded=False).entry_pipelines() == [0, 1, 2, 3]

    def test_folded_traversal_visits_four_pipes(self):
        fabric = self._folded_fabric()
        result = fabric.process(plain_packet(), 0)
        assert result.pipes_traversed == 4
        assert result.verdict is Verdict.FORWARD

    def test_missing_program_raises(self):
        fabric = PipelineFabric(folded=True)
        with pytest.raises(TraversalError):
            fabric.process(plain_packet(), 0)

    def test_drop_short_circuits(self):
        def dropper(packet, md, ref):
            return PipeResult(Verdict.DROP, drop_reason="acl")

        fabric = self._folded_fabric({(1, Gress.EGRESS): dropper})
        result = fabric.process(plain_packet(), 0)
        assert result.verdict is Verdict.DROP
        assert result.drop_reason == "acl"
        assert result.pipes_traversed == 2

    def test_metadata_does_not_cross_gress_without_bridge(self):
        seen = {}

        def setter(packet, md, ref):
            md.set("x", 5, bits=8)
            return PipeResult(Verdict.CONTINUE)  # no bridge

        def reader(packet, md, ref):
            seen["has_x"] = "x" in md
            return PipeResult(Verdict.CONTINUE)

        fabric = self._folded_fabric({(0, Gress.INGRESS): setter,
                                      (1, Gress.EGRESS): reader})
        fabric.process(plain_packet(), 0)
        assert seen["has_x"] is False

    def test_bridge_carries_fields(self):
        seen = {}

        def setter(packet, md, ref):
            md.set("x", 5, bits=8)
            return PipeResult(Verdict.CONTINUE, bridge_fields=["x"])

        def reader(packet, md, ref):
            seen["x"] = md.get("x")
            return PipeResult(Verdict.CONTINUE)

        fabric = self._folded_fabric({(0, Gress.INGRESS): setter,
                                      (1, Gress.EGRESS): reader})
        result = fabric.process(plain_packet(), 0)
        assert seen["x"] == 5
        assert result.bridged_bytes == 1

    def test_packet_rewrite_propagates(self):
        def rewriter(packet, md, ref):
            return PipeResult(Verdict.CONTINUE, packet=packet.with_outer_dst(99))

        fabric = self._folded_fabric({(1, Gress.INGRESS): rewriter})
        result = fabric.process(plain_packet(), 0)
        assert result.packet.ip.dst == 99

    def test_pipe_packet_counters(self):
        fabric = self._folded_fabric()
        for _ in range(3):
            fabric.process(plain_packet(), 0)
        fabric.process(plain_packet(), 2)
        share = fabric.egress_pipe_share()
        assert share[(1)] == 3 and share[3] == 1


class TestChipPerformance:
    def test_folded_latency_doubles(self):
        folded = Chip(folded=True)
        normal = Chip(folded=False)
        assert folded.forwarding_latency_ns() > 1.9 * normal.forwarding_latency_ns()

    def test_latency_matches_paper(self):
        """Fig. 18(c): folded XGW-H latency ~2.2us."""
        assert 2.0 <= Chip(folded=True).forwarding_latency_us() <= 2.4

    def test_throughput_halves_when_folded(self):
        assert Chip(folded=True).max_throughput_bps() == pytest.approx(3.2e12)
        assert Chip(folded=False).max_throughput_bps() == pytest.approx(6.4e12)

    def test_pps_cap(self):
        assert Chip(folded=True).max_pps() == pytest.approx(2 * PIPE_PPS_CAP)
        assert Chip(folded=False).max_pps() == pytest.approx(4 * PIPE_PPS_CAP)

    def test_line_rate_below_256B(self):
        """Fig. 18(b): line rate with packets smaller than 256B."""
        chip = Chip(folded=True)
        assert chip.rate_at(256).line_rate
        assert chip.rate_at(192).line_rate
        assert chip.min_line_rate_packet() <= 192

    def test_packet_rate_at_192B_matches_fig18(self):
        """~1.8 Gpps reported in Fig. 18(b)."""
        pps = Chip(folded=True).rate_at(192).packet_rate_pps
        assert 1.7e9 <= pps <= 2.0e9

    def test_tiny_packets_cpu_bound(self):
        chip = Chip(folded=True)
        report = chip.rate_at(64)
        assert not report.line_rate
        assert report.packet_rate_pps == pytest.approx(chip.max_pps())

    def test_rate_bad_size(self):
        with pytest.raises(ValueError):
            Chip().rate_at(0)

    def test_bridged_bytes_increase_latency(self):
        chip = Chip(folded=True)
        assert chip.forwarding_latency_ns(bridged_bytes=1000) > chip.forwarding_latency_ns()

    def test_process_requires_entry_pipeline(self):
        chip = Chip(folded=True)
        chip.attach_symmetric({(role, gress): passthrough
                               for role in (0, 1) for gress in Gress})
        with pytest.raises(ValueError):
            chip.process(plain_packet(), entry_pipeline=1)

    def test_attach_symmetric_mirrors(self):
        chip = Chip(folded=True)
        chip.attach_symmetric({(role, gress): passthrough
                               for role in (0, 1) for gress in Gress})
        # Entry via pipeline 2 works because programs were mirrored.
        result = chip.process(plain_packet(), entry_pipeline=2)
        assert result.verdict is Verdict.FORWARD

    def test_drop_counted(self):
        def dropper(packet, md, ref):
            return PipeResult(Verdict.DROP, drop_reason="x")

        chip = Chip(folded=True)
        chip.attach_symmetric({(role, gress): dropper
                               for role in (0, 1) for gress in Gress})
        chip.process(plain_packet(), 0)
        assert chip.packets_dropped == 1 and chip.packets_in == 1
