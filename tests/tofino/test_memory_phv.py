"""Tests for stage/pipeline memory accounting and the PHV model."""

import pytest

from repro.tables.geometry import MemoryFootprint
from repro.tofino.memory import (
    AllocationError,
    PipelineMemory,
    SRAM_BLOCKS_PER_STAGE,
    SRAM_WORDS_PER_BLOCK,
    SRAM_WORDS_PER_PIPELINE,
    STAGES_PER_PIPELINE,
    StageMemory,
    TCAM_BLOCKS_PER_STAGE,
    TCAM_SLICES_PER_PIPELINE,
    blocks_for_footprint,
)
from repro.tofino.phv import Bridge, Metadata, PhvOverflowError


class TestGeometryConstants:
    def test_pipeline_capacity(self):
        assert SRAM_WORDS_PER_PIPELINE == 12 * 80 * 1024
        assert TCAM_SLICES_PER_PIPELINE == 12 * 24 * 512


class TestStageMemory:
    def test_allocate_and_track(self):
        stage = StageMemory(0)
        stage.allocate("t1", sram_blocks=10, tcam_blocks=2)
        assert stage.sram_blocks_used() == 10
        assert stage.tcam_blocks_used() == 2
        assert stage.allocations["t1"].sram_words == 10 * SRAM_WORDS_PER_BLOCK

    def test_over_allocate(self):
        stage = StageMemory(0)
        with pytest.raises(AllocationError):
            stage.allocate("t", SRAM_BLOCKS_PER_STAGE + 1, 0)
        with pytest.raises(AllocationError):
            stage.allocate("t", 0, TCAM_BLOCKS_PER_STAGE + 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            StageMemory(0).allocate("t", -1, 0)

    def test_release(self):
        stage = StageMemory(0)
        stage.allocate("t1", 10, 2)
        stage.release_all("t1")
        assert stage.sram_blocks_free == SRAM_BLOCKS_PER_STAGE
        assert stage.tcam_blocks_free == TCAM_BLOCKS_PER_STAGE
        stage.release_all("absent")  # no-op

    def test_cumulative_allocations_same_owner(self):
        stage = StageMemory(0)
        stage.allocate("t", 1, 0)
        stage.allocate("t", 2, 1)
        assert stage.allocations["t"].sram_words == 3 * SRAM_WORDS_PER_BLOCK


class TestPipelineMemory:
    def test_occupancy(self):
        memory = PipelineMemory(0)
        memory.stages[0].allocate("t", 80, 0)  # one full stage of SRAM
        assert memory.sram_occupancy() == pytest.approx(1 / STAGES_PER_PIPELINE)
        assert memory.tcam_occupancy() == 0.0

    def test_release_all_owner(self):
        memory = PipelineMemory(0)
        memory.stages[0].allocate("t", 5, 1)
        memory.stages[3].allocate("t", 5, 1)
        memory.release_all("t")
        assert memory.sram_words_used() == 0

    def test_owners(self):
        memory = PipelineMemory(0)
        memory.stages[0].allocate("b", 1, 0)
        memory.stages[1].allocate("a", 1, 0)
        assert memory.owners() == ["a", "b"]


class TestBlocksForFootprint:
    def test_rounding_up(self):
        fp = MemoryFootprint(sram_words=1, tcam_slices=1)
        assert blocks_for_footprint(fp) == (1, 1)

    def test_exact(self):
        fp = MemoryFootprint(sram_words=2048, tcam_slices=1024)
        assert blocks_for_footprint(fp) == (2, 2)

    def test_zero(self):
        assert blocks_for_footprint(MemoryFootprint.zero()) == (0, 0)


class TestMetadata:
    def test_set_get(self):
        md = Metadata()
        md.set("vni", 42, bits=24)
        assert md.get("vni") == 42 and "vni" in md

    def test_default(self):
        md = Metadata()
        assert md.get("missing", default=7) == 7
        with pytest.raises(KeyError):
            md.get("missing")

    def test_width_checked(self):
        md = Metadata()
        with pytest.raises(ValueError):
            md.set("x", 256, bits=8)
        with pytest.raises(ValueError):
            md.set("x", 1, bits=0)

    def test_redeclare_width_rejected(self):
        md = Metadata()
        md.set("x", 1, bits=8)
        md.set("x", 2, bits=8)  # same width: fine
        with pytest.raises(ValueError):
            md.set("x", 1, bits=16)

    def test_budget_enforced(self):
        md = Metadata(budget_bits=16)
        md.set("a", 1, bits=8)
        md.set("b", 1, bits=8)
        with pytest.raises(PhvOverflowError):
            md.set("c", 1, bits=1)
        assert md.used_bits() == 16

    def test_rewrite_does_not_recharge(self):
        md = Metadata(budget_bits=8)
        md.set("a", 1, bits=8)
        md.set("a", 2, bits=8)
        assert md.used_bits() == 8

    def test_clear(self):
        md = Metadata()
        md.set("a", 1, bits=8)
        md.clear()
        assert md.used_bits() == 0


class TestBridge:
    def test_carry_and_restore(self):
        md = Metadata()
        md.set("vni", 42, bits=24)
        md.set("nc", 7, bits=32)
        md.set("unused", 1, bits=1)
        bridge = Bridge.carry(md, ["vni", "nc"])
        fresh = Metadata()
        bridge.restore_into(fresh)
        assert fresh.get("vni") == 42 and fresh.get("nc") == 7
        assert "unused" not in fresh

    def test_carry_unset_field(self):
        with pytest.raises(KeyError):
            Bridge.carry(Metadata(), ["vni"])

    def test_wire_overhead(self):
        md = Metadata()
        md.set("vni", 1, bits=24)
        md.set("scope", 1, bits=3)
        bridge = Bridge.carry(md, ["vni", "scope"])
        assert bridge.wire_overhead_bytes == 4  # 27 bits -> 4 bytes

    def test_empty_bridge_is_free(self):
        assert Bridge().wire_overhead_bytes == 0
