"""Tests for the table-placement compiler."""

import pytest

from repro.tables.geometry import MemoryFootprint
from repro.tofino.compiler import Compiler, PlacementError, Segment, TableSpec, pipe_order
from repro.tofino.memory import (
    SRAM_WORDS_PER_BLOCK,
    SRAM_WORDS_PER_PIPELINE,
    SRAM_WORDS_PER_STAGE,
)
from repro.tofino.pipeline import Gress, PipelineFabric


def fp(sram=0, tcam=0):
    return MemoryFootprint(sram_words=sram, tcam_slices=tcam)


class TestPipeOrder:
    def test_folded_order(self):
        order = pipe_order(folded=True)
        assert order[0] == (0, Gress.INGRESS)
        assert order[-1] == (0, Gress.EGRESS)

    def test_normal_order(self):
        assert len(pipe_order(folded=False)) == 2


class TestPlacement:
    def test_simple_placement(self):
        fabric = PipelineFabric(folded=True)
        compiler = Compiler(fabric)
        spec = TableSpec("t", fp(sram=1000))
        report = compiler.place(
            [spec], [Segment("t", (0, Gress.INGRESS), fp(sram=1000))]
        )
        assert report.pipes_of("t") == [(0, Gress.INGRESS)]
        assert fabric.memory[0].sram_words_used() == SRAM_WORDS_PER_BLOCK

    def test_spans_stages_within_pipeline(self):
        fabric = PipelineFabric(folded=True)
        compiler = Compiler(fabric)
        # Two stages' worth of SRAM.
        big = fp(sram=SRAM_WORDS_PER_STAGE + 1)
        compiler.place([TableSpec("t", big)], [Segment("t", (0, Gress.INGRESS), big)])
        used_stages = [s for s in fabric.memory[0].stages if s.sram_blocks_used()]
        assert len(used_stages) == 2

    def test_overflow_raises_and_rolls_back(self):
        fabric = PipelineFabric(folded=True)
        compiler = Compiler(fabric)
        too_big = fp(sram=SRAM_WORDS_PER_PIPELINE + 1)
        with pytest.raises(PlacementError):
            compiler.place(
                [TableSpec("t", too_big)], [Segment("t", (0, Gress.INGRESS), too_big)]
            )
        assert fabric.memory[0].sram_words_used() == 0

    def test_dependency_order_enforced(self):
        fabric = PipelineFabric(folded=True)
        compiler = Compiler(fabric)
        specs = [
            TableSpec("a", fp(sram=10)),
            TableSpec("b", fp(sram=10), depends_on=("a",)),
        ]
        # b placed before a on the path -> error.
        with pytest.raises(PlacementError):
            compiler.place(specs, [
                Segment("a", (1, Gress.INGRESS), fp(sram=10)),
                Segment("b", (1, Gress.EGRESS), fp(sram=10)),
            ])

    def test_dependency_order_satisfied(self):
        fabric = PipelineFabric(folded=True)
        compiler = Compiler(fabric)
        specs = [
            TableSpec("a", fp(sram=10)),
            TableSpec("b", fp(sram=10), depends_on=("a",)),
        ]
        report = compiler.place(specs, [
            Segment("a", (0, Gress.INGRESS), fp(sram=10)),
            Segment("b", (1, Gress.EGRESS), fp(sram=10)),
        ])
        assert set(report.stage_map) == {"a", "b"}

    def test_unknown_dependency(self):
        fabric = PipelineFabric(folded=True)
        compiler = Compiler(fabric)
        with pytest.raises(PlacementError):
            compiler.place(
                [TableSpec("b", fp(sram=1), depends_on=("ghost",))],
                [Segment("b", (0, Gress.INGRESS), fp(sram=1))],
            )

    def test_pipe_not_on_path(self):
        # In an unfolded fabric the normal path for the 0/1 pair is
        # (0, INGRESS) -> (0, EGRESS); pipeline 1 is a separate entry, so a
        # segment pinned to (1, INGRESS) is off the checked path.
        compiler = Compiler(PipelineFabric(folded=False))
        with pytest.raises(PlacementError):
            compiler.place(
                [TableSpec("t", fp(sram=1))],
                [Segment("t", (1, Gress.INGRESS), fp(sram=1))],
            )

    def test_occupancy_report(self):
        fabric = PipelineFabric(folded=True)
        compiler = Compiler(fabric)
        compiler.place(
            [TableSpec("t", fp(sram=10, tcam=10))],
            [Segment("t", (0, Gress.INGRESS), fp(sram=10, tcam=10))],
        )
        occ = compiler.occupancy()
        assert occ[0].sram_words == SRAM_WORDS_PER_BLOCK
        assert occ[1].sram_words == 0
