#!/usr/bin/env python3
"""Cross-layer invariant audit + reconcile-driven repair, end to end.

The §6.1 consistency check compares desired state against installed
tables, but it is one layer deep and one direction only: a gateway that
*kept* a VM binding the controller deleted looks perfectly consistent
to it. ``repro.audit`` closes that gap with an invariant library that
reads the tables back — intent vs installed routes and VMs (both
directions), LPM structures vs a linear-scan oracle, ACL shadowing,
peer-chain termination, tenant isolation, counter conservation, and
flow-cache coherence — swept by a budgeted scanner so the per-tick
control-plane cost is bounded.

This demo:

1. onboards two peered tenants onto a journaled cluster;
2. drops the ``remove_vm`` write on one gateway via a seeded fault plan
   (the controller's own ``consistency_check`` stays empty!);
3. attaches the budgeted scanner to the event engine and ticks it for
   exactly one scan cycle — the orphan binding is found, routed through
   ``targeted_repair``, probed, and the cluster readmitted;
4. replays the same seed and shows the findings log is byte-identical.

Run:  python examples/audit_repair.py
"""

import ipaddress

from repro.audit import AuditConfig, AuditScanner, RepairBridge
from repro.cluster.cluster import GatewayCluster
from repro.cluster.ecmp import VniSteeredBalancer
from repro.core.controller import Controller, RouteEntry, VmEntry
from repro.core.journal import Journal
from repro.core.splitting import ClusterCapacity, TableSplitter, TenantProfile
from repro.core.xgw_h import XgwH
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.net.addr import Prefix
from repro.sim.engine import Engine
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import RouteAction, Scope


def ip(text):
    return int(ipaddress.ip_address(text))


def make_controller():
    ctrl = Controller(
        TableSplitter(ClusterCapacity(routes=200, vms=2000, traffic_bps=1e13)),
        VniSteeredBalancer(),
        journal=Journal(),
    )

    def factory(cluster_id):
        nodes = [(f"{cluster_id}-gw{i}", XgwH(gateway_ip=10 + i)) for i in range(2)]
        backup = GatewayCluster(
            f"{cluster_id}-backup",
            [(f"{cluster_id}-bk0", XgwH(gateway_ip=100))],
        )
        return GatewayCluster(cluster_id, nodes, backup=backup)

    ctrl.set_cluster_factory(factory)
    return ctrl


def onboard(ctrl):
    routes = [
        RouteEntry(100, Prefix.parse("192.168.10.0/24"), RouteAction(Scope.LOCAL)),
        RouteEntry(100, Prefix.parse("0.0.0.0/0"),
                   RouteAction(Scope.INTERNET, target="inet")),
    ]
    vms = [VmEntry(100, ip("192.168.10.2"), 4, NcBinding(ip("10.1.1.11")))]
    cluster_id = ctrl.add_tenant(TenantProfile(100, 2, 1, 1e9), routes, vms)
    routes2 = [
        RouteEntry(101, Prefix.parse("192.168.20.0/24"), RouteAction(Scope.LOCAL)),
        RouteEntry(101, Prefix.parse("192.168.10.0/24"),
                   RouteAction(Scope.PEER, next_hop_vni=100)),
    ]
    vms2 = [VmEntry(101, ip("192.168.20.2"), 4, NcBinding(ip("10.1.2.11")))]
    assert ctrl.add_tenant(TenantProfile(101, 2, 1, 1e9), routes2, vms2) == cluster_id
    return cluster_id


def run(seed):
    ctrl = make_controller()
    cluster_id = onboard(ctrl)

    # Drop the delete on one gateway: a classic silent divergence.
    plan = FaultPlan(seed=seed, specs=[
        FaultSpec(FaultKind.DROP_VM_WRITE, node="*-gw0", max_fires=1)])
    FaultInjector(plan).arm_controller(ctrl)
    ctrl.remove_vm(cluster_id, 100, ip("192.168.10.2"), 4)
    print(f"removed VM 192.168.10.2; faults injected: {len(plan.log)}")
    print(f"controller's own consistency_check: "
          f"{ctrl.consistency_check(cluster_id)!r}  <- blind")

    scanner = AuditScanner(ctrl, AuditConfig(seed=seed, budget=4))
    bridge = RepairBridge(ctrl).attach(scanner)
    cycle = scanner.cycle_length()
    print(f"audit: {len(scanner._build_units())} units, "
          f"budget 4/tick -> cycle length {cycle}")

    engine = Engine()
    scanner.attach(engine, interval=1.0, until=cycle * 1.0)
    engine.run()

    for f in scanner.log.findings():
        print(f"  found: [{f.severity}] {f.invariant}/{f.kind} "
              f"{f.node} key={f.key}")
    print(f"repaired: {bridge.counters['repairs_applied']}, "
          f"admitted={ctrl.is_admitted(cluster_id)}, "
          f"post-repair scan: {len(scanner.full_scan())} finding(s)")
    return scanner.log.dump()


def main() -> None:
    print("=== run 1 (seed 2021) ===")
    first = run(2021)
    print("\n=== run 2 (same seed) ===")
    second = run(2021)
    print(f"\nbyte-identical findings log: {first == second}")


if __name__ == "__main__":
    main()
