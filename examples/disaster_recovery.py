#!/usr/bin/env python3
"""Disaster recovery at all three levels, plus VTrace diagnostics (§6.1).

Walks through the paper's recovery playbook on a live region:

1. port level — a jittery port is isolated;
2. node level — a gateway fails, the cluster absorbs its load; when the
   cluster drains, a cold-standby gateway is pulled in;
3. cluster level — a packet-loss alert flips traffic to the 1:1 hot
   backup, with consistency verified before and after;

and then uses the VTrace-style tracer to localise an injected
forwarding fault to the exact pipe.

Run:  python examples/disaster_recovery.py
"""

from repro.cluster.health import Signal
from repro.core.sailfish import RegionSpec, Sailfish
from repro.dataplane.gateway_logic import ForwardAction
from repro.workloads.traffic import RegionTrafficGenerator, build_vxlan_packet


def check_traffic(region, label, packets=300):
    report = region.forward_sample(
        packets=packets,
        generator=RegionTrafficGenerator(region.topology, seed=5, internet_share=0.0),
    )
    print(f"  traffic check [{label}]: {report.delivered}/{report.packets} "
          f"delivered, {report.dropped} dropped")
    return report


def main() -> None:
    region = Sailfish.build(RegionSpec.small(), seed=17)
    cluster_id = sorted(region.controller.clusters)[0]
    cluster = region.controller.clusters[cluster_id]
    print(f"region up: cluster {cluster_id} with "
          f"{[m.name for m in cluster.active_members()]}, hot backup "
          f"{cluster.backup.cluster_id}")
    check_traffic(region, "baseline")

    print("\n=== 1. Port-level: isolate a jittery port ===")
    node = cluster.members()[0].name
    region.monitor.observe(f"{cluster_id}/{node}:7", Signal.PORT_JITTER, 1.0, time=1.0)
    region.recovery.isolate_port(cluster_id, node, 7, time=1.0)
    print(f"  {node} healthy ports: {cluster.member(node).healthy_ports}/32")
    check_traffic(region, "port isolated")

    print("\n=== 2. Node-level: gateway failure ===")
    region.recovery.fail_node(cluster_id, node, time=2.0)
    print(f"  active members now: {[m.name for m in cluster.active_members()]}")
    check_traffic(region, "node down")

    print("\n=== 3. Cluster-level: loss alert -> hot backup ===")
    alert = region.monitor.observe(cluster_id, Signal.PACKET_LOSS, 1e-3, time=3.0)
    serving = region.recovery.serving_cluster(cluster_id)
    print(f"  alert: {alert.signal.value} at {alert.value:.0e} "
          f"-> serving cluster is now {serving.cluster_id}")
    check_traffic(region, "on backup cluster")
    print(f"  recovery audit log: "
          f"{[(e.level, e.action) for e in region.recovery.events]}")

    print("\n=== 4. VTrace: localise an injected fault ===")
    vm = next(v for vni in region.topology.vnis()
              for v in region.topology.vpcs[vni].vms if v.version == 4)
    packet = build_vxlan_packet(vm.vni, vm.ip ^ 1, vm.ip)
    # Inject the fault on exactly the gateway this flow hashes to.
    from repro.dataplane.gateway_logic import inner_flow_key

    victim = serving.pick_member(inner_flow_key(packet)).gateway
    victim.split_vm_nc.half_for_ip(vm.ip).remove(vm.vni, vm.ip, 4)
    print(f"  injected: VM-NC entry for {vm.ip:#x} removed on one gateway")
    findings = region.controller.consistency_check(cluster_id)
    print(f"  consistency check: {len(findings)} finding(s): "
          f"{[f.kind for f in findings[:3]]}")
    result, trace = region.trace(packet)
    print("  trace of the failing packet:")
    print(trace.describe())
    repaired = region.controller.repair(cluster_id)
    print(f"  controller repair: {repaired} divergence(s) fixed")
    result, _ = region.trace(packet)
    print(f"  after repair: {result.action.value}")


if __name__ == "__main__":
    main()
