#!/usr/bin/env python3
"""The closed offload loop, end to end (§2.2-2.3 hybrid deployment).

One XGW-x86 box absorbs a Zipf flow population whose head pins its
hottest RSS cores at 100% — the Fig. 4 pathology. The heavy-hitter
detector (count-min sketch + space-saving tracker, EWMA smoothing,
promote/demote hysteresis) nominates the elephants, and the
capacity-aware scheduler steers them onto an XGW-H cluster through the
controller's two-phase transaction path, never exceeding the chip's
compiler-reported SRAM/TCAM headroom.

Watch for:

1. interval 0: ~40% loss, hottest core saturated;
2. a burst of ``promote`` lines once the hysteresis streak completes;
3. steady state: zero x86 loss, elephants served by the chip, and the
   hardware counter sweep keeping their rates live so nothing flaps;
4. the same seed replays the decision log byte for byte.

Run:  python examples/offload_loop.py
"""

import ipaddress

from repro.cluster.cluster import GatewayCluster
from repro.cluster.ecmp import VniSteeredBalancer
from repro.core.controller import Controller, RouteEntry
from repro.core.splitting import ClusterCapacity, TableSplitter, TenantProfile
from repro.core.xgw_h import XgwH
from repro.net.addr import Prefix
from repro.offload import (
    ChipBudget,
    HeavyHitterDetector,
    OffloadLoop,
    OffloadScheduler,
)
from repro.sim.engine import Engine
from repro.tables.vxlan_routing import RouteAction, Scope
from repro.workloads.flows import heavy_hitter_flows
from repro.x86.cpu import DEFAULT_CORE_PPS
from repro.x86.gateway import XgwX86

VNI = 1000


def make_controller():
    ctrl = Controller(
        TableSplitter(ClusterCapacity(routes=50, vms=500, traffic_bps=1e13)),
        VniSteeredBalancer(),
    )
    ctrl.set_cluster_factory(lambda cid: GatewayCluster(
        cid, [(f"{cid}-gw{i}", XgwH(gateway_ip=10 + i)) for i in range(2)]))
    profile = TenantProfile(VNI, 1, 0, 1e9)
    routes = [RouteEntry(VNI, Prefix.parse("192.168.0.0/16"),
                         RouteAction(Scope.LOCAL))]
    cluster_id = ctrl.add_tenant(profile, routes, [])
    return ctrl, cluster_id


def run(seed):
    ctrl, cluster_id = make_controller()
    budget = ChipBudget(ctrl.clusters[cluster_id], sram_budget_words=64,
                        tcam_budget_slices=128)
    detector = HeavyHitterDetector(
        theta_hi=0.5 * DEFAULT_CORE_PPS, theta_lo=0.2 * DEFAULT_CORE_PPS,
        promote_after=2, demote_after=3, ewma_alpha=0.5, seed=seed)
    scheduler = OffloadScheduler(ctrl, cluster_id, budget, detector=detector)
    gateway = XgwX86(gateway_ip=int(ipaddress.ip_address("10.0.0.1")))
    flows = heavy_hitter_flows(100, 0.4 * gateway.total_capacity_pps,
                               seed=4, alpha=1.4, vnis=[VNI])
    print(f"{len(flows)} flows, {sum(f.pps for f in flows) / 1e6:.1f}Mpps "
          f"offered onto one {len(gateway.cpu.cores)}-core XGW-x86")

    engine = Engine()
    loop = OffloadLoop(engine, [gateway], scheduler, detector,
                       lambda _t: flows)
    loop.start(until=20.0)
    engine.run(until=20.0)

    for snap in loop.snapshots:
        if snap.time in (1.0, 3.0, 10.0, 20.0):
            print(f"  t={snap.time:>4.0f}s  x86 loss={snap.x86_loss:6.2%}  "
                  f"hottest core={snap.x86_max_core_util:4.0%}  "
                  f"offloaded={snap.offloaded_pps / 1e6:5.2f}Mpps")

    occ = scheduler.budget.occupancy()
    print(f"offloaded VIPs: {len(scheduler.offloaded)}  "
          f"chip occupancy: sram={occ['sram']:.1%} tcam={occ['tcam']:.1%}")
    print("decision log:")
    for line in scheduler.decision_log:
        print(f"  {line}")
    return scheduler.decision_log_text()


def main() -> None:
    print("=== run 1 (seed 7) ===")
    first = run(7)
    print("\n=== run 2 (same seed) ===")
    second = run(7)
    print(f"\nbyte-identical decision log: {first == second}")


if __name__ == "__main__":
    main()
