#!/usr/bin/env python3
"""Single-node table compression, end to end (§4.4, Tables 2-4, Fig. 17).

Prints the paper's memory-occupancy artefacts from the calibrated model,
then cross-checks the two calibrated coefficients against the executable
structures: a real ALPM carve over composite (VNI || IP) keys and a real
compressed exact-match table.

Run:  python examples/compression_report.py
"""

from repro.core.compression import CompressionPlan, calibrate_alpm
from repro.core.occupancy import ALL_STEPS, OccupancyModel
from repro.core.planner import table4_occupancy
from repro.net.addr import Prefix
from repro.sim.rand import derive
from repro.tables.pooled import PooledExactTable
from repro.tables.vxlan_routing import RouteAction, Scope, VxlanRoutingTable


def print_table2(model: OccupancyModel) -> None:
    print("=== Table 2: naive occupancy (would-be, does NOT fit) ===")
    t2 = model.table2()
    print(f"{'table':22s} {'IPv4':>8s} {'IPv6':>8s}")
    print(f"{'VXLAN routing (TCAM)':22s} "
          f"{t2['vxlan_routing']['ipv4'].tcam_percent:7.0f}% "
          f"{t2['vxlan_routing']['ipv6'].tcam_percent:7.0f}%")
    print(f"{'VM-NC (SRAM)':22s} "
          f"{t2['vm_nc']['ipv4'].sram_percent:7.0f}% "
          f"{t2['vm_nc']['ipv6'].sram_percent:7.0f}%")
    total = t2["sum"]["mixed"]
    print(f"{'sum (75/25 mix)':22s} SRAM {total.sram_percent:5.0f}%  "
          f"TCAM {total.tcam_percent:6.2f}%")


def print_fig17(model: OccupancyModel) -> None:
    print("\n=== Fig. 17: step-by-step compression ===")
    report = CompressionPlan.full().apply(model)
    print(f"{'step':12s} {'SRAM':>7s} {'TCAM':>7s}")
    for label, sram, tcam in report.as_percent_table():
        print(f"{label:12s} {sram:6.1f}% {tcam:6.1f}%")
    for step in CompressionPlan.full().steps:
        print(f"  {step.label}: {step.description}")


def print_table3_4(model: OccupancyModel) -> None:
    print("\n=== Table 3: the two major tables after optimization ===")
    t3 = model.table3()
    for name, occ in t3.items():
        print(f"{name:16s} SRAM {occ.sram_percent:5.1f}%  TCAM {occ.tcam_percent:5.1f}%")
    print("\n=== Table 4: overall occupancy with all service tables ===")
    for key, (sram, tcam) in table4_occupancy(model).items():
        print(f"{key:16s} SRAM {sram * 100:5.1f}%  TCAM {tcam * 100:5.1f}%")


def cross_check_alpm(model: OccupancyModel) -> None:
    print("\n=== Executable cross-check 1: real ALPM carve ===")
    rng = derive(11, "demo-routes")
    routing = VxlanRoutingTable()
    for vni in range(1000, 1080):
        for _ in range(12):
            net = rng.randrange(1 << 20) << 12
            routing.insert(vni, Prefix.of(net, 20, 4), RouteAction(Scope.LOCAL),
                           replace=True)
    calibration = calibrate_alpm(routing, model)
    stats = calibration.stats
    print(f"routes: {stats.routes}  partitions: {stats.partitions}  "
          f"bucket capacity: {stats.bucket_capacity}")
    print(f"bucket utilization: measured {calibration.measured_utilization:.3f} "
          f"vs calibrated {calibration.calibrated_utilization:.3f}")
    print(f"TCAM entries: {stats.partitions} pivots for {stats.routes} routes "
          f"({stats.routes / stats.partitions:.1f}x conservation)")


def cross_check_compression() -> None:
    print("\n=== Executable cross-check 2: 128->32 key compression ===")
    table = PooledExactTable()
    rng = derive(13, "demo-vms")
    for i in range(20_000):
        table.insert(1000 + i % 50, rng.randrange(1 << 128), 6, i)
    print(f"entries: {len(table)}  digest conflicts: {table.conflict_entries()} "
          f"(paper: 'very limited conflicts')")
    print(f"SRAM words/entry: {table.words_per_entry} "
          f"(vs 4 words for a raw 152-bit key)")


def main() -> None:
    model = OccupancyModel.paper_scale()
    print(f"workload: {model.scale.routes:,} routes, {model.scale.vms:,} VMs, "
          f"{model.scale.ipv6_fraction:.0%} IPv6\n")
    print_table2(model)
    print_fig17(model)
    print_table3_4(model)
    s4, t4 = model.reduction_vs_naive(0.0)
    s6, t6 = model.reduction_vs_naive(1.0)
    print(f"\nheadline reductions: IPv4 SRAM -{s4:.0%} TCAM -{t4:.0%}; "
          f"IPv6 SRAM -{s6:.0%} TCAM -{t6:.0%}")
    cross_check_alpm(model)
    cross_check_compression()


if __name__ == "__main__":
    main()
