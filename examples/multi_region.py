#!/usr/bin/env python3
"""Cross-region communication over the CEN (Fig. 1, Table 1).

Builds two regions ("china" and "usa") with disjoint address plans,
provisions a cross-region VPC connection through the CEN — including the
VNI translation the controller installs at the boundary — and walks a
packet from a VM in one region to a VM in the other, printing every hop.

Run:  python examples/multi_region.py
"""

import ipaddress
from dataclasses import replace

from repro.core.multiregion import Cen
from repro.core.sailfish import RegionSpec, Sailfish
from repro.workloads.traffic import build_vxlan_packet


def fmt(value: int) -> str:
    return str(ipaddress.ip_address(value))


def main() -> None:
    cen = Cen()
    china = Sailfish.build(RegionSpec.small(), seed=61)
    usa = Sailfish.build(replace(RegionSpec.small(), subnet_base_index=4096),
                         seed=62)
    cen.attach("china", china)
    cen.attach("usa", usa)
    cen.add_link("china", "usa")

    vni_a = china.topology.vnis()[0]
    vni_b = usa.topology.vnis()[0]
    print(f"china: VPC vni={vni_a}, subnets "
          f"{[str(s) for s in china.topology.vpcs[vni_a].subnets]}")
    print(f"usa:   VPC vni={vni_b}, subnets "
          f"{[str(s) for s in usa.topology.vpcs[vni_b].subnets]}")

    cen.connect_vpcs(("china", vni_a), ("usa", vni_b))
    print("\nprovisioned cross-region connection (routes + VNI translation)")

    src = next(vm for vm in china.topology.vpcs[vni_a].vms if vm.version == 4)
    dst = next(vm for vm in usa.topology.vpcs[vni_b].vms if vm.version == 4)
    packet = build_vxlan_packet(vni_a, src.ip, dst.ip)
    print(f"\nVM {fmt(src.ip)} (china, vni={vni_a}) -> "
          f"VM {fmt(dst.ip)} (usa, vni={vni_b})")

    outcome = cen.forward("china", packet)
    for hop in outcome.hops:
        print(f"  via {hop}")
    print(f"outcome: {outcome.result.action.value}")
    print(f"  delivered to NC {fmt(outcome.result.packet.ip.dst)} "
          f"with vni={outcome.result.packet.vni} (translated at the CEN)")
    print(f"  one-way CEN latency: {outcome.latency_us / 1000:.0f} ms")

    # The return direction works symmetrically.
    reply = build_vxlan_packet(vni_b, dst.ip, src.ip)
    back = cen.forward("usa", reply)
    print(f"\nreturn path: {' -> '.join(back.hops)} "
          f"-> {back.result.action.value} (vni={back.result.packet.vni})")


if __name__ == "__main__":
    main()
