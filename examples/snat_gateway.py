#!/usr/bin/env python3
"""Fig. 11: stateful SNAT split between XGW-H and XGW-x86.

A VM with a private address reaches the Internet: the hardware gateway
recognises the SNAT service tag and redirects to the software gateway,
which allocates a public (IP, port), rewrites, and decapsulates. The
response from the Internet lands on the software gateway directly and is
re-encapsulated back to the VM's NC.

Run:  python examples/snat_gateway.py
"""

import ipaddress
from dataclasses import replace

from repro.core.xgw_h import XgwH
from repro.dataplane.gateway_logic import ForwardAction, GatewayTables
from repro.net.addr import Prefix
from repro.net.headers import UDP
from repro.tables.snat import SnatTable
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import RouteAction, Scope
from repro.workloads.traffic import build_vxlan_packet
from repro.x86.gateway import XgwX86

VPC = 100


def ip(text: str) -> int:
    return int(ipaddress.ip_address(text))


def fmt(value: int) -> str:
    return str(ipaddress.ip_address(value))


def main() -> None:
    # -- control plane: the table-sharing decision of §4.2 ---------------
    # XGW-H: routing + VM-NC only. The O(100M)-entry session table would
    # never fit on-chip, so Internet-bound traffic carries a SERVICE tag.
    xgw_h = XgwH(gateway_ip=ip("10.0.0.254"))
    xgw_h.install_route(VPC, Prefix.parse("192.168.10.0/24"), RouteAction(Scope.LOCAL))
    xgw_h.install_route(VPC, Prefix.parse("0.0.0.0/0"),
                        RouteAction(Scope.SERVICE, target="snat"))
    xgw_h.install_vm(VPC, ip("192.168.10.2"), 4, NcBinding(ip("10.1.1.11")))

    # XGW-x86: same routing view + the SNAT session table and public IPs.
    tables = GatewayTables()
    for vni, prefix, action in xgw_h.tables.routing.items():
        tables.routing.insert(vni, prefix, action)
    tables.vm_nc.insert(VPC, ip("192.168.10.2"), 4, NcBinding(ip("10.1.1.11")))
    snat = SnatTable(public_ips=[ip("203.0.113.1"), ip("203.0.113.2")])
    xgw_x86 = XgwX86(gateway_ip=ip("10.0.0.253"), tables=tables, snat=snat)

    # -- request: VM -> Internet (red arrow in Fig. 11) -------------------
    request = build_vxlan_packet(VPC, ip("192.168.10.2"), ip("93.184.216.34"),
                                 src_port=5555, dst_port=80, payload=b"GET /")
    print("VM sends:", f"vni={request.vni}",
          f"{fmt(request.inner.ip.src)}:{request.inner.l4.src_port} ->",
          f"{fmt(request.inner_dst)}:{request.inner.l4.dst_port}")

    hop1 = xgw_h.forward(request)
    assert hop1.action is ForwardAction.REDIRECT_X86
    print(f"XGW-H: SERVICE tag matched -> redirect to XGW-x86 ({hop1.detail})")

    hop2 = xgw_x86.forward(request)
    assert hop2.action is ForwardAction.UPLINK
    out = hop2.packet
    print("XGW-x86: session allocated, tunnel removed")
    print(f"  on the wire: {fmt(out.ip.src)}:{out.l4.src_port} -> "
          f"{fmt(out.ip.dst)}:{out.l4.dst_port}  (public source)")
    session = snat.lookup(
        # the session is keyed by the inner 5-tuple
        next(iter(snat._by_flow))
    )
    print(f"  session table: {len(snat)} entries, "
          f"{snat.available_ports()} free ports remain")

    # -- response: Internet -> VM (blue arrow) ----------------------------
    response = replace(
        out,
        ip=type(out.ip)(src=out.ip.dst, dst=out.ip.src, proto=out.ip.proto),
        l4=UDP(src_port=out.l4.dst_port, dst_port=out.l4.src_port),
        payload=b"200 OK",
    )
    print(f"\nInternet replies to {fmt(response.ip.dst)}:{response.l4.dst_port}")
    hop3 = xgw_x86.forward_response(response)
    assert hop3.action is ForwardAction.DELIVER_NC
    final = hop3.packet
    print("XGW-x86: reverse match, re-encapsulated")
    print(f"  vni={final.vni}  outer dst {fmt(final.ip.dst)} (the VM's NC)")
    print(f"  inner dst {fmt(final.inner.ip.dst)}:{final.inner.l4.dst_port} "
          f"(original VM address and port restored)")
    print(f"  payload: {final.inner.payload!r}")

    # -- why this split: the size math ------------------------------------
    print("\nWhy SNAT lives in software (§4.2):")
    print("  VM-NC entries:   O(1M)   -> fits on-chip after compression")
    print("  SNAT sessions:   O(100M) -> DRAM only; volatile per-session state")


if __name__ == "__main__":
    main()
