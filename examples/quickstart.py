#!/usr/bin/env python3
"""Quickstart: build a Sailfish region and push traffic through it.

Builds a small synthetic region (VPCs, VMs, NCs), brings up the XGW-H
clusters and the XGW-x86 fleet through the central controller, then
forwards a traffic sample and prints where everything went.

Run:  python examples/quickstart.py
"""

from repro import RegionSpec, Sailfish
from repro.workloads.traffic import RegionTrafficGenerator


def main() -> None:
    spec = RegionSpec.small()
    region = Sailfish.build(spec, seed=7)

    print("=== Region built ===")
    print(f"VPCs: {len(region.topology.vpcs)}  VMs: {region.topology.total_vms}  "
          f"routes: {region.topology.total_routes()}")
    print(f"XGW-H clusters: {sorted(region.controller.clusters)}")
    print(f"XGW-x86 fallback nodes: {len(region.x86_fleet)}")

    # The controller verifies tables before admitting traffic (§6.1).
    for cluster_id in sorted(region.controller.clusters):
        findings = region.controller.consistency_check(cluster_id)
        probe = region.controller.probe(cluster_id, limit=16)
        print(f"cluster {cluster_id}: consistency findings={len(findings)}, "
              f"probes {probe.passed}/{probe.sent} ok")

    # Forward a realistic sample (80/20 destination popularity, a slice of
    # Internet-bound SNAT traffic).
    generator = RegionTrafficGenerator(region.topology, seed=7, internet_share=0.03)
    report = region.forward_sample(packets=2_000, generator=generator)

    print("\n=== Traffic sample ===")
    print(f"packets:    {report.packets}")
    print(f"delivered:  {report.delivered} (to destination NCs)")
    print(f"uplinked:   {report.uplinked} (Internet/IDC/cross-region)")
    print(f"dropped:    {report.dropped} {report.drop_details or ''}")
    print(f"via XGW-x86: {report.software_packets} "
          f"({report.software_ratio:.2%} — the paper measures < 0.02%)")

    gw = next(iter(region.controller.clusters.values())).members()[0].gateway
    print("\n=== Single XGW-H characteristics ===")
    print(f"forwarding latency: {gw.latency_us():.2f} us (paper: ~2 us)")
    print(f"throughput:         {gw.throughput_bps() / 1e12:.1f} Tbps (folded)")
    print(f"packet rate @192B:  {gw.chip.rate_at(192).packet_rate_pps / 1e9:.2f} Gpps")


if __name__ == "__main__":
    main()
