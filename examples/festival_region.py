#!/usr/bin/env python3
"""A shopping-festival week: XGW-x86 fleet vs Sailfish (Figs. 4-7, 19-22).

Simulates the same festival traffic against (a) a software-gateway
region, reproducing the CPU-overload/loss story of §2.3, and (b) the
Sailfish region, reproducing the six-orders-lower loss of Fig. 19, the
pipe balance of Figs. 20/21 and the tiny software share of Fig. 22.

Run:  python examples/festival_region.py
"""

from repro.core.sailfish import RegionSpec, Sailfish
from repro.telemetry.stats import top_n_share
from repro.workloads.flows import festival_series, heavy_hitter_flows, split_flows_over_gateways
from repro.workloads.traffic import RegionTrafficGenerator
from repro.x86.gateway import XgwX86

DAYS = 7
SAMPLES_PER_DAY = 24
NUM_X86 = 15


def software_region_week(seed: int = 3):
    """Figs. 4-7: an x86 region under Zipf heavy hitters."""
    gateways = [XgwX86(gateway_ip=i + 1) for i in range(NUM_X86)]
    region_capacity = sum(gw.total_capacity_pps for gw in gateways)
    load_curve = festival_series(DAYS, SAMPLES_PER_DAY, region_capacity * 0.45,
                                 seed=seed, festival_day=5, festival_boost=1.8)
    worst_core, total_dropped, total_offered = 0.0, 0.0, 0.0
    peak_top2 = 0.0
    for i, (_t, offered) in enumerate(load_curve):
        flows = heavy_hitter_flows(120, offered, seed=(seed, i), alpha=1.3)
        per_gateway = split_flows_over_gateways(flows, NUM_X86)
        for gw, bucket in zip(gateways, per_gateway):
            report = gw.serve_interval([(f.flow, f.pps) for f in bucket])
            total_offered += report.offered_pps
            total_dropped += report.dropped_pps
            for ci in report.core_intervals:
                if ci.utilization >= 1.0:
                    worst_core = 1.0
                    peak_top2 = max(
                        peak_top2,
                        top_n_share(list(ci.flow_share.values()), 2),
                    )
    return worst_core, total_dropped / total_offered, peak_top2


def main() -> None:
    print("=== Software-gateway region (XGW-x86 x15), festival week ===")
    worst_core, loss, top2 = software_region_week()
    print(f"cores pinned at 100%:      {'yes' if worst_core >= 1.0 else 'no'}")
    print(f"region loss rate:          {loss:.2e}  (paper Fig. 5: ~1e-5..1e-4)")
    print(f"top-2 flow share on an overloaded core: {top2:.0%} (Fig. 7)")

    print("\n=== Sailfish region, same week ===")
    region = Sailfish.build(RegionSpec.medium(), seed=3)
    capacity = region.hardware_capacity_pps()
    curve = festival_series(DAYS, SAMPLES_PER_DAY, capacity * 0.45, seed=4,
                            festival_day=5, festival_boost=1.8)
    worst_loss = 0.0
    for t, offered in curve:
        _rate, sample_loss = region.record_festival_sample(t, offered)
        worst_loss = max(worst_loss, sample_loss)
    print(f"peak offered load:         {max(v for _t, v in curve) / 1e9:.2f} Gpps")
    print(f"worst loss rate:           {worst_loss:.2e}  (paper Fig. 19: 1e-11..1e-10)")
    print(f"alerts raised:             {len(region.monitor.alerts)}")

    print("\n=== Traffic balance between pipes (Figs. 20/21) ===")
    generator = RegionTrafficGenerator(region.topology, seed=5, internet_share=0.01)
    report = region.forward_sample(packets=4_000, generator=generator)
    for cluster_id in sorted(region.controller.clusters):
        cluster = region.controller.clusters[cluster_id]
        for member in cluster.active_members():
            share = member.gateway.egress_pipe_share()
            pipe1, pipe3 = share.get(1, 0), share.get(3, 0)
            total = pipe1 + pipe3
            if total:
                print(f"{cluster_id}/{member.name}: egress pipe1 {pipe1 / total:.1%} "
                      f"vs pipe3 {pipe3 / total:.1%}")

    print("\n=== Traffic sharing between XGW-H and XGW-x86 (Fig. 22) ===")
    print(f"packets via hardware: {report.hardware_packets}")
    print(f"packets via software: {report.software_packets} "
          f"({report.software_ratio:.3%} of traffic; paper: < 0.02%)")


if __name__ == "__main__":
    main()
