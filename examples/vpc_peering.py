#!/usr/bin/env python3
"""Fig. 2 by hand: same-VPC and cross-VPC forwarding on one XGW-H.

Reconstructs the paper's Fig. 2 tables entry by entry — VPC A and VPC B,
their VXLAN routes (Local + Peer) and VM-NC bindings — then sends both
example packets through the folded-pipeline hardware gateway and shows
every rewrite.

Run:  python examples/vpc_peering.py
"""

import ipaddress

from repro.core.xgw_h import XgwH
from repro.net.addr import Prefix
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import RouteAction, Scope
from repro.workloads.traffic import build_vxlan_packet

VPC_A, VPC_B = 100, 200


def ip(text: str) -> int:
    return int(ipaddress.ip_address(text))


def fmt(value: int) -> str:
    return str(ipaddress.ip_address(value))


def main() -> None:
    gw = XgwH(gateway_ip=ip("10.0.0.254"))

    # The VXLAN routing table of Fig. 2.
    gw.install_route(VPC_A, Prefix.parse("192.168.10.0/24"), RouteAction(Scope.LOCAL))
    gw.install_route(VPC_A, Prefix.parse("192.168.30.0/24"),
                     RouteAction(Scope.PEER, next_hop_vni=VPC_B))
    gw.install_route(VPC_B, Prefix.parse("192.168.30.0/24"), RouteAction(Scope.LOCAL))
    gw.install_route(VPC_B, Prefix.parse("192.168.10.0/24"),
                     RouteAction(Scope.PEER, next_hop_vni=VPC_A))

    # The VM-NC mapping table of Fig. 2.
    gw.install_vm(VPC_A, ip("192.168.10.2"), 4, NcBinding(ip("10.1.1.11")))
    gw.install_vm(VPC_A, ip("192.168.10.3"), 4, NcBinding(ip("10.1.1.12")))
    gw.install_vm(VPC_B, ip("192.168.30.5"), 4, NcBinding(ip("10.1.1.15")))

    print("=== VM-VM, same VPC, different vSwitches ===")
    packet = build_vxlan_packet(VPC_A, ip("192.168.10.2"), ip("192.168.10.3"))
    print(f"in : vni={packet.vni}  inner {fmt(packet.inner.ip.src)} -> "
          f"{fmt(packet.inner_dst)}  outer dst {fmt(packet.ip.dst)}")
    result = gw.forward(packet)
    out = result.packet
    print(f"out: {result.action.value}  vni={out.vni}  outer dst {fmt(out.ip.dst)} "
          f"(expected 10.1.1.12)")

    print("\n=== VM-VM, different VPCs (PEER chain) ===")
    packet = build_vxlan_packet(VPC_A, ip("192.168.10.2"), ip("192.168.30.5"))
    print(f"in : vni={packet.vni}  inner {fmt(packet.inner.ip.src)} -> "
          f"{fmt(packet.inner_dst)}")
    result = gw.forward(packet)
    out = result.packet
    print(f"out: {result.action.value}  vni={out.vni} (rewritten to VPC B)  "
          f"outer dst {fmt(out.ip.dst)} (expected 10.1.1.15)")

    print("\n=== The folded path the packets took ===")
    share = gw.egress_pipe_share()
    for pipe, count in sorted(share.items()):
        print(f"egress pipe {pipe}: {count} packets")
    print(f"pipes per packet: {gw.chip.pipes_per_packet()} (folded), "
          f"latency {gw.latency_us():.2f} us")

    print("\n=== Unknown destination drops cleanly ===")
    packet = build_vxlan_packet(VPC_A, ip("192.168.10.2"), ip("192.168.10.99"))
    result = gw.forward(packet)
    print(f"out: {result.action.value} ({result.detail})")


if __name__ == "__main__":
    main()
