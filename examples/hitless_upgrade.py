#!/usr/bin/env python3
"""Crash-safe control plane + hitless rolling upgrade, end to end.

Two acts, both against the same journalled controller:

1. **Crash and recover.** A seeded fault plan kills the controller
   between a journal append and the cluster push. A fresh controller
   replays the write-ahead journal (snapshot + tail), re-syncs the
   surviving gateways, and ends with zero divergences — the journalled
   intent *is* the cluster state again.
2. **Roll the cluster.** With live traffic hashing over a resilient
   (HRW) ECMP group, an :class:`UpgradeOrchestrator` drains one member
   at a time, reimages it to empty tables, rebuilds it from the
   journal, probe-gates it, and readmits it. The traffic counters show
   zero upgrade-attributable drops.

Run:  python examples/hitless_upgrade.py
"""

import ipaddress

from repro.cluster import (
    GatewayCluster,
    ResilientEcmpGroup,
    UpgradeOrchestrator,
    VniSteeredBalancer,
)
from repro.core.controller import Controller, RouteEntry, VmEntry, build_probe_packet
from repro.core.journal import ControllerCrash, Journal
from repro.core.splitting import ClusterCapacity, TableSplitter, TenantProfile
from repro.core.xgw_h import XgwH
from repro.dataplane.gateway_logic import ForwardAction
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.net.addr import Prefix
from repro.net.flow import FlowKey
from repro.sim.engine import Engine
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import RouteAction, Scope

MEMBERS = 4


def make_controller(journal=None):
    ctrl = Controller(
        TableSplitter(ClusterCapacity(routes=200, vms=500, traffic_bps=1e13)),
        VniSteeredBalancer(),
        journal=journal,
    )

    def factory(cluster_id):
        return GatewayCluster(cluster_id, [
            (f"{cluster_id}-gw{i}", XgwH(gateway_ip=10 + i))
            for i in range(MEMBERS)
        ])

    ctrl.set_cluster_factory(factory)
    return ctrl


def tenant(vni, subnet, vm, nc):
    profile = TenantProfile(vni, 1, 1, 1e9)
    routes = [RouteEntry(vni, Prefix.parse(subnet), RouteAction(Scope.LOCAL))]
    vms = [VmEntry(vni, int(ipaddress.ip_address(vm)), 4,
                   NcBinding(int(ipaddress.ip_address(nc))))]
    return profile, routes, vms


def act_one_crash_and_recover():
    """Kill the controller mid-mutation; rebuild it from the journal."""
    print("=== act 1: crash mid-batch, recover from the journal ===")
    plan = FaultPlan(seed=2021, specs=[
        # Mutation 5 is tenant 101's install-vm: journalled, never pushed.
        FaultSpec(FaultKind.CONTROLLER_CRASH, at_mutations=(5,)),
    ])
    ctrl = make_controller(journal=Journal())
    FaultInjector(plan).arm_controller(ctrl)

    ctrl.add_tenant(*tenant(100, "192.168.10.0/24", "192.168.10.2", "10.1.1.11"))
    try:
        ctrl.add_tenant(*tenant(101, "192.168.11.0/24", "192.168.11.2", "10.1.1.12"))
        raise SystemExit("fault plan should have crashed the controller")
    except ControllerCrash as crash:
        print(f"controller died: {crash}")
    print(f"journal holds {ctrl.journal.appends} records "
          f"({len(ctrl.journal.dump())} bytes)")

    # A fresh controller takes over the surviving gateways.
    recovered = make_controller()
    recovered.clusters = ctrl.clusters
    writes = recovered.recover(ctrl.journal)
    cluster_id = recovered.plan.assignments[100]
    findings = recovered.consistency_check(cluster_id)
    probe = recovered.probe(cluster_id)
    print(f"recovered {len(recovered.plan.assignments)} tenants with "
          f"{writes} replay write(s); divergences={len(findings)}, "
          f"probe {probe.passed}/{probe.sent}\n")
    return recovered, cluster_id


def act_two_rolling_upgrade(ctrl, cluster_id):
    """Roll all members under live traffic; count every lost packet."""
    print("=== act 2: hitless rolling upgrade under live traffic ===")
    names = [m.name for m in ctrl.clusters[cluster_id].active_members()]
    group = ResilientEcmpGroup(next_hops=list(names))
    engine = Engine()

    vm_ip = int(ipaddress.ip_address("192.168.10.2"))
    packet = build_probe_packet(100, vm_ip)
    flows = [FlowKey(0x0A000000 + i, vm_ip, 6, 1000 + i, 80) for i in range(48)]
    stats = {"sent": 0, "drops": 0}

    def tick():
        for flow in flows:
            member = ctrl.clusters[cluster_id].find_member(group.pick(flow))
            result = member.gateway.forward(packet)
            stats["sent"] += 1
            if result.action is not ForwardAction.DELIVER_NC:
                stats["drops"] += 1

    engine.schedule_every(0.25, tick, until=12.0)

    def reimage(member):
        member.gateway = XgwH(gateway_ip=member.gateway.gateway_ip)

    orch = UpgradeOrchestrator(ctrl, cluster_id, group, engine,
                               drain_wait=1.0, upgrade_fn=reimage)
    orch.roll()
    engine.run()

    for event in orch.events:
        detail = f"  ({event.detail})" if event.detail else ""
        print(f"  t={event.time:5.2f}  {event.member:<12} {event.action}{detail}")
    print(f"traffic: {stats['sent']} packets, {stats['drops']} dropped")
    print(f"telemetry: {orch.summary()}")
    ok = (stats["drops"] == 0 and orch.done
          and ctrl.consistency_check(cluster_id) == [])
    print(f"hitless: {ok}")


def main() -> None:
    ctrl, cluster_id = act_one_crash_and_recover()
    act_two_rolling_upgrade(ctrl, cluster_id)


if __name__ == "__main__":
    main()
