#!/usr/bin/env python3
"""Fault injection + reconciliation loop, end to end (§6.1).

The paper's control plane never trusts a table write: entries diverge
through bugs, misconfiguration, or exhausted switch memory, so the
controller runs periodic consistency checks and gates clusters behind
probe traffic before (re)admitting them.

This demo wires the deterministic fault layer in front of a live
controller:

1. onboard a tenant while a seeded ``FaultPlan`` silently corrupts one
   route write on one gateway;
2. the reconcile loop detects the divergence, quarantines the cluster,
   re-pushes only the divergent key, and probes before readmitting;
3. the same seed replays the exact same run, byte for byte.

Run:  python examples/fault_reconcile.py
"""

import ipaddress

from repro.cluster.cluster import GatewayCluster
from repro.cluster.ecmp import VniSteeredBalancer
from repro.core.controller import Controller, RouteEntry, VmEntry
from repro.core.splitting import ClusterCapacity, TableSplitter, TenantProfile
from repro.core.xgw_h import XgwH
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.net.addr import Prefix
from repro.sim.engine import Engine
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import RouteAction, Scope


def make_controller():
    ctrl = Controller(
        TableSplitter(ClusterCapacity(routes=50, vms=500, traffic_bps=1e13)),
        VniSteeredBalancer(),
    )

    def factory(cluster_id):
        nodes = [(f"{cluster_id}-gw{i}", XgwH(gateway_ip=10 + i)) for i in range(2)]
        backup = GatewayCluster(
            f"{cluster_id}-backup",
            [(f"{cluster_id}-bk{i}", XgwH(gateway_ip=100 + i)) for i in range(2)],
        )
        return GatewayCluster(cluster_id, nodes, backup=backup)

    ctrl.set_cluster_factory(factory)
    return ctrl


def run(seed):
    plan = FaultPlan(seed=seed, specs=[
        FaultSpec(FaultKind.CORRUPT_ROUTE_WRITE, node="*-gw1", max_fires=1),
    ])
    ctrl = make_controller()
    FaultInjector(plan).arm_controller(ctrl)

    profile = TenantProfile(100, 1, 1, 1e9)
    routes = [RouteEntry(100, Prefix.parse("192.168.10.0/24"),
                         RouteAction(Scope.LOCAL))]
    vms = [VmEntry(100, int(ipaddress.ip_address("192.168.10.2")), 4,
                   NcBinding(int(ipaddress.ip_address("10.1.1.11"))))]
    cluster_id = ctrl.add_tenant(profile, routes, vms)
    print(f"tenant 100 onboarded onto {cluster_id} "
          f"({plan.write_index} table writes, "
          f"{len(plan.log)} fault(s) injected)")

    findings = ctrl.consistency_check(cluster_id)
    for f in findings:
        print(f"  divergence: {f.node} {f.kind} key={f.key}")

    engine = Engine()
    ctrl.reconcile_loop(engine, interval=1.0, until=4.0)
    engine.run()

    probe = ctrl.probe(cluster_id)
    print(f"after reconcile: {len(ctrl.consistency_check(cluster_id))} "
          f"divergences, probe {probe.passed}/{probe.sent}, "
          f"admitted={ctrl.is_admitted(cluster_id)}")
    print(f"counters: {ctrl.counters.snapshot()}")
    return {
        "findings": [(f.node, f.kind, repr(f.key)) for f in findings],
        "counters": ctrl.counters.snapshot(),
        "fault_log": [repr(f) for f in plan.log],
    }


def main() -> None:
    print("=== run 1 (seed 2021) ===")
    first = run(2021)
    print("\n=== run 2 (same seed) ===")
    second = run(2021)
    print(f"\nbit-identical replay: {first == second}")


if __name__ == "__main__":
    main()
