"""Figs. 20/21: balanced traffic distribution between pipeline pairs.

Pushes a realistic traffic sample through every XGW-H of the region and
measures the egress pipe 1 vs pipe 3 split per gateway (the "view of
clusters") and over time windows (the "view of time"). The parity split
keeps both within a few percent of 50/50. Benchmarks sample forwarding.
"""

import pytest

from conftest import emit
from repro.telemetry.stats import jains_fairness
from repro.workloads.traffic import RegionTrafficGenerator

PACKETS = 4000
WINDOWS = 8


def test_fig20_pipe_balance_across_gateways(benchmark, region):
    generator = RegionTrafficGenerator(region.topology, seed=20, internet_share=0.01)
    benchmark.pedantic(
        lambda: [region.forward(s.packet) for s in generator.packets(200)],
        rounds=3, iterations=1,
    )
    # A full pass for the measurement itself.
    for sample in generator.packets(PACKETS):
        region.forward(sample.packet)

    rows = []
    shares = []
    for cluster_id in sorted(region.controller.clusters):
        cluster = region.controller.clusters[cluster_id]
        for member in cluster.active_members():
            pipe_counts = member.gateway.egress_pipe_share()
            pipe1, pipe3 = pipe_counts.get(1, 0), pipe_counts.get(3, 0)
            total = pipe1 + pipe3
            if total < 100:
                continue
            share = pipe1 / total
            shares.append(share)
            rows.append((f"{cluster_id}/{member.name}", "~50% / ~50%",
                         f"{share:.1%} / {1 - share:.1%}"))
    emit("Fig. 20: egress pipe 1 vs pipe 3 per gateway", rows,
         header=("gateway", "paper", "pipe1/pipe3"))

    assert shares, "no gateway saw enough traffic"
    for share in shares:
        assert 0.4 < share < 0.6
    assert jains_fairness([s for s in shares] + [1 - s for s in shares]) > 0.95


def test_fig21_pipe_balance_over_time(benchmark, region):
    generator = RegionTrafficGenerator(region.topology, seed=21, internet_share=0.01)

    def window():
        counts = {0: 0, 1: 0}
        for sample in generator.packets(PACKETS // WINDOWS):
            result = region.forward(sample.packet)
            if result.packet.is_vxlan:
                counts[sample.packet.inner_dst % 2] += 1
        return counts

    rows = []
    for w in range(WINDOWS):
        counts = window()
        total = counts[0] + counts[1]
        share = counts[0] / total if total else 0.5
        rows.append((f"window {w}", "~50% / ~50%", f"{share:.1%} / {1 - share:.1%}"))
        assert 0.38 < share < 0.62
    emit("Fig. 21: pipe-pair split over time", rows,
         header=("time window", "paper", "even/odd parity"))

    benchmark(window)
