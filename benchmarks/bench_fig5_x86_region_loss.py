"""Fig. 5: region-level packet loss with software gateways (~1e-5..1e-4).

A region of XGW-x86 boxes behind flow-hash ECMP serves a festival week.
Millions of mice average to a uniform per-core background (law of large
numbers); a handful of elephant flows (§2.3: "a single flow ... can even
reach tens of Gbps") land whole on single cores via RSS. Cores carrying
an elephant run hot and clip micro-bursts — "packet loss will occur when
CPU core utilization reaches 100% even in a very short moment" — which
yields the paper's small-but-real region loss despite 2x aggregate
headroom. Benchmarks one region interval.
"""

import pytest

from conftest import emit
from repro.net.flow import FlowKey
from repro.sim.rand import derive
from repro.workloads.flows import festival_series
from repro.x86.gateway import XgwX86

NUM_GATEWAYS = 15
DAYS = 8
SAMPLES_PER_DAY = 12
#: Log-stddev of instantaneous core load within an interval.
BURSTINESS = 0.12
#: Elephants per region interval and their size range (x core capacity).
NUM_ELEPHANTS = 10
ELEPHANT_RANGE = (0.25, 0.5)
#: Mean background (mice) utilization per core at the 50% water level.
BACKGROUND_UTIL = 0.35


def _make_elephants(rng, core_pps):
    flows = []
    for i in range(NUM_ELEPHANTS):
        flow = FlowKey(rng.randrange(1 << 32), rng.randrange(1 << 32), 6,
                       rng.randrange(1024, 65536), 443)
        rate = rng.uniform(*ELEPHANT_RANGE) * core_pps
        flows.append((flow, rate))
    return flows


def _region_interval(gateways, elephants, background_util, load_multiplier):
    """One interval: background on every core + RSS-placed elephants."""
    dropped = offered = 0.0
    hot_cores = 0
    num_cores = len(gateways[0].cpu.cores)
    for g_index, gw in enumerate(gateways):
        per_queue = {}
        core_pps = gw.cpu.cores[0].capacity_pps
        bg = background_util * core_pps * load_multiplier
        for q in range(num_cores):
            per_queue[q] = [(FlowKey(0, 0, 17, q, g_index), bg)]
        # Elephants are individual customers' flows; they do not swell
        # with the aggregate diurnal curve.
        for flow, rate in elephants:
            if hash(flow) % len(gateways) == g_index:
                per_queue[gw.nic.queue_for(flow)].append((flow, rate))
        intervals = gw.cpu.serve_queues(per_queue)
        for ci in intervals:
            dropped += ci.dropped_pps
            offered += ci.offered_pps
            if ci.utilization > 0.9:
                hot_cores += 1
    return dropped, offered, hot_cores


def test_fig5_x86_region_loss(benchmark):
    gateways = [XgwX86(gateway_ip=i + 1, burstiness=BURSTINESS)
                for i in range(NUM_GATEWAYS)]
    core_pps = gateways[0].cpu.cores[0].capacity_pps
    rng = derive(5, "elephants")
    curve = festival_series(DAYS, SAMPLES_PER_DAY, 1.0, seed=5,
                            festival_day=5, festival_boost=1.4)

    total_dropped = total_offered = 0.0
    worst = 0.0
    hot_total = 0
    day = -1
    elephants = []
    for t, multiplier in curve:
        if int(t) != day:  # elephant population churns daily
            day = int(t)
            elephants = _make_elephants(rng, core_pps)
        dropped, offered, hot = _region_interval(
            gateways, elephants, BACKGROUND_UTIL, multiplier)
        total_dropped += dropped
        total_offered += offered
        hot_total += hot
        if offered:
            worst = max(worst, dropped / offered)

    loss = total_dropped / total_offered
    rows = [
        ("region loss rate (week)", "~1e-5..1e-4", f"{loss:.2e}"),
        ("worst interval loss", "spiky, ~1e-4", f"{worst:.2e}"),
        ("hot (>90%) core intervals", "persistent (Fig. 4)", f"{hot_total}"),
        ("aggregate water level", "~50%", f"{BACKGROUND_UTIL:.0%} + elephants"),
    ]
    emit("Fig. 5: XGW-x86 region packet loss", rows)

    # Shape: small but real loss from hot cores, in the paper's band.
    assert 1e-6 < loss < 1e-3
    assert worst < 1e-2
    assert hot_total > 0

    elephants = _make_elephants(rng, core_pps)
    benchmark(_region_interval, gateways, elephants, BACKGROUND_UTIL, 1.0)
