"""Three-tier frontier: chip + DPU shelf + x86 vs the two-tier baseline.

Runs the same seeded workloads through the two-tier
:class:`~repro.offload.scheduler.OffloadScheduler` loop and the
three-tier :class:`~repro.dpu.planner.TierPlanner` loop with an
identically tiny chip budget (three VIP entries — the constrained-SRAM
regime of Tables 2/3), under two traffic shapes:

* **Zipf** — the Fig. 7 skew: a handful of elephants, a warm band, a
  long tail;
* **flash crowd** — the same base population plus a mid-interval surge
  of warm VIPs (none hot enough for the chip, all too hot for x86).

With the chip pinned to three entries both deployments hold the same
elephants, so the comparison isolates what the DPU shelf buys: the warm
band that the two-tier baseline must spill onto x86. The bench asserts
the three-tier run dominates the loss/occupancy/cost frontier —
strictly lower loss at an equal chip budget (and no lower chip
occupancy) AND lower x86 spend at equal-or-lower loss — and that the
planner's decision log + budget snapshots are byte-identical for equal
seeds.

Writes ``BENCH_dpu.json`` plus the decision logs (set
``DPU_ARTIFACT_DIR`` to choose where; CI uploads them on failure).
"""

import json
import os

from conftest import emit
from repro.cluster.cluster import GatewayCluster
from repro.cluster.ecmp import VniSteeredBalancer
from repro.core.controller import Controller, RouteEntry
from repro.core.splitting import ClusterCapacity, TableSplitter, TenantProfile
from repro.core.xgw_h import XgwH
from repro.dpu import DpuDevice, TierDetector, TierPlanner
from repro.net.addr import Prefix
from repro.offload import (
    ChipBudget,
    HeavyHitterDetector,
    OffloadLoop,
    OffloadScheduler,
    decision_state_dump,
    entry_footprint,
)
from repro.sim.engine import Engine
from repro.tables.vxlan_routing import RouteAction, Scope
from repro.workloads.flows import heavy_hitter_flows
from repro.x86.cpu import DEFAULT_CORE_PPS
from repro.x86.gateway import XgwX86

VNI = 1000
DURATION = 30.0
SEED = 7
CHIP_VIPS = 3  # the constrained chip: three steering entries, no more
SURGE_WINDOW = (10.0, 20.0)


def build_controller():
    ctrl = Controller(
        TableSplitter(ClusterCapacity(routes=50, vms=500, traffic_bps=1e13)),
        VniSteeredBalancer(),
    )
    ctrl.set_cluster_factory(lambda cid: GatewayCluster(
        cid, [(f"{cid}-gw{i}", XgwH(gateway_ip=10 + i)) for i in range(2)]))
    profile = TenantProfile(VNI, 1, 0, 1e9)
    subnet = Prefix.parse("192.168.0.0/16")
    routes = [RouteEntry(VNI, subnet, RouteAction(Scope.LOCAL))]
    cluster_id = ctrl.add_tenant(profile, routes, [])
    return ctrl, cluster_id


def tiny_chip_budget(ctrl, cluster_id):
    fp = entry_footprint(4)
    return ChipBudget(ctrl.clusters[cluster_id],
                      sram_budget_words=CHIP_VIPS * fp.sram_words,
                      tcam_budget_slices=CHIP_VIPS * fp.tcam_slices)


def make_workload(gateway, flash_crowd=False):
    base = heavy_hitter_flows(100, 0.4 * gateway.total_capacity_pps,
                              seed=4, alpha=1.4, vnis=[VNI])
    if not flash_crowd:
        return lambda _t: base
    # The surge: 20 warm VIPs, each ~0.1 core — individually below the
    # chip's promote band, collectively a quarter of the x86 box.
    surge = heavy_hitter_flows(20, 0.25 * gateway.total_capacity_pps,
                               seed=9, alpha=1.05, vnis=[VNI])

    def workload(t):
        lo, hi = SURGE_WINDOW
        return base + surge if lo <= t < hi else base

    return workload


def chip_detector(seed):
    return HeavyHitterDetector(
        theta_hi=0.5 * DEFAULT_CORE_PPS, theta_lo=0.2 * DEFAULT_CORE_PPS,
        promote_after=2, demote_after=3, ewma_alpha=0.5, seed=seed)


def run_two_tier(flash_crowd=False, seed=SEED):
    ctrl, cluster_id = build_controller()
    detector = chip_detector(seed)
    scheduler = OffloadScheduler(ctrl, cluster_id,
                                 tiny_chip_budget(ctrl, cluster_id),
                                 detector=detector)
    gateway = XgwX86(gateway_ip=0x0A000001)
    engine = Engine()
    loop = OffloadLoop(engine, [gateway], scheduler, detector,
                       make_workload(gateway, flash_crowd))
    loop.start(until=DURATION)
    engine.run(until=DURATION)
    return loop, scheduler


def run_three_tier(flash_crowd=False, seed=SEED):
    ctrl, cluster_id = build_controller()
    detector = TierDetector(
        chip=chip_detector(seed),
        dpu=HeavyHitterDetector(
            theta_hi=0.08 * DEFAULT_CORE_PPS, theta_lo=0.03 * DEFAULT_CORE_PPS,
            promote_after=2, demote_after=3, ewma_alpha=0.5, seed=seed + 1),
    )
    devices = [DpuDevice(f"dpu-{i}", gateway_ip=0x0A00F000 + i)
               for i in range(2)]
    planner = TierPlanner(ctrl, cluster_id,
                          tiny_chip_budget(ctrl, cluster_id),
                          devices, detector)
    gateway = XgwX86(gateway_ip=0x0A000001)
    engine = Engine()
    loop = OffloadLoop(engine, [gateway],
                       workload=make_workload(gateway, flash_crowd),
                       planner=planner)
    loop.start(until=DURATION)
    engine.run(until=DURATION)
    return loop, planner


def mean_loss(loop, window=None):
    snaps = loop.snapshots
    if window is not None:
        lo, hi = window
        snaps = [s for s in snaps if lo <= s.time < hi]
    return sum(s.total_loss for s in snaps) / len(snaps)


def x86_spend(loop):
    return sum(loop.core_series["tier/x86/cost-usd"].values)


def total_spend(loop):
    return sum(sum(loop.core_series[f"tier/{tier}/cost-usd"].values)
               for tier in ("chip", "dpu", "x86")
               if f"tier/{tier}/cost-usd" in loop.core_series)


def frontier_point(loop, actor):
    return {
        "steady_loss": loop.snapshots[-1].total_loss,
        "mean_loss": mean_loss(loop),
        "chip_sram_occupancy": actor.budgets()["chip"].occupancy()["sram"],
        "x86_cost_usd": x86_spend(loop),
        "total_cost_usd": total_spend(loop),
    }


def save_artifacts(payload, planner_dump):
    art_dir = os.environ.get("DPU_ARTIFACT_DIR", ".")
    os.makedirs(art_dir, exist_ok=True)
    with open(os.path.join(art_dir, "BENCH_dpu.json"), "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    with open(os.path.join(art_dir, "dpu-frontier.decisions.log"), "w") as fh:
        fh.write(planner_dump)


def test_three_tier_dominates_the_frontier(benchmark):
    results = {}
    for shape, flash in (("zipf", False), ("flash-crowd", True)):
        two_loop, two_sched = run_two_tier(flash_crowd=flash)
        three_loop, three_planner = run_three_tier(flash_crowd=flash)
        two = frontier_point(two_loop, two_sched)
        three = frontier_point(three_loop, three_planner)
        results[shape] = {"two_tier": two, "three_tier": three}

        emit(f"Loss/occupancy/cost frontier — {shape}", [
            ("chip SRAM occupancy (both)",
             f"{two['chip_sram_occupancy']:.0%}",
             f"{three['chip_sram_occupancy']:.0%}"),
            ("mean loss two-tier vs three-tier",
             f"{two['mean_loss']:.3%}", f"{three['mean_loss']:.3%}"),
            ("x86 spend two-tier vs three-tier",
             f"${two['x86_cost_usd']:.2f}", f"${three['x86_cost_usd']:.2f}"),
            ("total spend two-tier vs three-tier",
             f"${two['total_cost_usd']:.2f}",
             f"${three['total_cost_usd']:.2f}"),
        ], header=("metric", "two-tier", "three-tier"))

        # Equal chip budget: both run against the same three-entry cap,
        # and the planner keeps the chip at least as full (under the
        # flash crowd the two-tier baseline strands a post-surge slot
        # its hysteresis never refills)...
        assert two["chip_sram_occupancy"] <= 1.0
        assert three["chip_sram_occupancy"] <= 1.0
        assert three["chip_sram_occupancy"] >= two["chip_sram_occupancy"]
        # ...and at that occupancy the DPU shelf strictly wins on loss...
        assert three["mean_loss"] < two["mean_loss"]
        assert three["steady_loss"] <= two["steady_loss"]
        # ...while spending *less* on x86 (the warm band moved to
        # cheaper silicon), i.e. the two-tier point is dominated.
        assert three["x86_cost_usd"] < two["x86_cost_usd"]
        assert three["total_cost_usd"] < two["total_cost_usd"]

    # The flash crowd is where the shelf matters most: the surge rides
    # out on the DPUs, so the loss gap widens vs the plain Zipf run.
    zipf_gap = (results["zipf"]["two_tier"]["mean_loss"]
                - results["zipf"]["three_tier"]["mean_loss"])
    crowd_gap = (results["flash-crowd"]["two_tier"]["mean_loss"]
                 - results["flash-crowd"]["three_tier"]["mean_loss"])
    assert crowd_gap > zipf_gap

    _loop, planner = run_three_tier()
    save_artifacts(results, decision_state_dump(planner))

    # Time one full three-tier interval (measure -> detect -> place).
    engine2 = Engine()
    gateway2 = XgwX86(gateway_ip=0x0A000001)
    ctrl2, cid2 = build_controller()
    planner2 = TierPlanner(
        ctrl2, cid2, tiny_chip_budget(ctrl2, cid2),
        [DpuDevice(f"dpu-{i}", gateway_ip=0x0A00F000 + i) for i in range(2)],
        TierDetector(chip=chip_detector(SEED),
                     dpu=HeavyHitterDetector(
                         theta_hi=0.08 * DEFAULT_CORE_PPS,
                         theta_lo=0.03 * DEFAULT_CORE_PPS,
                         promote_after=2, demote_after=3, ewma_alpha=0.5,
                         seed=SEED + 1)))
    loop2 = OffloadLoop(engine2, [gateway2],
                        workload=make_workload(gateway2), planner=planner2)
    loop2.start(until=DURATION)
    engine2.run(until=1.0)
    benchmark(loop2.tick)


def test_decision_state_byte_identical_across_runs():
    _loop_a, planner_a = run_three_tier(seed=SEED)
    _loop_b, planner_b = run_three_tier(seed=SEED)
    dump_a, dump_b = decision_state_dump(planner_a), decision_state_dump(planner_b)
    assert dump_a == dump_b
    assert dump_a  # non-empty: promotions happened and were logged
    # The flash-crowd path is deterministic too (surge on, surge off).
    _loop_c, planner_c = run_three_tier(flash_crowd=True, seed=SEED)
    _loop_d, planner_d = run_three_tier(flash_crowd=True, seed=SEED)
    assert decision_state_dump(planner_c) == decision_state_dump(planner_d)
