"""Fig. 8: CPU performance vs switch port speed, 2010-2020.

Regenerates the figure's three series from the embedded dataset and
asserts the stated growth factors: port speed 40x, multi-core ~4x,
single-core ~2.5x — i.e. traffic growth beyond Moore's law, single-core
growth below it.
"""

import pytest

from conftest import emit
from repro.workloads.datasets import (
    CPU_VS_PORT_TREND,
    growth_factors,
    moores_law_factor,
    series,
    years,
)


def test_fig8_trends(benchmark):
    single, multi, port = benchmark(growth_factors)

    print("\n=== Fig. 8 series ===")
    print(f"{'year':>6} {'single-core':>12} {'multi-core':>11} {'port Gbps':>10}")
    for point in CPU_VS_PORT_TREND:
        print(f"{point.year:>6} {point.single_core:>12.0f} "
              f"{point.multi_core:>11.0f} {point.port_speed_gbps:>10.0f}"
              f"  {point.switch_example}")

    rows = [
        ("port speed growth", "40x", f"{port:.1f}x"),
        ("multi-core growth", "4x", f"{multi:.1f}x"),
        ("single-core growth", "2.5x", f"{single:.1f}x"),
        ("Moore's law (10y)", "32x", f"{moores_law_factor(10):.0f}x"),
    ]
    emit("Fig. 8: growth factors 2010-2020", rows)

    assert port == pytest.approx(40, abs=1)
    assert multi == pytest.approx(4, abs=0.5)
    assert single == pytest.approx(2.5, abs=0.3)
    # The ordering that motivates the paper:
    assert single < multi < moores_law_factor(10) < port
    # Monotone series.
    for name in ("single", "multi", "port"):
        values = series(name)
        assert all(a <= b for a, b in zip(values, values[1:]))
    assert years() == sorted(years())
