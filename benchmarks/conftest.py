"""Shared fixtures and reporting helpers for the paper benchmarks.

Every bench regenerates one of the paper's tables/figures, prints a
paper-vs-measured comparison (visible with ``pytest -s`` and in the
captured output), asserts the *shape* holds, and times the experiment's
hot operation via pytest-benchmark.
"""

import pytest

from repro.core.sailfish import RegionSpec, Sailfish


def emit(title, rows, header=("metric", "paper", "measured")):
    """Print an aligned paper-vs-measured table."""
    width = max(len(str(r[0])) for r in rows + [header])
    print(f"\n=== {title} ===")
    print(f"{header[0]:<{width}}  {header[1]:>16}  {header[2]:>16}")
    for name, paper, measured in rows:
        print(f"{str(name):<{width}}  {str(paper):>16}  {str(measured):>16}")


@pytest.fixture(scope="session")
def region():
    """One medium Sailfish region shared by the region-scale benches."""
    return Sailfish.build(RegionSpec.medium(), seed=2021)


@pytest.fixture(scope="session")
def small_region():
    return Sailfish.build(RegionSpec.small(), seed=2021)
