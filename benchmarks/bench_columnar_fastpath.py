"""Columnar batch data plane: compiled bursts vs the scalar table walk.

The columnar executor (DESIGN §13) compiles the placed gateway program
— ACL, per-VNI meters, PEER-chained VXLAN routing, VM-NC, rewrite —
into flat vectorized match-action steps over struct-of-arrays bursts.
This bench replays a Zipf(1.1) stream of interned packets (default one
million; ``COLUMNAR_PACKETS`` overrides, the CI smoke uses 150k) over
the same 512-flow, 3-hop-PEER-chain tenant layout as the flow-cache
bench, with a DENY ACL rule and a metered VNI mixed in, and checks:

* byte-identical results and identical counter/meter state between the
  columnar path (both backends) and the never-cached scalar oracle;
* >= 10x packet-rate speedup for the columnar path over the uncached
  scalar walk, measured burst-for-burst including batch shredding.

Writes ``BENCH_columnar.json`` (set ``COLUMNAR_ARTIFACT_DIR`` to choose
where; defaults to the working directory) so CI accrues the batch-path
perf trajectory per PR — the artifact is written before the speedup
gate so a failing run still uploads its numbers.
"""

import ipaddress
import json
import os
import time

from conftest import emit
from repro.dataplane.columnar import PacketBatch, numpy_available, resolve_backend
from repro.dataplane.gateway_logic import GatewayTables, vni_key
from repro.net.addr import Prefix
from repro.sim.rand import WeightedSampler, derive, zipf_weights
from repro.tables.acl import AclRule, AclVerdict
from repro.tables.meter import TokenBucket
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import RouteAction, Scope
from repro.workloads.traffic import build_vxlan_packet
from repro.x86.gateway import XgwX86

SEED = 2021
N_VNIS = 32
FLOWS_PER_VNI = 16          # 512 distinct (VNI, dst) flows
PEER_DEPTH = 3              # service-chained peering: 4 LPM resolutions
ZIPF_ALPHA = 1.1
N_PACKETS = int(os.environ.get("COLUMNAR_PACKETS", "1000000"))
BURST = 8192
#: The scalar oracle walks every table per packet; timing it on the full
#: replay would dominate the bench, so its rate is measured on a subset.
ORACLE_PACKETS = min(N_PACKETS, 50_000)
EQUIV_PACKETS = min(N_PACKETS, 20_000)
TIMING_REPEATS = 3
GATEWAY_IP = int(ipaddress.ip_address("10.255.0.1"))
METERED_VNI = 100           # wire VNI of tenant 0
DENY_PORTS = (9000, 9100)


def build_tables():
    """The flow-cache bench's tenant layout plus a DENY ACL rule and a
    (generously provisioned) meter, so bursts exercise every compiled
    stage."""
    tables = GatewayTables()
    for i in range(N_VNIS):
        chain = [100 + i] + [1000 * (hop + 1) + i for hop in range(PEER_DEPTH)]
        prefix = Prefix.parse(f"10.{i}.0.0/16")
        for src_vni, dst_vni in zip(chain, chain[1:]):
            tables.routing.insert(src_vni, prefix,
                                  RouteAction(Scope.PEER, next_hop_vni=dst_vni))
        terminal = chain[-1]
        for j in range(8):  # more-specific routes deepen the LPM walk
            tables.routing.insert(terminal, Prefix.parse(f"10.{i}.{j}.0/24"),
                                  RouteAction(Scope.LOCAL))
        tables.routing.insert(terminal, prefix, RouteAction(Scope.LOCAL))
        for f in range(FLOWS_PER_VNI):
            tables.vm_nc.insert(terminal, flow_dst(i, f), 4,
                                NcBinding(int(ipaddress.ip_address(
                                    f"172.16.{i}.{10 + f}"))))
    tables.acl.insert(AclRule(priority=2, verdict=AclVerdict.DENY,
                              dst_ports=DENY_PORTS))
    tables.acl.insert(AclRule(priority=1, verdict=AclVerdict.PERMIT))
    tables.meters.configure(vni_key(METERED_VNI),
                            TokenBucket(committed_rate=1e12,
                                        committed_burst=1e12))
    return tables


def flow_dst(vni_index, flow_index):
    return int(ipaddress.ip_address(
        f"10.{vni_index}.{flow_index % 8}.{10 + flow_index}"))


def build_workload():
    """A Zipf(1.1) replay of *interned* packets: one Packet object per
    flow (the steady-state NIC-ring shape), ~3% of flows aimed at the
    DENY'd port range so bursts carry mixed fates."""
    interned = []
    for i in range(N_VNIS):
        for f in range(FLOWS_PER_VNI):
            dport = 9050 if (i * FLOWS_PER_VNI + f) % 32 == 0 else 80
            interned.append(build_vxlan_packet(
                vni=100 + i, src_ip=int(ipaddress.ip_address("10.200.0.1")),
                dst_ip=flow_dst(i, f), dst_port=dport))
    sampler = WeightedSampler(zipf_weights(len(interned), ZIPF_ALPHA),
                              derive(SEED, "columnar"))
    return [interned[sampler.sample()] for _ in range(N_PACKETS)]


def bursts_of(packets):
    return [packets[i:i + BURST] for i in range(0, len(packets), BURST)]


def replay_columnar(gateway, bursts, backend, clock):
    """*clock* is a shared one-cell monotonic time (meters reject time
    running backwards across timing repeats)."""
    for burst in bursts:
        clock[0] += 1e-4
        gateway.forward_batch(PacketBatch.from_packets(burst, backend),
                              now=clock[0])


def replay_scalar(gateway, bursts, clock):
    for burst in bursts:
        clock[0] += 1e-4
        gateway.forward_batch(burst, now=clock[0])


def best_seconds(fn, repeats=TIMING_REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def check_equivalence(backend_name, packets):
    """Byte-identical results + identical stateful end state between the
    columnar path on *backend_name* and the never-cached scalar oracle."""
    backend = resolve_backend(backend_name)
    col = XgwX86(gateway_ip=GATEWAY_IP, tables=build_tables())
    oracle = XgwX86(gateway_ip=GATEWAY_IP, tables=build_tables(),
                    cache_entries=0, columnar=False)
    for index, burst in enumerate(bursts_of(packets)):
        now = index * 1e-4
        got_list = col.forward_batch(PacketBatch.from_packets(burst, backend),
                                     now=now)
        want_list = oracle.forward_batch(burst, now=now)
        for got, want in zip(got_list, want_list):
            assert got.action is want.action
            assert got.detail == want.detail
            assert got.resolved_vni == want.resolved_vni
            assert got.nc_ip == want.nc_ip
            assert got.packet.to_bytes() == want.packet.to_bytes()
    assert col.counters.snapshot() == oracle.counters.snapshot()
    assert col.counters["drop_acl_deny"] > 0, "workload must mix fates"
    assert (col.tables.counters.total_packets()
            == oracle.tables.counters.total_packets())
    assert (col.tables.counters.total_bytes()
            == oracle.tables.counters.total_bytes())
    assert (col.tables.meters.green, col.tables.meters.red) \
        == (oracle.tables.meters.green, oracle.tables.meters.red)


def save_artifact(payload):
    art_dir = os.environ.get("COLUMNAR_ARTIFACT_DIR", ".")
    os.makedirs(art_dir, exist_ok=True)
    with open(os.path.join(art_dir, "BENCH_columnar.json"), "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)


def test_columnar_speedup(benchmark):
    packets = build_workload()
    equiv = packets[:EQUIV_PACKETS]

    # Differential gate first: both backends must match the oracle
    # byte for byte before any rate is worth reporting.
    backends = ["python"] + (["numpy"] if numpy_available() else [])
    for name in backends:
        check_equivalence(name, equiv)

    timed_backend = resolve_backend(backends[-1])
    col = XgwX86(gateway_ip=GATEWAY_IP, tables=build_tables())
    col_clock = [0.0]
    col_bursts = bursts_of(packets)
    columnar_s = best_seconds(
        lambda: replay_columnar(col, col_bursts, timed_backend, col_clock))

    oracle = XgwX86(gateway_ip=GATEWAY_IP, tables=build_tables(),
                    cache_entries=0, columnar=False)
    oracle_clock = [0.0]
    oracle_bursts = bursts_of(packets[:ORACLE_PACKETS])
    uncached_s = best_seconds(
        lambda: replay_scalar(oracle, oracle_bursts, oracle_clock), repeats=2)

    columnar_pps = N_PACKETS / columnar_s
    uncached_pps = ORACLE_PACKETS / uncached_s
    speedup = columnar_pps / uncached_pps
    rows = [
        ("distinct flows", "512", f"{N_VNIS * FLOWS_PER_VNI}"),
        ("replayed packets", "1M", f"{N_PACKETS}"),
        ("backend", "", timed_backend.name),
        ("uncached scalar rate", "", f"{uncached_pps / 1e3:.0f} kpps"),
        ("columnar batch rate", "", f"{columnar_pps / 1e3:.0f} kpps"),
        ("columnar/uncached speedup", ">= 10x", f"{speedup:.1f}x"),
    ]
    emit("Columnar batch path (Zipf 1.1, 3-hop PEER chains)", rows)

    save_artifact({
        "workload": {
            "flows": N_VNIS * FLOWS_PER_VNI,
            "packets": N_PACKETS,
            "burst": BURST,
            "zipf_alpha": ZIPF_ALPHA,
            "peer_depth": PEER_DEPTH,
            "seed": SEED,
        },
        "backend": timed_backend.name,
        "backends_verified": backends,
        "equivalence_packets": EQUIV_PACKETS,
        "oracle_packets": ORACLE_PACKETS,
        "columnar_pps": columnar_pps,
        "uncached_pps": uncached_pps,
        "speedup": speedup,
    })

    assert speedup >= 10.0

    bench_bursts = bursts_of(packets[:EQUIV_PACKETS])
    benchmark(replay_columnar, col, bench_bursts, timed_backend, col_clock)
