"""Million-tenant sharded control plane: churn latency vs shard count.

The §7 scale goal is O(10M) routes under sustained churn. This bench
builds a region of ``SHARD_BENCH_VNIS`` tenants (default 1M, 10 routes +
1 VM each => 10M routes) behind 4 and then 16 shards, applies a sustained
route-churn workload through the sharded facade, and measures:

* per-update latency (p50/p99) — must stay flat as the shard count
  grows, because every update is O(1) against its owning shard;
* per-shard snapshot/compaction cost — must *shrink* as shards are
  added, because each checkpoint covers only its own range;
* cross-shard 2PC throughput for peer chains spanning shards.

Gateways are O(1) null sinks: the subject here is the control plane
(journal appends, split-plan lookups, per-tenant indexes, 2PC markers),
not table microstructure, which has its own benches.

Scaled down by env knobs for CI (see .github/workflows/ci.yml, which
runs a 50k-VNI smoke); the full-size run emits ``BENCH_shard.json``
under ``SHARD_ARTIFACT_DIR`` (default: the working directory).
"""

import json
import os
import time

from conftest import emit
from repro.core.controller import RouteEntry, VmEntry
from repro.core.splitting import ClusterCapacity, TenantProfile
from repro.cluster.cluster import GatewayCluster
from repro.net.addr import Prefix
from repro.shard import ShardedController
from repro.sim.rand import derive
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import RouteAction, Scope

NUM_VNIS = int(os.environ.get("SHARD_BENCH_VNIS", "1000000"))
ROUTES_PER = int(os.environ.get("SHARD_BENCH_ROUTES_PER", "10"))
CHURN_OPS = int(os.environ.get("SHARD_BENCH_CHURN", "4000"))
XTXNS = int(os.environ.get("SHARD_BENCH_XTXNS", "200"))
SHARD_COUNTS = tuple(
    int(n) for n in os.environ.get("SHARD_BENCH_SHARDS", "4,16").split(","))
SEED = 2021

#: The VNI space the bench tenants occupy (dense from 0).
VNI_SPACE = max(NUM_VNIS, 1 << 10)

#: Shared immutable entry payloads — the control plane keys by
#: (vni, prefix), so reusing the Prefix objects changes nothing except
#: the cost of building the workload.
PREFIXES = [Prefix.parse(f"10.{i}.0.0/16") for i in range(ROUTES_PER)]
CHURN_PREFIX = Prefix.parse("172.16.0.0/12")
LOCAL = RouteAction(Scope.LOCAL)
BINDING = NcBinding(nc_ip=0x0A010101)


class _NullRouting:
    @staticmethod
    def items():
        return ()


class _NullVmNc:
    @staticmethod
    def lookup(vni, vm_ip, version):
        return None


class _NullTables:
    routing = _NullRouting()
    vm_nc = _NullVmNc()


class NullGateway:
    """Accepts every write in O(1) and stores nothing."""

    tables = _NullTables()

    def install_route(self, *args, **kwargs):
        pass

    def install_vm(self, *args, **kwargs):
        pass

    def remove_route(self, *args, **kwargs):
        pass

    def remove_vm(self, *args, **kwargs):
        pass


def build_region(num_shards):
    def factory(cluster_id):
        return GatewayCluster(cluster_id, [(f"{cluster_id}-gw0", NullGateway())])

    # Capacity sized so each shard packs its whole range into one
    # cluster: placement stays O(1) and the journal stream per shard is
    # the interesting cost.
    capacity = ClusterCapacity(routes=NUM_VNIS * ROUTES_PER,
                               vms=NUM_VNIS, traffic_bps=1e18)
    sharded = ShardedController.build(
        num_shards, capacity, cluster_factory=factory,
        vni_space=VNI_SPACE, segment_bytes=1 << 20)

    started = time.perf_counter()
    for vni in range(NUM_VNIS):
        sharded.add_tenant(TenantProfile(vni, ROUTES_PER, 1, 1.0), [], [])
        with sharded.transaction(vni) as txn:
            for prefix in PREFIXES:
                txn.install_route(RouteEntry(vni, prefix, LOCAL))
            txn.install_vm(VmEntry(vni, 0xC0A80000 + (vni & 0xFFFF), 4,
                                   BINDING))
    build_seconds = time.perf_counter() - started
    return sharded, build_seconds


def run_churn(sharded, rng):
    """Sustained single-tenant churn; returns per-update seconds."""
    latencies = []
    for _ in range(CHURN_OPS):
        vni = rng.randrange(NUM_VNIS)
        started = time.perf_counter()
        sharded.install_route(RouteEntry(vni, CHURN_PREFIX, LOCAL))
        sharded.remove_route(vni, CHURN_PREFIX)
        latencies.append((time.perf_counter() - started) / 2.0)
    return latencies


def run_xtxns(sharded, rng):
    """Cross-shard peer installs through the 2PC; returns seconds total."""
    num_shards = sharded.router.num_shards
    if num_shards < 2 or XTXNS == 0:
        return 0.0
    stride = VNI_SPACE // num_shards  # a and b always on different shards
    started = time.perf_counter()
    for i in range(XTXNS):
        a = rng.randrange(min(stride, NUM_VNIS))
        b = (a + stride) % NUM_VNIS
        with sharded.cross_transaction() as xtxn:
            xtxn.install_route(RouteEntry(a, CHURN_PREFIX,
                                          RouteAction(Scope.PEER,
                                                      next_hop_vni=b)))
            xtxn.install_route(RouteEntry(b, CHURN_PREFIX,
                                          RouteAction(Scope.PEER,
                                                      next_hop_vni=a)))
        with sharded.cross_transaction() as xtxn:
            xtxn.remove_route(a, CHURN_PREFIX)
            xtxn.remove_route(b, CHURN_PREFIX)
    return time.perf_counter() - started


def snapshot_all(sharded):
    """Checkpoint every shard, one at a time; returns per-shard seconds."""
    costs = {}
    for sid in sorted(sharded.shards):
        started = time.perf_counter()
        sharded.snapshot(sid)
        costs[sid] = time.perf_counter() - started
    return costs


def percentile(values, q):
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def measure(num_shards):
    rng = derive(SEED, "shard-bench", num_shards)
    sharded, build_seconds = build_region(num_shards)
    entries = sum(s.entry_counts()["routes"] for s in sharded.shards.values())

    churn_cold = run_churn(sharded, rng)   # against un-compacted journals
    snap_costs = snapshot_all(sharded)     # per-shard compaction pause
    churn_warm = run_churn(sharded, rng)   # against compacted journals
    xtxn_seconds = run_xtxns(sharded, rng)

    latencies = churn_cold + churn_warm
    telemetry = sharded.shard_status()
    return {
        "shards": num_shards,
        "vnis": NUM_VNIS,
        "routes": entries,
        "build_seconds": round(build_seconds, 3),
        "update_p50_us": round(percentile(latencies, 0.50) * 1e6, 2),
        "update_p99_us": round(percentile(latencies, 0.99) * 1e6, 2),
        "updates_per_second": round(len(latencies) * 1.0 /
                                    max(sum(latencies), 1e-9)),
        "snapshot_seconds_max": round(max(snap_costs.values()), 3),
        "snapshot_seconds_sum": round(sum(snap_costs.values()), 3),
        "xtxns": XTXNS * 2,
        "xtxn_seconds": round(xtxn_seconds, 3),
        "xtxns_committed": sharded.counters["xtxns_committed"],
        "tail_records_max": max(t["tail_records"] for t in telemetry),
        "segments_max": max(t["segments"] for t in telemetry),
        "snapshot_bytes_max": max(t["snapshot_bytes"] for t in telemetry),
        "per_shard": telemetry,
    }


def test_shard_scale_churn():
    results = [measure(n) for n in SHARD_COUNTS]

    rows = []
    for r in results:
        rows.append((f"{r['shards']} shards", "p99 flat",
                     f"{r['update_p99_us']:.0f} us"))
        rows.append((f"{r['shards']} shards snapshot(max)", "O(shard)",
                     f"{r['snapshot_seconds_max']:.2f} s"))
    emit(f"Sharded control plane ({NUM_VNIS} VNIs, "
         f"{results[0]['routes']} routes)", rows,
         header=("config", "expectation", "measured"))

    art_dir = os.environ.get("SHARD_ARTIFACT_DIR", ".")
    os.makedirs(art_dir, exist_ok=True)
    out_path = os.path.join(art_dir, "BENCH_shard.json")
    with open(out_path, "w") as fh:
        json.dump({"vnis": NUM_VNIS, "routes_per_tenant": ROUTES_PER,
                   "churn_ops": CHURN_OPS, "results": results},
                  fh, indent=2, sort_keys=True)

    # Every tenant onboarded on every config, with the full route load.
    for r in results:
        assert r["routes"] == NUM_VNIS * ROUTES_PER
        assert r["xtxns_committed"] == (r["xtxns"] if r["shards"] > 1 else 0)
        # Compaction really pruned the per-shard tails.
        assert r["tail_records_max"] <= 3 * CHURN_OPS + 4 * XTXNS + 16

    # Single-shard updates are O(1): p99 must not grow with the shard
    # count (allow 3x for scheduler noise on shared CI runners).
    if len(results) > 1:
        p99s = [r["update_p99_us"] for r in results]
        assert max(p99s) <= 3.0 * max(min(p99s), 1.0), p99s

    # Per-shard checkpoint pause shrinks as shards are added: the most
    # expensive single-shard snapshot with more shards must not exceed
    # the one with fewer (each covers a smaller range).
    if len(results) > 1:
        assert results[-1]["snapshot_seconds_max"] <= \
            1.5 * results[0]["snapshot_seconds_max"] + 0.05
