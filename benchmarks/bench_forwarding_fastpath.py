"""Flow-cache fast path: cached vs full-table-walk forwarding (§2.2).

The production DPDK gateway only reaches ~1 Mpps/core because a flow
cache short-circuits the per-packet table program; the first packet of a
flow pays the full walk (ACL + meters + PEER-chained VXLAN routing +
VM-NC + rewrite) and later packets replay the cached terminal decision.
This bench drives a Zipf(1.1) workload over service-chained VPC peering
(three PEER hops to the terminal VPC) through two identical XGW-x86
boxes — one with the cache, one forced onto the slow path — and checks:

* byte-identical results and identical counter/meter state either way;
* a cache hit rate >= 0.9 on the Zipf stream (the head flows dominate);
* >= 5x packet-rate speedup for the cached box at steady state.

Writes ``BENCH_fastpath.json`` (set ``FASTPATH_ARTIFACT_DIR`` to choose
where; defaults to the working directory) so CI accrues the fast-path
perf trajectory per PR.
"""

import ipaddress
import json
import os
import time

from conftest import emit
from repro.dataplane.gateway_logic import GatewayTables
from repro.net.addr import Prefix
from repro.sim.rand import WeightedSampler, derive, zipf_weights
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import RouteAction, Scope
from repro.workloads.traffic import build_vxlan_packet
from repro.x86.gateway import XgwX86

SEED = 2021
N_VNIS = 32
FLOWS_PER_VNI = 16          # 512 distinct (VNI, dst) flows
PEER_DEPTH = 3              # service-chained peering: 4 LPM resolutions
ZIPF_ALPHA = 1.1
N_PACKETS = 20_000
TIMING_REPEATS = 5
GATEWAY_IP = int(ipaddress.ip_address("10.255.0.1"))


def build_tables():
    """Tenant tables with PEER chains ending in a VM-populated VPC."""
    tables = GatewayTables()
    for i in range(N_VNIS):
        chain = [100 + i] + [1000 * (hop + 1) + i for hop in range(PEER_DEPTH)]
        prefix = Prefix.parse(f"10.{i}.0.0/16")
        for src_vni, dst_vni in zip(chain, chain[1:]):
            tables.routing.insert(src_vni, prefix,
                                  RouteAction(Scope.PEER, next_hop_vni=dst_vni))
        terminal = chain[-1]
        for j in range(8):  # more-specific routes deepen the LPM walk
            tables.routing.insert(terminal, Prefix.parse(f"10.{i}.{j}.0/24"),
                                  RouteAction(Scope.LOCAL))
        tables.routing.insert(terminal, prefix, RouteAction(Scope.LOCAL))
        for f in range(FLOWS_PER_VNI):
            tables.vm_nc.insert(terminal, flow_dst(i, f), 4,
                                NcBinding(int(ipaddress.ip_address(
                                    f"172.16.{i}.{10 + f}"))))
    return tables


def flow_dst(vni_index, flow_index):
    return int(ipaddress.ip_address(
        f"10.{vni_index}.{flow_index % 8}.{10 + flow_index}"))


def build_workload():
    """A Zipf(1.1)-sampled packet stream over the 512 flows."""
    flows = [(100 + i, flow_dst(i, f))
             for i in range(N_VNIS) for f in range(FLOWS_PER_VNI)]
    sampler = WeightedSampler(zipf_weights(len(flows), ZIPF_ALPHA),
                              derive(SEED, "fastpath"))
    src = int(ipaddress.ip_address("10.200.0.1"))
    packets = []
    for _ in range(N_PACKETS):
        vni, dst = flows[sampler.sample()]
        packets.append(build_vxlan_packet(vni=vni, src_ip=src, dst_ip=dst))
    return packets


def best_pass_seconds(gateway, packets):
    best = float("inf")
    for _ in range(TIMING_REPEATS):
        start = time.perf_counter()
        gateway.forward_batch(packets)
        best = min(best, time.perf_counter() - start)
    return best


def save_artifact(payload):
    art_dir = os.environ.get("FASTPATH_ARTIFACT_DIR", ".")
    os.makedirs(art_dir, exist_ok=True)
    with open(os.path.join(art_dir, "BENCH_fastpath.json"), "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)


def test_fastpath_speedup(benchmark):
    packets = build_workload()
    # This bench measures the *flow-cache* fast path specifically, so
    # both boxes pin columnar=False (the columnar batch path has its own
    # bench: bench_columnar_fastpath.py).
    cached = XgwX86(gateway_ip=GATEWAY_IP, tables=build_tables(),
                    columnar=False)
    uncached = XgwX86(gateway_ip=GATEWAY_IP, tables=build_tables(),
                      cache_entries=0, columnar=False)

    # Cold pass doubles as the equivalence check: the fast path must be
    # byte-identical to the slow path, packet for packet, and leave the
    # stateful layers (counters, meters) in the same end state.
    cached_results = cached.forward_batch(packets)
    uncached_results = uncached.forward_batch(packets)
    for got, want in zip(cached_results, uncached_results):
        assert got.action is want.action
        assert got.detail == want.detail
        assert got.packet.to_bytes() == want.packet.to_bytes()
    assert (cached.tables.counters.total_packets()
            == uncached.tables.counters.total_packets())
    assert (cached.tables.counters.total_bytes()
            == uncached.tables.counters.total_bytes())
    assert cached.tables.meters.green == uncached.tables.meters.green
    zipf_hit_rate = cached.flow_cache.hit_rate

    # Steady state: the working set is resident, so time repeated passes.
    cached_s = best_pass_seconds(cached, packets)
    uncached_s = best_pass_seconds(uncached, packets)
    speedup = uncached_s / cached_s
    hits_before = cached.flow_cache.hits
    cached.forward_batch(packets)
    steady_hit_rate = (cached.flow_cache.hits - hits_before) / N_PACKETS

    cached_pps = N_PACKETS / cached_s
    uncached_pps = N_PACKETS / uncached_s
    rows = [
        ("distinct flows", "512", f"{N_VNIS * FLOWS_PER_VNI}"),
        ("Zipf-stream hit rate", ">= 0.9", f"{zipf_hit_rate:.3f}"),
        ("steady-state hit rate", "~1.0", f"{steady_hit_rate:.3f}"),
        ("slow-path rate", "~1 Mpps/core order", f"{uncached_pps / 1e3:.0f} kpps"),
        ("fast-path rate", "", f"{cached_pps / 1e3:.0f} kpps"),
        ("cached/uncached speedup", ">= 5x", f"{speedup:.1f}x"),
    ]
    emit("Flow-cache fast path (Zipf 1.1, 3-hop PEER chains)", rows)

    save_artifact({
        "workload": {
            "flows": N_VNIS * FLOWS_PER_VNI,
            "packets": N_PACKETS,
            "zipf_alpha": ZIPF_ALPHA,
            "peer_depth": PEER_DEPTH,
            "seed": SEED,
        },
        "zipf_hit_rate": zipf_hit_rate,
        "steady_hit_rate": steady_hit_rate,
        "cached_pps": cached_pps,
        "uncached_pps": uncached_pps,
        "speedup": speedup,
        "cache_counters": cached.flow_cache.counters(),
    })

    assert zipf_hit_rate >= 0.9
    assert steady_hit_rate >= 0.9
    assert speedup >= 5.0

    benchmark(cached.forward_batch, packets)
