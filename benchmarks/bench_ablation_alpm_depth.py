"""Ablation: the ALPM first-level depth trade-off (§4.4).

"The tradeoff between TCAM occupancy and table lookup efficiency can be
made by adjusting the depth of the first level." We sweep the bucket
capacity (the dual of first-level depth) over a fixed composite route
table and measure the real carve's TCAM pivots, SRAM bucket words and
bucket-scan width (the lookup-efficiency proxy). Benchmarks a carve.
"""

import pytest

from conftest import emit
from repro.net.addr import Prefix
from repro.sim.rand import derive
from repro.tables.alpm import AlpmTable
from repro.tables.vxlan_routing import RouteAction, Scope, VxlanRoutingTable

CAPACITIES = (4, 8, 16, 22, 32, 64)


def _routing_table(num_vnis=100, routes_per_vni=10, seed=33):
    rng = derive(seed, "routes")
    table = VxlanRoutingTable()
    for vni in range(1000, 1000 + num_vnis):
        for _ in range(routes_per_vni):
            plen = rng.choice((16, 20, 24, 28))
            net = rng.randrange(1 << plen) << (32 - plen)
            table.insert(vni, Prefix.of(net, plen, 4), RouteAction(Scope.LOCAL),
                         replace=True)
    return table


def test_alpm_depth_sweep(benchmark):
    routing = _routing_table()
    routes = routing.to_composite_routes()
    width = VxlanRoutingTable.composite_width()

    results = {}
    for capacity in CAPACITIES:
        table = AlpmTable.build(width, routes, bucket_capacity=capacity)
        fp = table.footprint()
        stats = table.stats()
        results[capacity] = (len(table.partitions), fp.tcam_slices, fp.sram_words,
                             stats.mean_bucket_occupancy)

    rows = [
        (f"bucket={capacity}",
         f"pivots {parts}, util {util:.2f}",
         f"TCAM {tcam} slices, SRAM {sram} words")
        for capacity, (parts, tcam, sram, util) in results.items()
    ]
    emit("Ablation: ALPM bucket capacity sweep", rows,
         header=("config", "carve", "memory"))

    # The trade: larger buckets -> monotonically fewer TCAM pivots...
    pivots = [results[c][0] for c in CAPACITIES]
    assert pivots == sorted(pivots, reverse=True)
    # ...and wider per-lookup bucket scans (lookup efficiency cost).
    assert CAPACITIES[-1] / CAPACITIES[0] > 1
    # Flat TCAM LPM as the baseline: any ALPM config saves a lot.
    flat_slices = len(routes) * 4
    for capacity in CAPACITIES:
        assert results[capacity][1] < flat_slices / 2

    benchmark(AlpmTable.build, width, routes, bucket_capacity=22)
