"""Fig. 18: XGW-H vs XGW-x86 forwarding performance.

(a) throughput, (b) packet rate (pressure test over packet sizes),
(c) latency — from the calibrated chip/box models, plus a real packet
pushed through both functional data paths as a sanity check.
Benchmarks both functional forwarding paths.
"""

import ipaddress

import pytest

from conftest import emit
from repro.core.xgw_h import XgwH
from repro.dataplane.gateway_logic import ForwardAction, GatewayTables
from repro.net.addr import Prefix
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import RouteAction, Scope
from repro.workloads.traffic import build_vxlan_packet
from repro.x86.gateway import FORWARDING_LATENCY_US, XgwX86


def ip(text):
    return int(ipaddress.ip_address(text))


def _loaded_pair():
    hw = XgwH(gateway_ip=ip("10.0.0.254"))
    sw_tables = GatewayTables()
    hw.install_route(100, Prefix.parse("192.168.10.0/24"), RouteAction(Scope.LOCAL))
    hw.install_vm(100, ip("192.168.10.3"), 4, NcBinding(ip("10.1.1.12")))
    sw_tables.routing.insert(100, Prefix.parse("192.168.10.0/24"),
                             RouteAction(Scope.LOCAL))
    sw_tables.vm_nc.insert(100, ip("192.168.10.3"), 4, NcBinding(ip("10.1.1.12")))
    sw = XgwX86(gateway_ip=ip("10.0.0.253"), tables=sw_tables)
    return hw, sw


def test_fig18a_throughput(benchmark):
    hw, sw = _loaded_pair()
    ratio = hw.throughput_bps() / sw.nic.bandwidth_bps
    rows = [
        ("XGW-H throughput", "3.2 Tbps", f"{hw.throughput_bps() / 1e12:.1f} Tbps"),
        ("XGW-x86 throughput", "1x baseline", f"{sw.nic.bandwidth_bps / 1e9:.0f} Gbps"),
        ("ratio", ">20x", f"{ratio:.0f}x"),
    ]
    emit("Fig. 18(a): throughput", rows)
    assert ratio > 20

    packet = build_vxlan_packet(100, ip("192.168.10.2"), ip("192.168.10.3"))
    result = benchmark(hw.forward, packet)
    assert result.action is ForwardAction.DELIVER_NC


def test_fig18b_packet_rate(benchmark):
    hw, sw = _loaded_pair()
    hw_pps = hw.chip.rate_at(192).packet_rate_pps
    sw_pps = sw.max_pps(192)
    rows = [
        ("XGW-H pps (<256B)", "1800 Mpps", f"{hw_pps / 1e6:.0f} Mpps"),
        ("XGW-x86 pps", "25 Mpps", f"{sw_pps / 1e6:.0f} Mpps"),
        ("ratio", "71-72x", f"{hw_pps / sw_pps:.0f}x"),
        ("XGW-H line rate down to", "<256B", f"{hw.chip.min_line_rate_packet()}B"),
        ("XGW-x86 line rate above", ">512B", f"{sw.min_line_rate_packet()}B"),
    ]
    emit("Fig. 18(b): packet forwarding rate", rows)
    assert hw_pps == pytest.approx(1.8e9, rel=0.1)
    assert sw_pps == pytest.approx(25e6, rel=0.05)
    assert 60 <= hw_pps / sw_pps <= 85
    assert hw.chip.min_line_rate_packet() < 256
    assert 256 < sw.min_line_rate_packet() <= 512

    print("\npressure-test series (packet size -> Gpps, line rate?):")
    for size in (64, 128, 192, 256, 512, 1024):
        report = hw.chip.rate_at(size)
        print(f"  {size:>5}B  {report.packet_rate_pps / 1e9:5.2f} Gpps  "
              f"line_rate={report.line_rate}")

    benchmark(hw.chip.rate_at, 192)


def test_fig18c_latency(benchmark):
    hw, sw = _loaded_pair()
    hw_latency = hw.latency_us()
    reduction = 1 - hw_latency / FORWARDING_LATENCY_US
    rows = [
        ("XGW-H latency", "2 us (2.17-2.31)", f"{hw_latency:.2f} us"),
        ("XGW-x86 latency", "40 us", f"{FORWARDING_LATENCY_US:.0f} us"),
        ("reduction", "95%", f"{reduction:.0%}"),
    ]
    emit("Fig. 18(c): forwarding latency", rows)
    assert 2.0 <= hw_latency <= 2.35
    assert reduction >= 0.93

    packet = build_vxlan_packet(100, ip("192.168.10.2"), ip("192.168.10.3"))
    result = benchmark(sw.forward, packet)
    assert result.action is ForwardAction.DELIVER_NC
