"""Fig. 6: load is balanced *across gateways* (the imbalance is per-core).

The same traffic that pins single cores in Fig. 4 spreads evenly over
the 15 gateways of a region: flow-hash ECMP balances aggregates, it just
cannot split an elephant flow. Benchmarks the ECMP split.
"""

import pytest

from conftest import emit
from repro.telemetry.stats import jains_fairness
from repro.workloads.flows import heavy_hitter_flows, split_flows_over_gateways
from repro.x86.gateway import XgwX86

NUM_GATEWAYS = 15


def test_fig6_gateway_balance(benchmark):
    gateways = [XgwX86(gateway_ip=i + 1) for i in range(NUM_GATEWAYS)]
    capacity = sum(gw.total_capacity_pps for gw in gateways)
    core_pps = gateways[0].cpu.cores[0].capacity_pps
    flows = heavy_hitter_flows(5000, capacity * 0.5, seed=6, alpha=1.1,
                               max_pps=core_pps * 2.0)

    buckets = benchmark(split_flows_over_gateways, flows, NUM_GATEWAYS)
    loads = [sum(f.pps for f in bucket) for bucket in buckets]
    utilizations = [
        load / gw.total_capacity_pps for gw, load in zip(gateways, loads)
    ]
    fairness = jains_fairness(loads)

    rows = [
        ("gateways", "15", f"{NUM_GATEWAYS}"),
        ("mean gateway utilization", "~25-50%", f"{sum(utilizations) / len(utilizations):.0%}"),
        ("max/min gateway load", "balanced", f"{max(loads) / min(loads):.2f}x"),
        ("Jain's fairness", "~1.0", f"{fairness:.3f}"),
    ]
    emit("Fig. 6: load across gateways", rows)

    assert fairness > 0.9
    # Meanwhile the per-core story (Fig. 4) still bites inside one box:
    report = gateways[0].serve_interval([(f.flow, f.pps) for f in buckets[0]])
    assert max(report.utilizations()) > 2 * (
        sum(report.utilizations()) / len(report.utilizations())
    )
