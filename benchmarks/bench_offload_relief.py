"""Offload relief: a saturated XGW-x86 drained by sketch-driven offload.

Drives a seeded Zipf workload that pins an XGW-x86's hottest cores past
100% (the Fig. 4 regime), lets the heavy-hitter detector promote the
head flows onto an XGW-H cluster through the capacity-aware scheduler,
and checks the closed loop's promises: steady-state x86 loss under
0.1%, chip occupancy within the compiler-reported budget, and a
byte-identical decision log for equal seeds. Benchmarks one full
measure→detect→migrate interval.

Set ``OFFLOAD_ARTIFACT_DIR`` to save the decision log + run summary
(CI uploads them on failure, like the crash-recovery journals).
"""

import ipaddress
import json
import os

import pytest

from conftest import emit
from repro.cluster.cluster import GatewayCluster
from repro.cluster.ecmp import VniSteeredBalancer
from repro.core.controller import Controller, RouteEntry
from repro.core.splitting import ClusterCapacity, TableSplitter, TenantProfile
from repro.core.xgw_h import XgwH
from repro.net.addr import Prefix
from repro.offload import (
    ChipBudget,
    HeavyHitterDetector,
    OffloadLoop,
    OffloadScheduler,
)
from repro.sim.engine import Engine
from repro.tables.vxlan_routing import RouteAction, Scope
from repro.workloads.flows import heavy_hitter_flows
from repro.x86.cpu import DEFAULT_CORE_PPS
from repro.x86.gateway import XgwX86

VNI = 1000
DURATION = 30.0
SEED = 7


def build_controller():
    ctrl = Controller(
        TableSplitter(ClusterCapacity(routes=50, vms=500, traffic_bps=1e13)),
        VniSteeredBalancer(),
    )
    ctrl.set_cluster_factory(lambda cid: GatewayCluster(
        cid, [(f"{cid}-gw{i}", XgwH(gateway_ip=10 + i)) for i in range(2)]))
    profile = TenantProfile(VNI, 1, 0, 1e9)
    subnet = Prefix.parse("192.168.0.0/16")
    routes = [RouteEntry(VNI, subnet, RouteAction(Scope.LOCAL))]
    cluster_id = ctrl.add_tenant(profile, routes, [])
    return ctrl, cluster_id


def build_loop(seed=SEED):
    ctrl, cluster_id = build_controller()
    budget = ChipBudget(ctrl.clusters[cluster_id], sram_budget_words=64,
                        tcam_budget_slices=128)
    detector = HeavyHitterDetector(
        theta_hi=0.5 * DEFAULT_CORE_PPS, theta_lo=0.2 * DEFAULT_CORE_PPS,
        promote_after=2, demote_after=3, ewma_alpha=0.5, seed=seed)
    scheduler = OffloadScheduler(ctrl, cluster_id, budget, detector=detector)
    gateway = XgwX86(gateway_ip=int(ipaddress.ip_address("10.0.0.1")))
    flows = heavy_hitter_flows(100, 0.4 * gateway.total_capacity_pps,
                               seed=4, alpha=1.4, vnis=[VNI])
    engine = Engine()
    loop = OffloadLoop(engine, [gateway], scheduler, detector,
                       lambda _t: flows)
    return engine, loop, scheduler


def run_loop(seed=SEED):
    engine, loop, scheduler = build_loop(seed)
    loop.start(until=DURATION)
    engine.run(until=DURATION)
    return loop, scheduler


def save_artifacts(name, scheduler, loop):
    """Drop the decision log + run summary where CI can upload them."""
    art_dir = os.environ.get("OFFLOAD_ARTIFACT_DIR")
    if not art_dir:
        return
    os.makedirs(art_dir, exist_ok=True)
    with open(os.path.join(art_dir, f"{name}.decisions.log"), "w") as fh:
        fh.write(scheduler.decision_log_text())
    summary = {
        "snapshots": [
            {"t": s.time, "x86_loss": s.x86_loss,
             "x86_max_core_util": s.x86_max_core_util,
             "offloaded_pps": s.offloaded_pps}
            for s in loop.snapshots
        ],
        "occupancy": scheduler.budget.occupancy(),
        "counters": scheduler.counters.snapshot(),
    }
    with open(os.path.join(art_dir, f"{name}.summary.json"), "w") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)


def test_offload_relieves_cpu_overload(benchmark):
    loop, scheduler = run_loop()
    save_artifacts("offload-relief", scheduler, loop)
    first, last = loop.snapshots[0], loop.snapshots[-1]

    rows = [
        ("x86 loss before offload", "> 10%", f"{first.x86_loss:.1%}"),
        ("x86 loss at steady state", "< 0.1%", f"{last.x86_loss:.3%}"),
        ("hottest core before", "100%", f"{first.x86_max_core_util:.0%}"),
        ("hottest core after", "< 90%", f"{last.x86_max_core_util:.0%}"),
        ("VIPs offloaded", "head of the Zipf", f"{len(scheduler.offloaded)}"),
        ("chip SRAM occupancy", "within budget",
         f"{scheduler.budget.occupancy()['sram']:.1%}"),
        ("migrations aborted", "0",
         f"{scheduler.counters['migrations_aborted']}"),
    ]
    emit("Offload relief: x86 overload drained onto XGW-H", rows)

    # Before: the Fig. 4 signature — saturated hottest core, heavy loss.
    assert first.x86_max_core_util == pytest.approx(1.0)
    assert first.x86_loss > 0.1
    # After: the head flows run on the chip; x86 under 0.1% loss.
    assert last.x86_loss < 0.001
    assert last.x86_max_core_util < 0.9
    assert len(scheduler.offloaded) > 0
    assert last.hw_dropped_pps == 0.0
    # Never past the compiler-reported capacity.
    used, cap = scheduler.budget.used, scheduler.budget.capacity()
    assert used.sram_words <= cap.sram_words
    assert used.tcam_slices <= cap.tcam_slices
    # Steady state means no flapping: every promotion stuck.
    assert scheduler.counters["demotions"] == 0

    engine2, loop2, _sched2 = build_loop()
    loop2.start(until=DURATION)
    engine2.run(until=1.0)  # warm: population known, decisions pending
    benchmark(loop2.tick)


def test_decision_log_deterministic():
    _loop_a, sched_a = run_loop(seed=SEED)
    _loop_b, sched_b = run_loop(seed=SEED)
    save_artifacts("offload-determinism", sched_a, _loop_a)
    assert sched_a.decision_log_text() == sched_b.decision_log_text()
    assert sched_a.decision_log_text()
