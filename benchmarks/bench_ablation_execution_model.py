"""Ablation: run-to-completion vs packet spraying (§2.3's discussion).

The paper keeps DPDK's run-to-completion model despite the heavy-hitter
hotspots because the pipeline (spraying) alternative pays an inter-core
transfer tax and, without sequence-preserving hardware, reorders flows.
This bench measures both sides of that trade on the same workload.
"""

import pytest

from conftest import emit
from repro.net.flow import FlowKey
from repro.sim.rand import derive
from repro.x86.gateway import XgwX86
from repro.x86.spray import PacketSprayModel, compare_models


def _workload(gateway, rng):
    """An elephant above core capacity plus balanced mice at ~40% load."""
    core_pps = gateway.cpu.cores[0].capacity_pps
    flows = [(FlowKey(rng.randrange(1 << 32), 2, 6, 443, 443), core_pps * 1.5)]
    mice_total = gateway.total_capacity_pps * 0.4
    count = 600
    flows += [
        (FlowKey(rng.randrange(1 << 32), 3, 6, 1000 + i, 80), mice_total / count)
        for i in range(count)
    ]
    return flows


def test_ablation_execution_model(benchmark):
    rng = derive(2, "exec-model")
    gateway = XgwX86(gateway_ip=1)
    spray = PacketSprayModel()
    flows = _workload(gateway, rng)

    result = benchmark(compare_models, flows, gateway, spray)

    rows = [
        ("RTC loss (hot core)", "real (Fig. 5)", f"{result['rtc_loss']:.2e}"),
        ("RTC max core utilization", "100%",
         f"{result['rtc_max_core_utilization']:.0%}"),
        ("RTC reordering", "none", f"{result['rtc_reordered']:.0%}"),
        ("spray loss", "0 below taxed capacity", f"{result['spray_loss']:.2e}"),
        ("spray reordering", "significant without hw reorder",
         f"{result['spray_reordered']:.1%}"),
        ("spray capacity tax", "L3 transfer penalty",
         f"{result['spray_capacity_tax']:.0%}"),
    ]
    emit("Ablation: run-to-completion vs packet spraying", rows)

    # The §2.3 trade, quantified: RTC drops on the elephant's core while
    # spraying avoids loss but reorders and burns ~30% capacity.
    assert result["rtc_loss"] > 0
    assert result["rtc_reordered"] == 0.0
    assert result["spray_loss"] == 0.0
    assert result["spray_reordered"] > 0.005
    assert result["spray_capacity_tax"] >= 0.25
