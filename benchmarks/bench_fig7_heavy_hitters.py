"""Fig. 7: overloaded cores are dominated by their top-1/top-2 flows.

Reconstructs 12 "CPU overload scenes": for each, find the saturated core
and measure what fraction of its packets belong to the top-1 and top-2
flows. The paper: "in most cases, the top-1 and top-2 flows dominate".
Benchmarks the overload-scene analysis.
"""

import pytest

from conftest import emit
from repro.telemetry.stats import top_n_share
from repro.workloads.flows import heavy_hitter_flows
from repro.x86.gateway import XgwX86

SCENES = 12


def _overload_scene(seed):
    """Offer skewed flows until some core saturates; return its flow mix."""
    gw = XgwX86(gateway_ip=1)
    flows = heavy_hitter_flows(100, gw.total_capacity_pps * 0.5, seed=seed,
                               alpha=1.5)
    report = gw.serve_interval([(f.flow, f.pps) for f in flows])
    hot = max(report.core_intervals, key=lambda ci: ci.offered_pps)
    shares = sorted(hot.flow_share.values(), reverse=True)
    return shares, hot.utilization


def test_fig7_heavy_hitter_domination(benchmark):
    top1_shares, top2_shares = [], []
    for scene in range(SCENES):
        shares, _util = _overload_scene(seed=(7, scene))
        top1_shares.append(top_n_share(shares, 1))
        top2_shares.append(top_n_share(shares, 2))

    dominated = sum(1 for s in top2_shares if s > 0.5)
    rows = [
        ("scenes", "12", f"{SCENES}"),
        ("mean top-1 flow share", "dominant", f"{sum(top1_shares) / SCENES:.0%}"),
        ("mean top-2 flow share", "dominant", f"{sum(top2_shares) / SCENES:.0%}"),
        ("scenes with top-2 > 50%", "most", f"{dominated}/{SCENES}"),
    ]
    emit("Fig. 7: flow mix on the overloaded core", rows)

    # The paper's claim: in most scenes the top-2 flows dominate.
    assert dominated >= SCENES * 2 // 3
    assert sum(top2_shares) / SCENES > 0.5

    benchmark(_overload_scene, (7, 0))
