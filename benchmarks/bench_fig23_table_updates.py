"""Fig. 23: VXLAN routing-table update pattern over a month.

Generates the update event stream (slow regular churn + rare sudden
top-customer batches), integrates it into per-cluster entry-count
curves, and checks the paper's observations: low regular update rates,
and sudden jumps that dominate the curve's total variation. Benchmarks
event generation + integration.
"""

import pytest

from conftest import emit
from repro.workloads.updates import (
    UpdateKind,
    entry_count_series,
    generate_update_events,
    sudden_events,
    update_rate_per_day,
)

DAYS = 30
CLUSTERS = 4


def _cluster_month(seed):
    events = generate_update_events(DAYS, seed=seed)
    series = entry_count_series(events, initial_entries=100_000)
    return events, series


def test_fig23_table_updates(benchmark):
    benchmark(_cluster_month, 23)

    rows = []
    for cluster in range(CLUSTERS):
        events, series = _cluster_month(seed=(23, cluster))
        sudden = sudden_events(events)
        regular = [e for e in events if e.kind is UpdateKind.REGULAR]
        growth = series.values[-1] - series.values[0]
        sudden_delta = sum(e.delta_entries for e in sudden)
        rows.append((
            f"cluster {chr(ord('A') + cluster)}",
            "slow + rare jumps",
            f"{update_rate_per_day(regular, DAYS):.0f}/day regular, "
            f"{len(sudden)} jumps, growth {growth:+,.0f}",
        ))
        # Regular updates are "relatively low frequency".
        assert update_rate_per_day(regular, DAYS) < 100
        # Sudden events are rare...
        assert len(sudden) <= DAYS * 0.3
        # ...but dominate net growth when they occur.
        if sudden:
            assert sudden_delta > abs(growth - sudden_delta) * 0.5

    emit("Fig. 23: routing-table updates over a month", rows,
         header=("cluster", "paper", "measured"))


def test_fig23_controller_records_series(benchmark, small_region):
    """The controller's own table-size series shows onboarding jumps."""
    controller = small_region.controller
    rows = []
    for cluster_id in sorted(controller.clusters):
        series = controller.table_size_series[cluster_id]
        rows.append((cluster_id, "stepwise growth",
                     f"{len(series)} updates to {series.values[-1]:,.0f} entries"))
        assert series.values[-1] > 0
        # Entry counts never go negative and only change at updates.
        assert all(v >= 0 for v in series.values)
    emit("Fig. 23: controller-recorded table sizes", rows)

    benchmark(lambda: [controller.table_size_series[c].maximum()
                       for c in controller.clusters])
