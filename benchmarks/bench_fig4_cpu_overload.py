"""Fig. 4: one CPU core pinned for days while the others idle.

Replays a multi-day festival load of Zipf heavy-hitter flows into one
XGW-x86 through RSS, records per-core utilisation time series, and
checks the paper's signature: the top core saturates while the median
core stays lightly loaded. Benchmarks one RSS+serve interval.
"""

import pytest

from conftest import emit
from repro.telemetry.timeseries import SeriesBundle
from repro.workloads.flows import festival_series, heavy_hitter_flows
from repro.x86.gateway import XgwX86

DAYS = 8
SAMPLES_PER_DAY = 24


def _run_week(gw):
    bundle = SeriesBundle()
    curve = festival_series(DAYS, SAMPLES_PER_DAY, gw.total_capacity_pps * 0.4,
                            seed=4, festival_day=5, festival_boost=1.8)
    for i, (t, offered) in enumerate(curve):
        # The flow *population* persists; rates follow the load curve.
        flows = heavy_hitter_flows(100, offered, seed=4, alpha=1.4)
        report = gw.serve_interval([(f.flow, f.pps) for f in flows])
        for core_index, ci in enumerate(report.core_intervals):
            bundle.record(f"core-{core_index}", t, ci.utilization)
    return bundle


def test_fig4_cpu_overload(benchmark):
    gw = XgwX86(gateway_ip=1)
    bundle = _run_week(gw)

    top5 = bundle.top_by_mean(5)
    all_means = sorted((s.mean() for name, s in
                        ((n, bundle[n]) for n in bundle.names())), reverse=True)
    median = all_means[len(all_means) // 2]

    rows = [
        ("top core mean utilization", "~100% for days", f"{top5[0].mean():.0%}"),
        ("top core peak", "100%", f"{top5[0].maximum():.0%}"),
        ("median core utilization", "lightly loaded", f"{median:.0%}"),
        ("cores", "32", f"{len(bundle.names())}"),
    ]
    emit("Fig. 4: per-core CPU utilization (XGW-x86)", rows)

    # The signature: persistent saturation of one core with idle peers.
    assert top5[0].maximum() == pytest.approx(1.0)
    assert top5[0].mean() > 0.9
    assert median < 0.5

    flows = heavy_hitter_flows(100, gw.total_capacity_pps * 0.4, seed=4, alpha=1.4)
    pairs = [(f.flow, f.pps) for f in flows]

    # Per-flow attribution (the offload decision input): processed +
    # dropped must reconstruct each flow's offered rate, and the drops
    # must concentrate on the saturated cores' flows — the head of the
    # Zipf population, not the mice.
    report = gw.serve_interval(pairs)
    offered = report.flow_offered_pps()
    processed = report.flow_processed_pps()
    dropped = report.flow_dropped_pps()
    for flow, pps in pairs:
        assert offered[flow] == pytest.approx(pps)
        assert processed[flow] + dropped[flow] == pytest.approx(pps)
    assert sum(dropped.values()) == pytest.approx(report.dropped_pps)
    top_flow = max(pairs, key=lambda p: p[1])[0]
    assert dropped[top_flow] > 0.0  # the elephant's core is saturated
    assert dropped[top_flow] == max(dropped.values())

    benchmark(gw.serve_interval, pairs)
