"""Fig. 22: a tiny minority of traffic hits XGW-x86.

With the production-like service mix (SNAT-bound Internet traffic at a
fraction of a percent of packets, everything else on mature hardware
tables), the software share lands in the paper's sub-percent band and
the x86 boxes stay far below overload. Benchmarks region forwarding.
"""

import pytest

from conftest import emit
from repro.core.table_sharing import ServiceProfile, SharingPolicy
from repro.workloads.traffic import RegionTrafficGenerator

PACKETS = 5000
#: Fraction of packets that are Internet/SNAT-bound in the bench mix; the
#: paper's region measures < 0.02% on x86 overall.
INTERNET_SHARE = 0.002


def test_fig22_traffic_sharing(benchmark, region):
    generator = RegionTrafficGenerator(region.topology, seed=22,
                                       internet_share=INTERNET_SHARE)
    report = region.forward_sample(packets=PACKETS, generator=generator)
    benchmark(lambda: region.forward(generator.sample_packet().packet))

    x86_pps_headroom = sum(gw.total_capacity_pps for gw in region.x86_fleet)
    rows = [
        ("traffic via XGW-x86", "< 0.02%", f"{report.software_ratio:.3%}"),
        ("traffic via XGW-H", "> 99.98%",
         f"{1 - report.software_ratio:.3%}"),
        ("x86 role", "few Gbps, no overload",
         f"{len(region.x86_fleet)} boxes, {x86_pps_headroom / 1e6:.0f} Mpps headroom"),
    ]
    emit("Fig. 22: traffic sharing between XGW-H and XGW-x86", rows)

    # Shape: the software share equals the long-tail service slice and is
    # well under a percent; hardware absorbs everything else.
    assert report.software_ratio < 0.01
    assert report.software_packets > 0
    assert report.dropped == 0


def test_fig22_policy_prediction(benchmark):
    """The controller's sharing decision predicts the measured split."""
    services = [
        ServiceProfile("vpc-routing", traffic_share=0.9798, entries=800_000),
        ServiceProfile("idc-cross-region", traffic_share=0.02, entries=50_000),
        ServiceProfile("snat", traffic_share=INTERNET_SHARE, entries=100_000_000,
                       stateful=True),
    ]
    policy = SharingPolicy(hardware_entry_budget=2_000_000)
    decision = benchmark(policy.decide, services, 15e12)
    rows = [
        ("predicted software share", "< 0.02", f"{decision.software_traffic_share:.4f}"),
        ("redirect rate limit", "provisioned 2x",
         f"{decision.redirect_rate_limit_bps / 1e9:.0f} Gbps"),
    ]
    emit("Fig. 22: policy prediction", rows)
    assert decision.software_traffic_share == pytest.approx(INTERNET_SHARE)
