"""Simulator scaling: region build and forwarding cost vs region size.

Not a paper artefact — this documents the reproduction's own capacity so
users know what region sizes are tractable on a laptop. Asserts sane
sub-linear-per-entity behaviour (build cost grows with VMs, per-packet
forwarding cost stays flat).
"""

import time

import pytest

from conftest import emit
from repro.core.sailfish import RegionSpec, Sailfish
from repro.workloads.traffic import RegionTrafficGenerator

SIZES = {
    "small (8 VPCs / 64 VMs)": RegionSpec.small(),
    "medium (60 VPCs / 2k VMs)": RegionSpec.medium(),
    "large (150 VPCs / 6k VMs)": RegionSpec(num_vpcs=150, total_vms=6_000),
}


def test_scale_sweep(benchmark):
    rows = []
    per_packet = {}
    for label, spec in SIZES.items():
        started = time.perf_counter()
        region = Sailfish.build(spec, seed=3)
        build_seconds = time.perf_counter() - started

        generator = RegionTrafficGenerator(region.topology, seed=3,
                                           internet_share=0.0)
        samples = list(generator.packets(300))
        started = time.perf_counter()
        for sample in samples:
            region.forward(sample.packet)
        forward_us = (time.perf_counter() - started) / len(samples) * 1e6
        per_packet[label] = forward_us
        rows.append((label, f"build {build_seconds:.2f}s",
                     f"{forward_us:.0f} us/packet"))
    emit("Simulator scaling", rows, header=("region", "build", "forwarding"))

    # Forwarding cost must not blow up with region size (tries are
    # logarithmic; steering is O(1)).
    costs = list(per_packet.values())
    assert max(costs) < 20 * min(costs)

    region = Sailfish.build(RegionSpec.small(), seed=3)
    generator = RegionTrafficGenerator(region.topology, seed=3, internet_share=0.0)
    sample = next(iter(generator.packets(1)))
    benchmark(region.forward, sample.packet)
