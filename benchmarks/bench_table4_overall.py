"""Table 4: overall memory consumption with the full table set.

Regenerates the per-pipe-pair occupancy both analytically and by
actually placing the representative table set on the simulated fabric
(block-granular, stage by stage). Benchmarks the placement planner.
"""

import pytest

from conftest import emit
from repro.core.planner import PlacementPlanner, sailfish_table_layout, table4_occupancy
from repro.tofino.pipeline import PipelineFabric

PAPER = {
    "pipeline_0_2": (70, 41),
    "pipeline_1_3": (68, 22),
    "sum": (69, 32),
}


def _place():
    fabric = PipelineFabric(folded=True)
    planner = PlacementPlanner(fabric)
    planner.plan(sailfish_table_layout())
    return fabric


def test_table4_overall_occupancy(benchmark):
    analytic = table4_occupancy()
    fabric = benchmark(_place)

    placed = {
        "pipeline_0_2": (fabric.memory[0].sram_occupancy(),
                         fabric.memory[0].tcam_occupancy()),
        "pipeline_1_3": (fabric.memory[1].sram_occupancy(),
                         fabric.memory[1].tcam_occupancy()),
    }
    rows = []
    for key, (paper_sram, paper_tcam) in PAPER.items():
        a_sram, a_tcam = analytic[key]
        rows.append((f"{key} SRAM", f"{paper_sram}%", f"{a_sram * 100:.1f}%"))
        rows.append((f"{key} TCAM", f"{paper_tcam}%", f"{a_tcam * 100:.1f}%"))
    emit("Table 4: overall occupancy (analytic)", rows)

    rows = [
        (f"{key} {kind}", f"{analytic[key][i] * 100:.1f}%",
         f"{placed[key][i] * 100:.1f}%")
        for key in ("pipeline_0_2", "pipeline_1_3")
        for i, kind in ((0, "SRAM"), (1, "TCAM"))
    ]
    emit("Table 4: block-granular placement vs analytic", rows,
         header=("pipe pair", "analytic", "placed"))

    for key, (paper_sram, paper_tcam) in PAPER.items():
        assert analytic[key][0] * 100 == pytest.approx(paper_sram, abs=2.0), key
        assert analytic[key][1] * 100 == pytest.approx(paper_tcam, abs=2.0), key
    for key in ("pipeline_0_2", "pipeline_1_3"):
        assert placed[key][0] == pytest.approx(analytic[key][0], abs=0.03)
        assert placed[key][1] == pytest.approx(analytic[key][1], abs=0.03)
