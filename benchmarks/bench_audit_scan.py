"""Audit sweep cost: full-scan latency and bounded per-tick work.

The §6.1-style auditor only earns its keep if a full sweep of the
invariant library is cheap enough to run continuously and the budgeted
scanner really bounds per-tick control-plane work. This bench builds a
clean multi-tenant region, checks the zero-false-positive property
(clean cluster => empty, byte-stable findings log), measures the
full-scan latency and the per-tick cost at a small budget, and asserts
the per-tick cost stays well below the full-scan cost.

Writes ``BENCH_audit.json`` (set ``AUDIT_ARTIFACT_DIR`` to choose
where; defaults to the working directory) so CI accrues the audit cost
trajectory per PR.
"""

import json
import os
import time

from conftest import emit
from repro.audit import AuditConfig, AuditScanner
from repro.core.sailfish import RegionSpec, Sailfish

SEED = 2021
BUDGET = 4
TIMING_REPEATS = 5


def best_seconds(fn):
    best = float("inf")
    for _ in range(TIMING_REPEATS):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def save_artifact(payload):
    art_dir = os.environ.get("AUDIT_ARTIFACT_DIR", ".")
    os.makedirs(art_dir, exist_ok=True)
    with open(os.path.join(art_dir, "BENCH_audit.json"), "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)


def test_audit_scan_cost(benchmark):
    region = Sailfish.build(RegionSpec.small(), seed=SEED)
    controller = region.controller

    scanner = AuditScanner(controller, AuditConfig(seed=SEED, budget=BUDGET))
    units = len(scanner._build_units())
    cycle = scanner.cycle_length()

    # Zero false positives on a clean region, byte-stable across runs.
    assert scanner.full_scan() == []
    assert scanner.log.dump() == b""
    rerun = AuditScanner(controller, AuditConfig(seed=SEED, budget=BUDGET))
    assert rerun.full_scan() == []
    assert rerun.log.dump() == scanner.log.dump()

    full_s = best_seconds(scanner.full_scan)

    def one_tick():
        scanner.tick()

    tick_s = best_seconds(one_tick)

    rows = [
        ("work units", "", f"{units}"),
        ("cycle length (budget 4)", "", f"{cycle} ticks"),
        ("full scan", "< 1 s", f"{full_s * 1e3:.1f} ms"),
        ("one tick", "<< full scan", f"{tick_s * 1e3:.2f} ms"),
        ("tick/full ratio", f"~{BUDGET}/{units}", f"{tick_s / full_s:.2f}"),
        ("clean-region findings", "0", f"{len(scanner.full_scan())}"),
    ]
    emit("Audit sweep cost (clean small region)", rows)

    save_artifact({
        "region": {"spec": "small", "seed": SEED},
        "units": units,
        "budget": BUDGET,
        "cycle_length": cycle,
        "full_scan_seconds": full_s,
        "tick_seconds": tick_s,
        "counters": scanner.counters.snapshot(),
    })

    assert full_s < 1.0
    # The budgeted tick must cost a fraction of the full sweep.
    assert tick_s < full_s

    benchmark(scanner.full_scan)
