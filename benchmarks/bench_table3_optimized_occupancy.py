"""Table 3: occupancy of the two major tables after all optimizations.

Benchmarks the full compression-plan application.
"""

import pytest

from conftest import emit
from repro.core.compression import CompressionPlan
from repro.core.occupancy import OccupancyModel


def test_table3_optimized_occupancy(benchmark):
    model = OccupancyModel.paper_scale()
    plan = CompressionPlan.full()
    benchmark(plan.apply, model)

    t3 = model.table3()
    rows = [
        ("VXLAN routing SRAM", "18%", f"{t3['vxlan_routing'].sram_percent:.1f}%"),
        ("VXLAN routing TCAM", "11%", f"{t3['vxlan_routing'].tcam_percent:.1f}%"),
        ("VM-NC SRAM", "18%", f"{t3['vm_nc'].sram_percent:.1f}%"),
        ("Sum SRAM", "36%", f"{t3['sum'].sram_percent:.1f}%"),
        ("Sum TCAM", "11%", f"{t3['sum'].tcam_percent:.1f}%"),
    ]
    emit("Table 3: optimized occupancy", rows)

    assert t3["vxlan_routing"].sram_percent == pytest.approx(18, abs=1.5)
    assert t3["vxlan_routing"].tcam_percent == pytest.approx(11, abs=1.5)
    assert t3["vm_nc"].sram_percent == pytest.approx(18, abs=1.5)
    assert t3["sum"].sram_percent == pytest.approx(36, abs=1.5)
    assert t3["sum"].tcam_percent == pytest.approx(11, abs=1.5)
    assert t3["sum"].fits()
