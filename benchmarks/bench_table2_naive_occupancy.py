"""Table 2: naive table occupancy on the chip (the problem statement).

Regenerates every cell of Table 2 from the calibrated occupancy model
and asserts each within the paper's rounding. Benchmarks the model
evaluation.
"""

import pytest

from conftest import emit
from repro.core.occupancy import OccupancyModel

PAPER = {
    ("vxlan_routing", "ipv4", "tcam"): 311.0,
    ("vxlan_routing", "ipv6", "tcam"): 622.0,
    ("vm_nc", "ipv4", "sram"): 58.0,
    ("vm_nc", "ipv6", "sram"): 233.0,
    ("sum", "sram"): 102.0,
    ("sum", "tcam"): 388.75,
}


def test_table2_naive_occupancy(benchmark):
    model = OccupancyModel.paper_scale()
    t2 = benchmark(model.table2)

    rows = [
        ("VXLAN routing TCAM (IPv4)", "311%",
         f"{t2['vxlan_routing']['ipv4'].tcam_percent:.0f}%"),
        ("VXLAN routing TCAM (IPv6)", "622%",
         f"{t2['vxlan_routing']['ipv6'].tcam_percent:.0f}%"),
        ("VM-NC SRAM (IPv4)", "58%",
         f"{t2['vm_nc']['ipv4'].sram_percent:.0f}%"),
        ("VM-NC SRAM (IPv6)", "233%",
         f"{t2['vm_nc']['ipv6'].sram_percent:.0f}%"),
        ("Sum SRAM (75/25)", "102%",
         f"{t2['sum']['mixed'].sram_percent:.1f}%"),
        ("Sum TCAM (75/25)", "388.75%",
         f"{t2['sum']['mixed'].tcam_percent:.2f}%"),
    ]
    emit("Table 2: naive occupancy", rows)

    assert t2["vxlan_routing"]["ipv4"].tcam_percent == pytest.approx(311, abs=1.5)
    assert t2["vxlan_routing"]["ipv6"].tcam_percent == pytest.approx(622, abs=1.5)
    assert t2["vm_nc"]["ipv4"].sram_percent == pytest.approx(58, abs=1.5)
    assert t2["vm_nc"]["ipv6"].sram_percent == pytest.approx(233, abs=2.0)
    assert t2["sum"]["mixed"].sram_percent == pytest.approx(102, abs=1.5)
    assert t2["sum"]["mixed"].tcam_percent == pytest.approx(388.75, abs=1.5)
    # The point of the table: it does not fit.
    assert not t2["sum"]["mixed"].fits()
