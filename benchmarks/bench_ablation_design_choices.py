"""Ablation benches for the design choices DESIGN.md calls out.

Each bench quantifies what one choice buys, beyond the headline
occupancy numbers: metadata-aware placement (bridging cost), pooling
under mix drift, resilient steering, the hardware/software economics,
and the table-install story that motivated fewer, denser gateways.
"""

import pytest

from conftest import emit
from repro.cluster.ecmp import EcmpGroup, ResilientEcmpGroup, flow_churn
from repro.core.economics import compare_region
from repro.core.occupancy import ALL_STEPS, OccupancyModel, Step
from repro.core.planner import bridge_cost, sailfish_table_layout
from repro.core.provisioning import (
    full_region_install_sailfish,
    full_region_install_x86,
)
from repro.net.flow import FlowKey


def test_ablation_bridge_placement(benchmark):
    """Metadata-aware placement vs a worst-case spread of the same tables."""
    layout = sailfish_table_layout()
    good = benchmark(bridge_cost, layout)

    from dataclasses import replace
    from repro.tofino.pipeline import Gress

    # Worst case: leave the producers where they are, push the metadata
    # *consumers* to the far end of the folded path so every field rides
    # across the maximum number of gress boundaries.
    consumers = {"tenant-acl", "service-redirect"}
    worst = [
        replace(t, preferred_pipe=(0, Gress.EGRESS), depends_on=t.depends_on)
        if t.name in consumers else t
        for t in layout
    ]
    bad = bridge_cost(worst)
    rows = [
        ("bridge crossings (production layout)", "minimized",
         f"{good.crossings}"),
        ("bridge bytes/packet", "small", f"{good.bytes_per_packet}"),
        ("throughput loss @256B", "<5%", f"{good.throughput_loss(256):.2%}"),
        ("worst-case layout loss @256B", "larger",
         f"{bad.throughput_loss(256):.2%}"),
    ]
    emit("Ablation: metadata bridging by placement", rows)
    assert good.bytes_per_packet < bad.bytes_per_packet
    assert good.throughput_loss(256) < 0.05


def test_ablation_pooling_under_mix_drift(benchmark):
    """Sustainable capacity as the IPv6 mix drifts from the provisioning."""
    model = OccupancyModel.paper_scale()
    dedicated_steps = set(ALL_STEPS) - {Step.POOLING}

    def sweep():
        return {
            mix: (
                model.capacity_under_mix(ALL_STEPS, 0.25, mix),
                model.capacity_under_mix(dedicated_steps, 0.25, mix),
            )
            for mix in (0.25, 0.4, 0.6, 0.8)
        }

    capacities = benchmark(sweep)
    rows = [
        (f"IPv6 mix {mix:.0%}", f"pooled {pooled:.0%}", f"dedicated {dedicated:.0%}")
        for mix, (pooled, dedicated) in capacities.items()
    ]
    emit("Ablation: capacity under mix drift (provisioned at 25% IPv6)", rows,
         header=("operating point", "pooled", "dedicated"))
    assert all(pooled == 1.0 for pooled, _d in capacities.values())
    assert capacities[0.8][1] < 0.5


def test_ablation_resilient_steering(benchmark):
    """HRW vs modulo: connection churn when one gateway fails."""
    hops = [f"gw{i}" for i in range(8)]
    flows = [FlowKey(0x0A000000 + i, 2, 6, 1000 + i, 80) for i in range(500)]

    def churn_pair():
        modulo = flow_churn(EcmpGroup(next_hops=list(hops)),
                            EcmpGroup(next_hops=hops[:-1]), flows)
        hrw = flow_churn(ResilientEcmpGroup(next_hops=list(hops)),
                         ResilientEcmpGroup(next_hops=hops[:-1]), flows)
        return modulo, hrw

    modulo, hrw = benchmark(churn_pair)
    rows = [
        ("modulo hashing churn", "~(n-1)/n", f"{modulo:.0%}"),
        ("resilient (HRW) churn", "~1/n", f"{hrw:.0%}"),
    ]
    emit("Ablation: steering resilience on node failure", rows)
    assert hrw < modulo / 3


def test_ablation_economics(benchmark):
    """§2.3/§4.2: the fleet-size and CapEx arithmetic."""
    comparison = benchmark(compare_region)
    rows = [
        ("all-x86 fleet", "600 boxes", f"{comparison.software.nodes}"),
        ("Sailfish fleet", "10 XGW-H + 4 XGW-x86 (x2 backup)",
         f"{comparison.sailfish_hw.nodes} + {comparison.sailfish_sw_nodes}"),
        ("CapEx reduction", ">90%", f"{comparison.capex_reduction:.0%}"),
    ]
    emit("Ablation: region economics", rows)
    assert comparison.capex_reduction > 0.9


def test_ablation_install_times(benchmark):
    """§2.3: full-table install on 600 x86 boxes vs the Sailfish fleet."""
    x86 = benchmark(full_region_install_x86)
    sailfish = full_region_install_sailfish()
    rows = [
        ("per-gateway install (x86)", ">10 min",
         f"{x86.per_gateway_seconds / 60:.1f} min"),
        ("fleet install (600 x86)", "hours",
         f"{x86.total_seconds / 3600:.1f} h"),
        ("fleet install (Sailfish)", "minutes",
         f"{sailfish.total_seconds / 60:.1f} min"),
        ("inconsistency window shrink", "large",
         f"{x86.inconsistency_window_seconds / max(1e-9, sailfish.inconsistency_window_seconds):.0f}x"),
    ]
    emit("Ablation: table install and consistency window", rows)
    assert x86.per_gateway_seconds > 600
    assert sailfish.total_seconds < x86.total_seconds / 10
