"""Fig. 17: memory usage after step-by-step compression.

Regenerates all five bars (SRAM and TCAM) and cross-checks the ALPM
calibration against a real carve. Benchmarks the plan application plus
an ablation sweep over the design choices.
"""

import pytest

from conftest import emit
from repro.core.compression import CompressionPlan, calibrate_alpm
from repro.core.occupancy import ALL_STEPS, OccupancyModel, Step
from repro.net.addr import Prefix
from repro.sim.rand import derive
from repro.tables.vxlan_routing import RouteAction, Scope, VxlanRoutingTable

PAPER_BARS = {
    "Initial": (102, 389),
    "a": (51, 194),
    "a+b": (26, 97),
    "a+b+c+d": (18, 156),
    "a+b+c+d+e": (36, 11),
}


def test_fig17_compression_steps(benchmark):
    model = OccupancyModel.paper_scale()
    benchmark(lambda: CompressionPlan.full().apply(model))

    rows = []
    for label, occupancy in model.figure17():
        paper_sram, paper_tcam = PAPER_BARS[label]
        rows.append((f"{label} SRAM", f"{paper_sram}%", f"{occupancy.sram_percent:.1f}%"))
        rows.append((f"{label} TCAM", f"{paper_tcam}%", f"{occupancy.tcam_percent:.1f}%"))
        assert occupancy.sram_percent == pytest.approx(paper_sram, abs=1.5), label
        assert occupancy.tcam_percent == pytest.approx(paper_tcam, abs=1.5), label
    emit("Fig. 17: step-by-step compression", rows)


def test_fig17_ablation(benchmark):
    """Ablation bench: the final occupancy with each step removed —
    quantifying what each design choice buys."""
    model = OccupancyModel.paper_scale()

    def sweep():
        out = {}
        for step in ALL_STEPS:
            out[step] = CompressionPlan.full().without(step).apply(model).final
        return out

    ablated = benchmark(sweep)
    full = CompressionPlan.full().apply(model).final
    rows = [("full plan", "36% / 11%",
             f"{full.sram_percent:.0f}% / {full.tcam_percent:.0f}%")]
    for step, occ in ablated.items():
        rows.append((f"without {step.value} ({step.name.lower()})", "worse",
                     f"{occ.sram_percent:.0f}% / {occ.tcam_percent:.0f}%"))
    emit("Fig. 17 ablation: final SRAM/TCAM per removed step", rows,
         header=("configuration", "paper", "SRAM/TCAM"))

    for step in (Step.FOLDING, Step.SPLIT, Step.ALPM):
        assert (ablated[step].sram > full.sram * 1.2
                or ablated[step].tcam > full.tcam * 1.2)
    # Pooling pays off in provisioned memory under a shifting mix.
    dedicated = model.provisioned_occupancy(set(ALL_STEPS) - {Step.POOLING})
    pooled = model.provisioned_occupancy(set(ALL_STEPS))
    assert dedicated.sram > pooled.sram * 1.3


def test_fig17_alpm_calibration(benchmark):
    """The 'e' bar depends on bucket utilization; measure it for real."""
    rng = derive(17, "routes")
    routing = VxlanRoutingTable()
    for vni in range(1000, 1120):
        for _ in range(10):
            net = rng.randrange(1 << 20) << 12
            routing.insert(vni, Prefix.of(net, 20, 4), RouteAction(Scope.LOCAL),
                           replace=True)
    model = OccupancyModel.paper_scale()
    calibration = benchmark(calibrate_alpm, routing, model)
    rows = [
        ("bucket capacity", "tunable (22)", f"{calibration.stats.bucket_capacity}"),
        ("bucket utilization", f"{calibration.calibrated_utilization:.3f} (calibrated)",
         f"{calibration.measured_utilization:.3f}"),
        ("TCAM conservation", ">10x",
         f"{calibration.stats.routes / calibration.stats.partitions:.1f}x"),
    ]
    emit("Fig. 17(e): ALPM calibration cross-check", rows)
    assert calibration.utilization_error < 0.4
    assert calibration.stats.routes / calibration.stats.partitions > 8
