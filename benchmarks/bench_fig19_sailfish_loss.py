"""Fig. 19: Sailfish loss in three regions over a festival week.

Runs three independently seeded regions through a festival-week load
curve. Loss stays at the residual floor (1e-11..1e-10) — six orders of
magnitude below the XGW-x86 region of Fig. 5 — because the folded chips
keep a huge headroom over the offered load. Benchmarks the region
capacity evaluation.
"""

import pytest

from conftest import emit
from repro.core.sailfish import HW_RESIDUAL_DROP_RATE, RegionSpec, Sailfish
from repro.workloads.flows import festival_series

DAYS = 8
SAMPLES_PER_DAY = 12
REGIONS = ("A", "B", "C")


def _festival(region, seed):
    capacity = region.hardware_capacity_pps()
    curve = festival_series(DAYS, SAMPLES_PER_DAY, capacity * 0.45, seed=seed,
                            festival_day=5, festival_boost=1.8)
    worst = 0.0
    for t, offered in curve:
        _rate, loss = region.record_festival_sample(t, offered)
        worst = max(worst, loss)
    return worst, max(v for _t, v in curve) / capacity


def test_fig19_sailfish_regions(benchmark):
    rows = []
    worst_overall = 0.0
    for i, name in enumerate(REGIONS):
        region = Sailfish.build(RegionSpec.small(), seed=100 + i)
        worst, peak_util = _festival(region, seed=200 + i)
        worst_overall = max(worst_overall, worst)
        rows.append((f"region {name} worst loss", "1e-11..1e-10", f"{worst:.1e}"))
        rows.append((f"region {name} peak utilization", "<100%", f"{peak_util:.0%}"))
    rows.append(("vs Fig. 5 (x86 ~1e-4)", "6 orders lower",
                 f"{1e-4 / worst_overall:.0e}x lower"))
    emit("Fig. 19: Sailfish festival-week loss", rows)

    assert 1e-11 <= worst_overall <= 1e-10
    assert worst_overall == pytest.approx(HW_RESIDUAL_DROP_RATE)

    region = Sailfish.build(RegionSpec.small(), seed=100)
    benchmark(region.expected_hw_loss, region.hardware_capacity_pps() * 0.5)
