"""Live endpoint migration under a seeded fault matrix (DESIGN §11).

The paper's operational bar for endpoint moves is *hitless*: established
connections survive the migration, and a migration that cannot meet that
bar rolls back (or leaves audit-repairable residue) instead of losing
traffic silently. This bench drives five seeded scenarios through the
full stack — migrator, bounded freeze buffer, transactional commit,
fault injector, audit scanner + repair bridge — and checks:

* committed runs deliver every packet (zero loss, replay included) and
  the freeze window's added p99 latency stays within the blackout
  budget;
* fault runs terminate in the designed state (rolled back to the source
  binding, or crashed with residue the audit clears in one cycle);
* every scenario's event log is byte-identical across two runs of the
  same seed — the replayability property that makes fault runs
  debuggable.

Writes per-scenario event logs and a run summary when
``MIGRATION_ARTIFACT_DIR`` is set (CI uploads them on failure).

Benchmarks the full clean-migration cycle (freeze -> commit -> replay)
as the hot path.
"""

import ipaddress
import json
import os

from conftest import emit
from repro.audit import AuditScanner, RepairBridge
from repro.cluster.cluster import GatewayCluster, NodeState
from repro.cluster.ecmp import VniSteeredBalancer
from repro.core.controller import (
    Controller,
    RouteEntry,
    VmEntry,
    build_probe_packet,
)
from repro.core.journal import Journal
from repro.core.splitting import ClusterCapacity, TableSplitter, TenantProfile
from repro.core.xgw_h import XgwH
from repro.dataplane.gateway_logic import DropReason, ForwardAction
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.migration import EndpointMigrator, MigrationStatus
from repro.net.addr import Prefix
from repro.sim.engine import Engine
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import RouteAction, Scope
from repro.x86.gateway import XgwX86


def ip(text):
    return int(ipaddress.ip_address(text))


VNI = 100
VM_IP = ip("192.168.10.2")
OLD_NC = ip("10.1.1.11")
NEW_NC = ip("10.1.1.99")
BLACKOUT_BUDGET = 1.0
COPY_TIME = 0.5


def make_controller(x86=False):
    ctrl = Controller(
        TableSplitter(ClusterCapacity(routes=50, vms=500, traffic_bps=1e13)),
        VniSteeredBalancer(),
        journal=Journal(),
    )

    def factory(cluster_id):
        gw_cls = XgwX86 if x86 else XgwH
        return GatewayCluster(cluster_id, [
            (f"{cluster_id}-gw{i}", gw_cls(gateway_ip=0x0AC00000 + i))
            for i in range(2)
        ])

    ctrl.set_cluster_factory(factory)
    cluster_id = ctrl.add_tenant(
        TenantProfile(VNI, 1, 1, 1e9),
        [RouteEntry(VNI, Prefix.parse("192.168.10.0/24"),
                    RouteAction(Scope.LOCAL))],
        [VmEntry(VNI, VM_IP, 4, NcBinding(OLD_NC))],
    )
    return ctrl, cluster_id


def drive(engine, ctrl, cluster_id, interval=0.1, until=3.0):
    packet = build_probe_packet(VNI, VM_IP)
    log = []

    def tick():
        member = ctrl.clusters[cluster_id].members()[0]
        log.append((engine.now, member.gateway.forward(packet, engine.now)))

    engine.schedule_every(interval, tick, until=until)
    return log


SCENARIOS = {
    # name: (fault specs, x86, buffer capacity, drive interval/until)
    "clean": ((), False, 256, 0.1, 3.0),
    "controller-crash": (
        (FaultSpec(FaultKind.CONTROLLER_CRASH, at_mutations=(0,)),),
        False, 256, 0.1, 1.4),
    "member-crash": (
        (FaultSpec(FaultKind.MEMBER_CRASH, node="*gw0", at_time=1.3),),
        False, 256, 0.1, 1.25),
    "buffer-overflow": ((), True, 2, 0.05, 3.0),
    "commit-stall": (
        (FaultSpec(FaultKind.MIGRATION_STALL, at_phase="commit",
                   stall_for=2.0),),
        False, 256, 0.1, 5.0),
}


def run_scenario(name, seed=7):
    specs, x86, capacity, interval, until = SCENARIOS[name]
    ctrl, cluster_id = make_controller(x86=x86)
    plan = FaultPlan(seed=seed, specs=list(specs))
    injector = FaultInjector(plan)
    injector.arm_controller(ctrl)
    engine = Engine()
    migrator = EndpointMigrator(ctrl, cluster_id, engine,
                                blackout_budget=BLACKOUT_BUDGET,
                                copy_time=COPY_TIME,
                                buffer_capacity=capacity)
    injector.arm_migrator(migrator)
    if name == "member-crash":
        injector.schedule(engine, ctrl.clusters)
    log = drive(engine, ctrl, cluster_id, interval=interval, until=until)
    mid = migrator.migrate_vm(VNI, VM_IP, 4, NcBinding(NEW_NC), start=1.0)
    engine.run()
    record = migrator.records[mid]
    drops = [r for _t, r in log if r.action is ForwardAction.DROP]
    return {
        "ctrl": ctrl,
        "cluster_id": cluster_id,
        "migrator": migrator,
        "record": record,
        "log": log,
        "drops": drops,
        "buffered": sum(1 for _t, r in log
                        if r.action is ForwardAction.BUFFERED),
        "events": migrator.dump_events(),
    }


def audit_repair_cycle(crashed):
    """Recover a fresh controller over the survivors, then run the
    detect -> repair -> rescan cycle; returns the residue left."""
    ctrl = Controller(
        TableSplitter(ClusterCapacity(routes=50, vms=500, traffic_bps=1e13)),
        VniSteeredBalancer(),
        clusters=crashed.clusters,
    )
    ctrl.recover(crashed.journal)
    scanner = AuditScanner(ctrl)
    RepairBridge(ctrl).attach(scanner)
    scanner.full_scan()  # detect + repair
    residue = [f for f in scanner.full_scan()
               if f.invariant == "migration-residue"]
    return ctrl, residue


def save_artifacts(results):
    art_dir = os.environ.get("MIGRATION_ARTIFACT_DIR")
    if not art_dir:
        return
    os.makedirs(art_dir, exist_ok=True)
    summary = {}
    for name, out in results.items():
        with open(os.path.join(art_dir, f"{name}.events.log"), "wb") as fh:
            fh.write(out["events"])
        record = out["record"]
        summary[name] = {
            "status": record.status,
            "reason": record.reason,
            "buffered": out["buffered"],
            "replayed": record.replayed,
            "replay_lost": record.replay_lost,
            "added_p99_latency": record.added_p99_latency,
            "drops": len(out["drops"]),
        }
    with open(os.path.join(art_dir, "summary.json"), "w") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)


def test_migration_fault_matrix_is_hitless_and_replayable(benchmark):
    results = {name: run_scenario(name) for name in SCENARIOS}
    save_artifacts(results)

    # Replayability: the same seed produces byte-identical event logs.
    for name in SCENARIOS:
        assert run_scenario(name)["events"] == results[name]["events"], name

    # Committed runs: zero connection loss, p99 within the budget.
    for name in ("clean", "member-crash"):
        out = results[name]
        assert out["record"].status == MigrationStatus.COMMITTED, name
        assert out["drops"] == [] and out["record"].replay_lost == 0, name
        assert out["buffered"] > 0 and \
            out["record"].replayed == out["buffered"], name
        assert out["record"].added_p99_latency <= BLACKOUT_BUDGET, name

    # Bounded-freeze runs roll back to the source binding; the only
    # drops carry the designed migration reasons.
    overflow = results["buffer-overflow"]
    assert overflow["record"].status == MigrationStatus.ROLLED_BACK
    assert overflow["record"].reason == "buffer-overflow"
    assert overflow["drops"] and all(
        r.detail == DropReason.MIGRATION_BUFFER_OVERFLOW.value
        for r in overflow["drops"])
    stall = results["commit-stall"]
    assert stall["record"].status == MigrationStatus.ROLLED_BACK
    assert stall["record"].reason == "blackout-budget-exceeded"
    assert stall["drops"] and all(
        r.detail == DropReason.MIGRATION_BLACKOUT.value
        for r in stall["drops"])
    for out in (overflow, stall):
        after = [r for t, r in out["log"] if t >= 3.6] or \
            [r for t, r in out["log"] if t >= 1.6]
        assert after and all(r.action is ForwardAction.DELIVER_NC
                             and r.nc_ip == OLD_NC for r in after), \
            "rolled-back endpoint must serve on the source binding"

    # Crashed commit: residue survives on the gateways, and one
    # detect+repair audit cycle clears it with every parked packet
    # replayed — the stranded bytes still deliver.
    crash = results["controller-crash"]
    assert crash["record"].status == MigrationStatus.CRASHED
    assert crash["buffered"] > 0
    recovered, residue = audit_repair_cycle(crash["ctrl"])
    assert residue == []
    for member in recovered.clusters[crash["cluster_id"]].members():
        assert not member.gateway.migration.active()

    rows = []
    for name, out in results.items():
        record = out["record"]
        claim = ("committed, 0 loss" if name in ("clean", "member-crash")
                 else "crashed, residue repaired"
                 if name == "controller-crash" else "rolled back, 0 loss")
        rows.append((name, claim,
                     f"{record.status} replay={record.replayed}"
                     f" lost={record.replay_lost}"
                     f" p99=+{record.added_p99_latency:.2f}s"))
    emit("Live migration fault matrix (seed 7)", rows,
         header=("scenario", "designed outcome", "measured"))

    benchmark(run_scenario, "clean")
