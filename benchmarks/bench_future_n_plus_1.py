"""§8 future work: "N+1" hierarchical cache clusters.

Reproduces the paper's sizing example (4 cache clusters at 25% active
entries + 1 full backup = 4x performance at 2x nodes) and drives the
active-entry cache with an 80/20 workload to measure the hit rate the
cache clusters would absorb. Benchmarks the cache lookup path.
"""

import random

import pytest

from conftest import emit
from repro.core.hierarchy import ActiveEntryCache, HierarchyPlan


def test_n_plus_1_sizing(benchmark):
    plan = benchmark(HierarchyPlan.paper_example)
    rows = [
        ("cache clusters", "4", f"{plan.cache_clusters}"),
        ("active entries", "25%", f"{plan.active_fraction:.0%}"),
        ("performance", "4x", f"{plan.performance_multiplier:.0f}x"),
        ("node cost", "2x", f"{plan.node_cost_multiplier:.1f}x"),
        ("flat equivalent", "4x nodes", f"{plan.flat_nodes_for_same_performance} nodes"),
    ]
    emit("§8: N+1 hierarchy sizing", rows)
    assert plan.performance_multiplier == 4.0
    assert plan.node_cost_multiplier == pytest.approx(2.0)


def test_n_plus_1_cache_hit_rate(benchmark):
    """How much traffic the cache clusters absorb under the 80/20 rule."""
    cache = ActiveEntryCache(active_fraction=0.25)
    rng = random.Random(8)
    entries = [f"tenant-{i}" for i in range(400)]
    hot = entries[:20]  # 5% of entries...

    def draw():
        return hot[rng.randrange(len(hot))] if rng.random() < 0.95 else \
            entries[rng.randrange(len(entries))]

    # Mining epoch.
    for _ in range(10_000):
        cache.record_hit(draw())
    cache.refresh()

    # Serving epoch.
    def serve(n=1000):
        for _ in range(n):
            cache.lookup(draw())

    benchmark(serve)
    rows = [
        ("cache hit rate", "high (only misses go to backup)",
         f"{cache.hit_rate:.1%}"),
        ("active set size", "25% of entries", f"{len(cache.active_entries())}"),
        ("effective capacity", "~4x with 95% hits",
         f"{1 / (1 - 0.75 * cache.hit_rate):.1f}x"),
    ]
    emit("§8: cache-cluster absorption under 80/20 traffic", rows)
    assert cache.hit_rate > 0.9
