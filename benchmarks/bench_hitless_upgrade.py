"""Hitless-upgrade demo at cluster scale: roll an 8-member cluster under
sustained traffic and show zero upgrade-attributable loss.

The paper's operational claim is that a Sailfish region keeps forwarding
through planned maintenance. This bench drives the full crash-safe
control-plane stack — write-ahead journal, snapshot + tail resync,
probe-gated readmission — through a complete roll and checks:

* every packet of a 96-flow population delivers throughout the roll;
* every member is reimaged (empty tables) and rebuilt from the journal;
* the orchestrator's telemetry reconciles with its event log.

Benchmarks the journal materialise + per-member resync hot path.
"""

import ipaddress

from conftest import emit
from repro.cluster import (
    GatewayCluster,
    ResilientEcmpGroup,
    UpgradeOrchestrator,
    VniSteeredBalancer,
)
from repro.core.controller import Controller, RouteEntry, VmEntry, build_probe_packet
from repro.core.journal import Journal
from repro.core.splitting import ClusterCapacity, TableSplitter, TenantProfile
from repro.core.xgw_h import XgwH
from repro.dataplane.gateway_logic import ForwardAction
from repro.net.addr import Prefix
from repro.net.flow import FlowKey
from repro.sim.engine import Engine
from repro.tables.vm_nc import NcBinding
from repro.tables.vxlan_routing import RouteAction, Scope

MEMBERS = 8
TENANTS = 6
FLOWS = 96


def build_controller():
    ctrl = Controller(
        TableSplitter(ClusterCapacity(routes=500, vms=5000, traffic_bps=1e14)),
        VniSteeredBalancer(),
        journal=Journal(),
    )

    def factory(cluster_id):
        return GatewayCluster(cluster_id, [
            (f"{cluster_id}-gw{i}", XgwH(gateway_ip=0x0AC00000 + i))
            for i in range(MEMBERS)
        ])

    ctrl.set_cluster_factory(factory)
    for t in range(TENANTS):
        vni = 100 + t
        profile = TenantProfile(vni, 1, 1, 1e9)
        routes = [RouteEntry(vni, Prefix.parse(f"192.168.{10 + t}.0/24"),
                             RouteAction(Scope.LOCAL))]
        vms = [VmEntry(vni, int(ipaddress.ip_address(f"192.168.{10 + t}.2")), 4,
                       NcBinding(int(ipaddress.ip_address(f"10.1.1.{11 + t}"))))]
        ctrl.add_tenant(profile, routes, vms)
    cluster_id = ctrl.plan.assignments[100]
    ctrl.snapshot()
    return ctrl, cluster_id


def roll_under_traffic(ctrl, cluster_id):
    names = [m.name for m in ctrl.clusters[cluster_id].active_members()]
    group = ResilientEcmpGroup(next_hops=list(names))
    engine = Engine()

    packets = []
    for t in range(TENANTS):
        vm_ip = int(ipaddress.ip_address(f"192.168.{10 + t}.2"))
        packets.append((100 + t, vm_ip, build_probe_packet(100 + t, vm_ip)))
    flows = [FlowKey(0x0A000000 + i, 0x0B000000 + i, 6, 1024 + i, 443)
             for i in range(FLOWS)]
    stats = {"sent": 0, "drops": 0}

    def tick():
        for i, flow in enumerate(flows):
            _vni, _vm_ip, packet = packets[i % TENANTS]
            member = ctrl.clusters[cluster_id].find_member(group.pick(flow))
            result = member.gateway.forward(packet)
            stats["sent"] += 1
            if result.action is not ForwardAction.DELIVER_NC:
                stats["drops"] += 1

    engine.schedule_every(0.5, tick, until=MEMBERS + 4.0)

    orch = UpgradeOrchestrator(
        ctrl, cluster_id, group, engine, drain_wait=1.0,
        upgrade_fn=lambda m: setattr(m, "gateway",
                                     XgwH(gateway_ip=m.gateway.gateway_ip)))
    orch.roll()
    engine.run()
    return orch, stats


def test_hitless_upgrade_roll(benchmark):
    ctrl, cluster_id = build_controller()

    # Hot path: rebuilding one member's tables from snapshot + tail.
    first = ctrl.clusters[cluster_id].members()[0].name
    benchmark(ctrl.resync_member, cluster_id, first)

    orch, stats = roll_under_traffic(ctrl, cluster_id)

    assert stats["drops"] == 0 and stats["sent"] > 0
    assert orch.done and not orch.aborted
    assert orch.counters["drains_started"] == MEMBERS
    assert orch.counters["resyncs"] == MEMBERS
    assert orch.counters["readmits"] == MEMBERS
    assert orch.counters["probes_failed"] == 0
    # Telemetry reconciles with the audit log.
    for action, counter in (("drain", "drains_started"), ("resync", "resyncs"),
                            ("readmit", "readmits")):
        assert sum(e.action == action for e in orch.events) == \
            orch.counters[counter]
    assert ctrl.consistency_check(cluster_id) == []

    emit("Hitless rolling upgrade (8 members, live traffic)", [
        ("members rolled", "all, one at a time", MEMBERS),
        ("packets forwarded", "uninterrupted", f"{stats['sent']:,}"),
        ("upgrade-attributable drops", "0", stats["drops"]),
        ("resync writes per member", "route+vm per tenant",
         f"{TENANTS * 2}"),
        ("journal records", "WAL of every mutation", ctrl.journal.appends),
    ])
