"""Table 1: the seven canonical traffic routes through the gateway.

Builds one packet per route class, forwards each end to end through the
region, and checks the outcome class matches the paper's description.
Benchmarks the full region forwarding path (the gateway's core op).
"""

from dataclasses import replace

import pytest

from conftest import emit
from repro.dataplane.gateway_logic import ForwardAction
from repro.net.headers import UDP
from repro.workloads.traffic import build_vxlan_packet


def _route_cases(region):
    """(label, packet, expected action) per Table 1 row we can exercise."""
    topo = region.topology
    vnis = topo.vnis()
    # Pick a VPC with a peer and v4 VMs.
    src_vpc = next(topo.vpcs[v] for v in vnis if topo.vpcs[v].peers
                   and any(vm.version == 4 for vm in topo.vpcs[v].vms))
    src_vm = next(vm for vm in src_vpc.vms if vm.version == 4)
    same_vpc_dst = next((vm for vm in src_vpc.vms
                         if vm.version == 4 and vm.ip != src_vm.ip), src_vm)
    peer_vpc = topo.vpcs[src_vpc.peers[0]]
    peer_dst = next((vm for vm in peer_vpc.vms if vm.version == 4), None)

    cases = [
        ("VM-VM (same VPC, different vSwitches)",
         build_vxlan_packet(src_vm.vni, src_vm.ip, same_vpc_dst.ip),
         ForwardAction.DELIVER_NC),
        ("VM-Internet (via SNAT)",
         build_vxlan_packet(src_vm.vni, src_vm.ip, 0x08080808),
         ForwardAction.UPLINK),
    ]
    if peer_dst is not None:
        cases.insert(1, ("VM-VM (different VPCs)",
                         build_vxlan_packet(src_vm.vni, src_vm.ip, peer_dst.ip),
                         ForwardAction.DELIVER_NC))
    return cases, src_vm


def test_table1_routes(benchmark, region):
    cases, src_vm = _route_cases(region)

    rows = []
    for label, packet, expected in cases:
        result = region.forward(packet)
        rows.append((label, expected.value, result.action.value))
        assert result.action is expected, label

    # Internet-VM: the response path of the SNAT session just created.
    request = build_vxlan_packet(src_vm.vni, src_vm.ip, 0x08080808, src_port=9999)
    out = region.forward(request)
    response = replace(
        out.packet,
        ip=type(out.packet.ip)(src=out.packet.ip.dst, dst=out.packet.ip.src,
                               proto=out.packet.ip.proto),
        l4=UDP(src_port=out.packet.l4.dst_port, dst_port=out.packet.l4.src_port),
    )
    back = region.forward(response)
    rows.append(("Internet-VM (SNAT response)", "deliver-nc", back.action.value))
    assert back.action is ForwardAction.DELIVER_NC

    emit("Table 1: traffic routes", rows,
         header=("route", "expected", "measured"))

    # Benchmark the hot path: same-VPC VM-VM forwarding.
    packet = cases[0][1]
    benchmark(region.forward, packet)
